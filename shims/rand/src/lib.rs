//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the subset of `rand`'s API it uses: seedable deterministic generators
//! (`StdRng::seed_from_u64`) and the `Rng` convenience methods. The
//! generator is xoshiro256** seeded via splitmix64 — high-quality,
//! reproducible, and stable across platforms. Stream values are NOT
//! bit-compatible with the real `rand` crate; all in-repo consumers only
//! rely on determinism per seed, not on specific sequences.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for all cores.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random mantissa bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform value in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty gen_range");
        let span = range.end - range.start;
        // Debiased multiply-shift (Lemire); span is tiny vs 2^64 here, so
        // simple modulo bias would be negligible, but do it right anyway.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        if (m as u64) < span {
            let t = span.wrapping_neg() % span;
            while (m as u64) < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
            }
        }
        range.start + (m >> 64) as u64
    }

    /// A uniformly random `u64`.
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_roughly_balanced() {
        let mut r = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
