//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `parking_lot`'s API it actually uses, backed
//! by `std::sync`. Semantics match where it matters: locks do **not**
//! poison — a panic while holding a guard (e.g. a simulated-crash unwind
//! from the fault-injection harness) leaves the lock usable, exactly like
//! the real `parking_lot`.

use std::sync::PoisonError;

/// Non-poisoning mutex with `parking_lot`'s `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison (parking_lot locks never poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable with `parking_lot`'s `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // parking_lot mutates the guard in place; std consumes and returns
        // it. Bridge the two by a scoped replace through a dummy value.
        take_mut(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses, atomically releasing
    /// the guard's lock; mirrors `parking_lot::Condvar::wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Whether a [`Condvar::wait_for`] returned because time ran out rather
/// than a notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout, not notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Replaces `*dest` with `f(old)`; aborts the process if `f` panics, since
/// there is no value to restore (mirrors the `take_mut` crate's guarantee).
fn take_mut<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let old = std::ptr::read(dest);
        let bomb = AbortOnUnwind;
        let new = f(old);
        std::mem::forget(bomb);
        std::ptr::write(dest, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("boom");
        })
        .join();
        // Not poisoned: still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let result = pair.1.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }
}
