//! Strategies: deterministic value generators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test values. Unlike the real proptest there is no value
/// tree / shrinking — a strategy just produces a value from the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug + Clone;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxedStrategy").finish()
    }
}

impl<V: std::fmt::Debug + Clone> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among same-typed strategies; built by
/// [`crate::prop_oneof!`].
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: std::fmt::Debug + Clone> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(0, self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: std::fmt::Debug + Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    /// The canonical full-range strategy for the type.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct ArbitraryStrategy<T>(fn(&mut TestRng) -> T);

impl<T: std::fmt::Debug + Clone> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The full-range strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy(|rng| rng.next() as $t)
            }
        }

        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.below(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryStrategy<bool> {
        ArbitraryStrategy(|rng| rng.next() & 1 == 1)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
