//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of proptest it uses: the `proptest!` test macro,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, integer
//! ranges as strategies, tuple strategies, `prop_map`, and
//! `collection::vec`. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports its generated inputs and the
//!   deterministic seed that produced them, but is not minimised.
//! * **Deterministic by default.** Case `i` of test `t` derives its RNG
//!   seed from `(t, i)` and the optional `PROPTEST_SEED` environment
//!   variable, so CI failures reproduce locally without a seed file.
//! * Default case count is 64 (override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//!   `PROPTEST_CASES`).

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from `range` and
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(range.start < range.end, "empty length range");
        VecStrategy { element, range }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        range: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.range.start as u64, self.range.end as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Supports the real crate's common form:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            concat!(stringify!($arg), " = {:?}; "), &$arg));)+
                        s
                    };
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    (inputs, result)
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r)));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Cmd {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len = {}", v.len());
        }

        #[test]
        fn oneof_and_map_compose(cmds in crate::collection::vec(
            prop_oneof![
                any::<u8>().prop_map(Cmd::A),
                Just(Cmd::B),
            ], 1..20))
        {
            prop_assert!(!cmds.is_empty());
        }

        #[test]
        fn ranges_are_strategies(x in 10u64..20, y in 3usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert_eq!(y, 3);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "always_fails");
            runner.run(|rng| {
                let x = any::<u64>().generate(rng);
                (
                    format!("x = {x:?}; "),
                    Err(TestCaseError::fail("nope".into())),
                )
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x = "), "missing inputs in: {msg}");
        assert!(msg.contains("nope"), "missing reason in: {msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        fn collect() -> Vec<u64> {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "det");
            runner.run(|rng| {
                out.push(any::<u64>().generate(rng));
                (String::new(), Ok(()))
            });
            out
        }
        assert_eq!(collect(), collect());
    }
}
