//! The case runner: deterministic per-case RNGs, panic capture, input
//! reporting.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Why a property case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assert*` failure with its message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with `reason`.
    pub fn fail(reason: String) -> Self {
        TestCaseError::Fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The per-case RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    // Not `Iterator::next`: the stream is infinite and callers want a
    // plain `u64`, not an `Option`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `[lo, hi)`.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        self.0.gen_range(lo..hi)
    }
}

/// Drives one property over its cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner for the property named `name`. The base seed mixes
    /// the property name with `PROPTEST_SEED` (default 0), so runs are
    /// deterministic and per-test independent.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let env_seed: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ env_seed;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            config,
            name,
            base_seed: h,
        }
    }

    /// Runs every case. `case` receives the case RNG and returns the
    /// formatted inputs plus the case outcome; panics inside the case are
    /// captured and reported like failures, with the inputs that caused
    /// them.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) on the first failing case.
    pub fn run(
        &mut self,
        mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    ) {
        for i in 0..self.config.cases {
            let seed = self
                .base_seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::from_seed(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            let (inputs, verdict) = match outcome {
                Ok(pair) => pair,
                Err(payload) => {
                    let msg = panic_message(&payload);
                    panic!(
                        "proptest {}: case {i}/{} panicked: {msg} \
                         (rerun with PROPTEST_SEED to vary cases; case seed {seed:#x})",
                        self.name, self.config.cases
                    );
                }
            };
            if let Err(e) = verdict {
                panic!(
                    "proptest {}: case {i}/{} failed: {e}; inputs: {inputs}\
                     (case seed {seed:#x})",
                    self.name, self.config.cases
                );
            }
        }
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
