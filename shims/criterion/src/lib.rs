//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the small API slice its benches use: `criterion_group!`/
//! `criterion_main!`, benchmark groups, `Bencher::iter` and
//! `Bencher::iter_batched`. Measurement is a simple calibrated wall-clock
//! loop (warm-up, then enough iterations to cover ~200 ms) reporting
//! mean ns/iter — adequate for relative comparisons, with none of real
//! criterion's statistics.

use std::time::{Duration, Instant};

/// How per-iteration setup output is batched (accepted for API
/// compatibility; the shim always runs setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Prevents the optimiser from discarding a value (API-compatible
/// `black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts CLI args for API compatibility (ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.group), &mut f);
        self
    }

    /// Ends the group (no-op; prints nothing).
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration pass: one iteration to estimate cost.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    b.iters = iters;
    b.elapsed = Duration::ZERO;
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    println!("bench {label:<40} {ns:>12.1} ns/iter ({iters} iters)");
}

/// Times the closure the harness hands to benchmark functions.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut ran = 0u64;
        run_one("t", &mut |b: &mut Bencher| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        run_one("t2", &mut |b: &mut Bencher| {
            b.iter_batched(|| setups += 1, |()| runs += 1, BatchSize::SmallInput);
        });
        assert_eq!(setups, runs);
    }
}
