//! Quickstart: a persistent counter that survives program restarts.
//!
//! Run it several times and watch the counter climb:
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The counter is a `pstatic` variable (§3.1 of the paper): placed in the
//! static persistent region, initialised to zero the first time the
//! program runs, and retaining its value across invocations. The update
//! is a durable memory transaction, so a crash can never half-apply it.
//!
//! Each run exercises *both* §5 truncation regimes — the bump happens
//! under synchronous truncation, then the store is reopened under
//! asynchronous truncation (log-manager thread) and read back — and
//! writes the machine-readable telemetry sidecar next to the state files,
//! so the example doubles as a smoke test for the commit path.

use mnemosyne::{Mnemosyne, Truncation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Backing files (the SCM image and region files) live here — the
    // analogue of MNEMOSYNE_REGION_PATH.
    let dir = std::env::temp_dir().join("mnemosyne-quickstart");

    // Phase 1 — synchronous truncation: the committing thread forces its
    // data and truncates its own redo log.
    let m = Mnemosyne::builder(&dir)
        .scm_size(16 << 20)
        .truncation(Truncation::Sync)
        .open()?;

    // `pstatic`: a named persistent variable, like
    //     pstatic uint64_t runs;
    let runs = m.pstatic("runs", 8)?;

    let mut th = m.register_thread()?;
    let count = th.atomic(|tx| {
        let n = tx.read_u64(runs)?;
        tx.write_u64(runs, n + 1)?;
        Ok(n + 1)
    })?;
    println!("this program has now run {count} time(s)");

    drop(th);
    // Orderly power-down: save the machine's SCM image so the next run
    // (and the async phase below) resumes from it.
    m.shutdown()?;

    // Phase 2 — asynchronous truncation: a log-manager thread drains the
    // redo logs off the commit critical path. Reopen the same state and
    // read the counter back through it.
    let m = Mnemosyne::builder(&dir)
        .scm_size(16 << 20)
        .truncation(Truncation::Async)
        .open()?;
    let runs = m.pstatic("runs", 8)?;
    let mut th = m.register_thread()?;
    let check = th.atomic(|tx| tx.read_u64(runs))?;
    assert_eq!(check, count, "async reopen must see the committed bump");
    println!("reopened under async truncation: counter still {check}");
    drop(th);

    // The machine-readable telemetry of both phases (see METRICS.md).
    let snap = mnemosyne_scm::obs::Telemetry::process_snapshot();
    let json = snap.to_json_with(&[("experiment", "quickstart"), ("scale", "quick")]);
    let sidecar = dir.join("telemetry.json");
    std::fs::write(&sidecar, &json)?;
    println!("telemetry: {}", sidecar.display());
    println!("(state in {})", dir.display());

    m.shutdown()?;
    Ok(())
}
