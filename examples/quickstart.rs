//! Quickstart: a persistent counter that survives program restarts.
//!
//! Run it several times and watch the counter climb:
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The counter is a `pstatic` variable (§3.1 of the paper): placed in the
//! static persistent region, initialised to zero the first time the
//! program runs, and retaining its value across invocations. The update
//! is a durable memory transaction, so a crash can never half-apply it.

use mnemosyne::Mnemosyne;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Backing files (the SCM image and region files) live here — the
    // analogue of MNEMOSYNE_REGION_PATH.
    let dir = std::env::temp_dir().join("mnemosyne-quickstart");
    let m = Mnemosyne::builder(&dir).scm_size(16 << 20).open()?;

    // `pstatic`: a named persistent variable, like
    //     pstatic uint64_t runs;
    let runs = m.pstatic("runs", 8)?;

    let mut th = m.register_thread()?;
    let count = th.atomic(|tx| {
        let n = tx.read_u64(runs)?;
        tx.write_u64(runs, n + 1)?;
        Ok(n + 1)
    })?;

    println!("this program has now run {count} time(s)");
    println!("(state in {})", dir.display());

    drop(th);
    // Orderly power-down: save the machine's SCM image so the next run
    // resumes from it.
    m.shutdown()?;
    Ok(())
}
