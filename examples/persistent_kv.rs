//! A persistent key-value store in fifty lines: the paper's headline use
//! case. An ordinary in-memory hash table — allocated with `pmalloc`,
//! updated inside `atomic` blocks — simply *is* the database: no
//! serialization, no storage engine, no fsync tuning (§1, §8).
//!
//! ```text
//! cargo run --example persistent_kv -- set lang rust
//! cargo run --example persistent_kv -- get lang
//! cargo run --example persistent_kv -- del lang
//! cargo run --example persistent_kv -- list
//! ```
//!
//! The command runs under synchronous log truncation; the store is then
//! reopened under asynchronous truncation (§5's log-manager regime) for a
//! read-back check, and the telemetry sidecar for the whole run is
//! written next to the state files — so the example smoke-tests both
//! commit paths on every invocation.

use mnemosyne::{Mnemosyne, Truncation};
use mnemosyne_pds::PHashTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = std::env::temp_dir().join("mnemosyne-kv");
    let m = Mnemosyne::builder(&dir)
        .scm_size(32 << 20)
        .truncation(Truncation::Sync)
        .open()?;
    let mut th = m.register_thread()?;
    let table = PHashTable::open(&m, &mut th, "kv", 256)?;

    match args.as_slice() {
        [cmd, key, value] if cmd == "set" => {
            table.put(&mut th, key.as_bytes(), value.as_bytes())?;
            println!("ok");
        }
        [cmd, key] if cmd == "get" => match table.get(&mut th, key.as_bytes())? {
            Some(v) => println!("{}", String::from_utf8_lossy(&v)),
            None => println!("(not found)"),
        },
        [cmd, key] if cmd == "del" => {
            let existed = table.remove(&mut th, key.as_bytes())?;
            println!("{}", if existed { "deleted" } else { "(not found)" });
        }
        [cmd] if cmd == "list" => {
            println!("{} key(s) stored", table.len(&mut th)?);
        }
        _ => {
            eprintln!("usage: persistent_kv set <k> <v> | get <k> | del <k> | list");
        }
    }
    let keys = table.len(&mut th)?;
    drop(th);
    m.shutdown()?;

    // Reopen under the asynchronous truncation regime and read back: the
    // committed state must be identical whichever regime wrote it.
    let m = Mnemosyne::builder(&dir)
        .scm_size(32 << 20)
        .truncation(Truncation::Async)
        .open()?;
    let mut th = m.register_thread()?;
    let table = PHashTable::open(&m, &mut th, "kv", 256)?;
    assert_eq!(
        table.len(&mut th)?,
        keys,
        "async reopen must see the same committed keys"
    );
    drop(th);

    let snap = mnemosyne_scm::obs::Telemetry::process_snapshot();
    let json = snap.to_json_with(&[("experiment", "persistent_kv"), ("scale", "quick")]);
    let sidecar = dir.join("telemetry.json");
    std::fs::write(&sidecar, &json)?;
    println!("telemetry: {}", sidecar.display());

    m.shutdown()?;
    Ok(())
}
