//! The OpenLDAP conversion (§6.2) as a runnable scenario: serve a
//! SLAMD-like add/search workload on all three backends and compare.
//!
//! ```text
//! cargo run --release --example ldap_server
//! ```

use std::sync::Arc;
use std::time::Instant;

use mnemosyne::{EmulationMode, Mnemosyne, ScmConfig};
use mnemosyne_apps::ldap::{BackBdb, BackLdbm, BackMnemosyne, Backend, Workload};
use pcmdisk::{DiskConfig, PcmDisk, SimpleFs};

const THREADS: usize = 4;
const ENTRIES_PER_THREAD: u64 = 500;

fn drive(backend: &dyn Backend) {
    let w = Workload::default();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mut session = backend.session();
            let w = w.clone();
            scope.spawn(move || {
                for i in 0..ENTRIES_PER_THREAD {
                    let e = w.entry((t as u64) * 1_000_000 + i);
                    session.add(&e).expect("add");
                    // Read-mostly traffic against the entry cache.
                    session.search(&e.dn).expect("search");
                }
            });
        }
    });
    let total = (THREADS as u64 * ENTRIES_PER_THREAD) as f64;
    println!(
        "  {:<16} {:>8.0} adds/s (plus one search per add)",
        backend.name(),
        total / start.elapsed().as_secs_f64()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("LDAP add workload: {THREADS} threads x {ENTRIES_PER_THREAD} entries, PCM at 150 ns");

    let fs1 = SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::paper_default(1 << 15))))?;
    drive(&BackBdb::open(fs1).map_err(std::io::Error::other)?);

    let fs2 = SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::paper_default(1 << 15))))?;
    drive(&BackLdbm::open(fs2, 1000).map_err(std::io::Error::other)?);

    let dir = std::env::temp_dir().join("mnemosyne-ldap-example");
    std::fs::remove_dir_all(&dir).ok();
    let mut config = ScmConfig::paper_default(128 << 20);
    config.mode = EmulationMode::Spin;
    let m = Arc::new(
        Mnemosyne::builder(&dir)
            .scm_config(config)
            .heap_sizes(48 << 20, 32 << 20)
            .max_threads(THREADS + 2)
            .open()?,
    );
    drive(&BackMnemosyne::open(Arc::clone(&m)).map_err(std::io::Error::other)?);
    std::fs::remove_dir_all(&dir).ok();

    println!("\nthe persistent AVL cache replaces the whole storage backend (§6.2)");
    Ok(())
}
