//! The §6.2 reliability experiment as a runnable demo: crash a machine in
//! the middle of a transactional workload with an adversarial failure
//! policy, reboot, and verify that recovery restored a consistent state.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```
//!
//! Mirrors the paper's "crash stress program, which uses transactions to
//! perform random updates to memory using a known seed. We verified that
//! after a crash, memory contains the correct random values."

use mnemosyne::{CrashPolicy, Mnemosyne, Truncation};

const CELLS: u64 = 512;
const ROUNDS: u64 = 40;

/// Deterministic PRNG so the verifier can recompute every expected value.
fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("mnemosyne-crash-demo");
    std::fs::remove_dir_all(&dir).ok();

    let m = Mnemosyne::builder(&dir)
        .scm_size(32 << 20)
        .truncation(Truncation::Async) // commits return before data is flushed
        .open()?;
    let area = m.pstatic("cells", CELLS * 8)?;
    let round_cell = m.pstatic("round", 8)?;

    // Each round overwrites every cell with seeded random values, one
    // transaction per 64-cell group; the final group also advances the
    // round counter, atomically with its data.
    let mut th = m.register_thread()?;
    for round in 1..=ROUNDS {
        for group in 0..(CELLS / 64) {
            th.atomic(|tx| {
                let mut x = round * 1000 + group;
                for i in 0..64 {
                    x = lcg(x);
                    tx.write_u64(area.add((group * 64 + i) * 8), x)?;
                }
                if group == CELLS / 64 - 1 {
                    tx.write_u64(round_cell, round)?;
                }
                Ok(())
            })?;
        }
    }
    drop(th);

    println!("ran {ROUNDS} rounds of seeded random updates; crashing mid-flight…");
    // Adversarial crash: a random subset of every in-flight word retires.
    let m = m.crash_reboot(CrashPolicy::random(0xdead_beef))?;

    // Verify: every cell must hold exactly the value of the round the
    // persistent round counter claims.
    let area = m.pstatic("cells", CELLS * 8)?;
    let round_cell = m.pstatic("round", 8)?;
    let mut th = m.register_thread()?;
    let round = th.atomic(|tx| tx.read_u64(round_cell))?;
    println!("recovered at round {round}; verifying {CELLS} cells…");
    assert_eq!(round, ROUNDS, "all rounds committed before the crash");
    let mut checked = 0u64;
    for group in 0..(CELLS / 64) {
        let mut x = round * 1000 + group;
        for i in 0..64u64 {
            x = lcg(x);
            let got = th.atomic(|tx| tx.read_u64(area.add((group * 64 + i) * 8)))?;
            assert_eq!(got, x, "cell {} corrupted by the crash", group * 64 + i);
            checked += 1;
        }
    }
    println!("all {checked} cells hold the correct random values — recovery worked");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
