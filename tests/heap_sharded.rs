//! Crash-point sweep over *concurrent* allocation on the sharded heap.
//!
//! Three worker threads (each hashing to its own shard) allocate into
//! their own rows of persistent cells and free half of their blocks
//! locally; the main thread then frees the survivors — remote frees
//! routed to each block's owning shard — and anchors a final batch that
//! must survive. The sweep kills the machine at every durability
//! primitive along the way: per-shard log appends, superblock metadata
//! writes, cell stores, and the remote-free path are all crash targets.
//!
//! The invariant accepts any crash-consistent prefix: a cell is either
//! zero or holds a pointer the recovered heap recognises, no two cells
//! alias one block, and once every surviving pointer is freed the
//! small-area census must show zero live blocks with every superblock
//! either shard-owned or pooled.
//!
//! No barriers anywhere in the workload: once a fault plan fires, every
//! thread dies at its *next* primitive, so a thread parked on a barrier
//! waiting for a dead peer would hang the sweep.

use std::path::PathBuf;
use std::sync::Arc;

use mnemosyne::{crash_sweep, CrashPolicy, Error, Mnemosyne, ScmConfig, SweepConfig, Truncation};

const THREADS: u64 = 3;
const PER_THREAD: u64 = 8;
const BLOCK: u64 = 48;

fn dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let d = std::env::temp_dir().join(format!("it-shard-{tag}-{}-{n}-{t:08x}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn builder(p: &std::path::Path) -> mnemosyne::MnemosyneBuilder {
    Mnemosyne::builder(p)
        .scm_config(ScmConfig::virtual_clock(16 << 20))
        .heap_shards(3)
        .truncation(Truncation::Sync)
}

fn cells(m: &Mnemosyne) -> Result<mnemosyne::VAddr, Error> {
    m.pstatic("shard-cells", THREADS * PER_THREAD * 8)
}

fn workload(m: &Mnemosyne) -> Result<(), Error> {
    let area = cells(m)?;
    let heap = Arc::clone(m.heap());

    // Phase 1 (concurrent): each worker fills its own cell row, then
    // frees its even-indexed blocks — local frees on its home shard.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let heap = Arc::clone(&heap);
            std::thread::spawn(move || -> Result<(), Error> {
                for i in 0..PER_THREAD {
                    heap.pmalloc(BLOCK, area.add((t * PER_THREAD + i) * 8))?;
                }
                for i in (0..PER_THREAD).step_by(2) {
                    heap.pfree(area.add((t * PER_THREAD + i) * 8))?;
                }
                Ok(())
            })
        })
        .collect();
    let mut outcomes = Vec::new();
    let mut panic = None;
    for h in handles {
        match h.join() {
            Ok(r) => outcomes.push(r),
            Err(p) => panic = Some(p),
        }
    }
    // An injected crash unwinds as a panic carrying `CrashRequested`;
    // re-raise it so the sweep classifies the point as fired, not failed.
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    for r in outcomes {
        r?;
    }

    // Phase 2: the main thread (its own home shard) frees the workers'
    // surviving odd-indexed blocks — remote frees crossing shards.
    for t in 0..THREADS {
        for i in (1..PER_THREAD).step_by(2) {
            heap.pfree(area.add((t * PER_THREAD + i) * 8))?;
        }
    }

    // Phase 3: reallocate one block per row; these must survive a clean
    // shutdown (the baseline pass checks the full-completion image).
    for t in 0..THREADS {
        heap.pmalloc(BLOCK, area.add(t * PER_THREAD * 8))?;
    }
    Ok(())
}

fn check(m: &Mnemosyne) -> Result<(), String> {
    let area = cells(m).map_err(|e| e.to_string())?;
    let heap = m.heap();
    let mut live = Vec::new();
    let mut th = m.register_thread().map_err(|e| e.to_string())?;
    for slot in 0..THREADS * PER_THREAD {
        let cell = area.add(slot * 8);
        let ptr = th
            .atomic(|tx| tx.read_u64(cell))
            .map_err(|e| e.to_string())?;
        if ptr == 0 {
            continue;
        }
        let addr = mnemosyne::VAddr(ptr);
        match heap.usable_size(addr) {
            Some(sz) if sz >= BLOCK => live.push((cell, addr)),
            Some(sz) => return Err(format!("cell {slot}: block too small ({sz} < {BLOCK})")),
            None => return Err(format!("cell {slot}: dangling pointer {addr:?}")),
        }
    }
    drop(th);
    for (i, (_, a)) in live.iter().enumerate() {
        for (_, b) in &live[i + 1..] {
            if a == b {
                return Err(format!("two cells alias block {a:?}"));
            }
        }
    }
    // Freeing every anchored pointer must drain the heap completely:
    // alloc and cell-anchor commit atomically through the shard logs, so
    // a recovered block without a cell (a leak) is a protocol violation.
    for (cell, _) in live {
        heap.pfree(cell)
            .map_err(|e| format!("freeing recovered block: {e}"))?;
    }
    let occ = heap.small_occupancy();
    if occ.live_blocks != 0 {
        return Err(format!("blocks leaked across crash: {occ:?}"));
    }
    if occ.owned_superblocks + occ.pooled_superblocks != occ.total_superblocks {
        return Err(format!("superblocks stranded across crash: {occ:?}"));
    }
    Ok(())
}

#[test]
fn sweep_concurrent_sharded_alloc_free_all_points_recover() {
    let d = dir("sweep");
    let cfg = SweepConfig {
        max_points: 72,
        recovery_points: 0,
        policy: CrashPolicy::DropAll,
        keep_failing_dirs: true,
    };
    let report = crash_sweep(&d, &cfg, builder, workload, check).unwrap();
    assert!(
        report.passed(),
        "{} of {} crash points failed; first: {}",
        report.failures.len(),
        report.points_tested,
        report.failures[0]
    );
    assert!(
        report.points_tested >= 48,
        "only {} crash points covered ({} primitives)",
        report.points_tested,
        report.workload_primitives
    );
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn sweep_sharded_heap_survives_crash_during_parallel_recovery() {
    let d = dir("sweepdouble");
    let cfg = SweepConfig {
        max_points: 5,
        recovery_points: 3,
        policy: CrashPolicy::DropAll,
        keep_failing_dirs: true,
    };
    let report = crash_sweep(&d, &cfg, builder, workload, check).unwrap();
    assert!(
        report.passed(),
        "{} failures; first: {}",
        report.failures.len(),
        report.failures[0]
    );
    assert!(report.recovery_points_tested > 0, "report: {report}");
    std::fs::remove_dir_all(&d).ok();
}
