//! Property-based tests (proptest) on whole-stack invariants: every
//! persistent structure must behave exactly like its volatile model, and
//! log recovery must deliver a prefix of appended records under any crash
//! seed.

use std::collections::HashMap;
use std::path::PathBuf;

use proptest::prelude::*;

use mnemosyne::{CrashPolicy, Mnemosyne, TornbitLog};
use mnemosyne_pds::{PBPlusTree, PHashTable, PRbTree};

fn dir(tag: &str) -> PathBuf {
    // Unique per run (counter + pid + timestamp), so a leftover directory
    // from a killed earlier run can never alias this one.
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let d = std::env::temp_dir().join(format!("it-prop-{tag}-{}-{n}-{t:08x}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Del(u8),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Del),
        any::<u8>().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hashtable_matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let d = dir("hash");
        let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let h = PHashTable::open(&m, &mut th, "h", 16).unwrap();
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    h.put(&mut th, &[k], &v).unwrap();
                    model.insert(k, v);
                }
                Op::Del(k) => {
                    let a = h.remove(&mut th, &[k]).unwrap();
                    let b = model.remove(&k).is_some();
                    prop_assert_eq!(a, b);
                }
                Op::Get(k) => {
                    let a = h.get(&mut th, &[k]).unwrap();
                    let b = model.get(&k).cloned();
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(h.len(&mut th).unwrap() as usize, model.len());
        drop(th);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn bptree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let d = dir("bpt");
        let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PBPlusTree::open(&m, &mut th, "t").unwrap();
        let mut model: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    t.insert(&mut th, k as u64, &v).unwrap();
                    model.insert(k as u64, v);
                }
                Op::Del(k) => {
                    let a = t.remove(&mut th, k as u64).unwrap();
                    prop_assert_eq!(a, model.remove(&(k as u64)).is_some());
                }
                Op::Get(k) => {
                    let a = t.get(&mut th, k as u64).unwrap();
                    prop_assert_eq!(a, model.get(&(k as u64)).cloned());
                }
            }
        }
        let keys: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(t.keys(&mut th).unwrap(), keys);
        drop(th);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn rbtree_invariants_hold_for_any_insert_order(keys in proptest::collection::vec(any::<u16>(), 1..120)) {
        let d = dir("rbt");
        let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PRbTree::open(&m, "t").unwrap();
        let mut unique = std::collections::HashSet::new();
        for k in &keys {
            t.insert(&mut th, *k as u64, &k.to_le_bytes()).unwrap();
            unique.insert(*k);
        }
        prop_assert_eq!(t.check_invariants(&mut th).unwrap() as usize, unique.len());
        drop(th);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn tornbit_recovery_is_a_prefix_under_any_crash(
        records in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..12), 1..12),
        flush_mask in any::<u16>(),
        crash_seed in any::<u64>(),
    ) {
        let d = dir("rawl");
        let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
        let pmem = m.pmem_handle();
        let r = m.regions().pmap("plog", 64 + 4096 * 8, &pmem).unwrap();
        let mut log = TornbitLog::create(m.regions().pmem_handle(), r.addr, 4096).unwrap();
        let mut flushed_prefix = 0usize;
        for (i, rec) in records.iter().enumerate() {
            log.append(rec).unwrap();
            if flush_mask & (1 << (i % 16)) != 0 {
                log.flush();
                flushed_prefix = i + 1;
            }
        }
        // Crash while the log handle is still live, so its unfenced
        // streaming stores are genuinely in flight (dropping the handle
        // first would drain them, which models an orderly exit instead).
        drop(pmem);
        let (dirpath, img) = m.crash(CrashPolicy::random(crash_seed));
        let _ = (log, flushed_prefix);
        let m2 = Mnemosyne::builder(&dirpath).from_image(img).open().unwrap();
        let pmem2 = m2.regions().pmem_handle();
        let (_log2, recovered) = TornbitLog::recover(pmem2, r.addr).unwrap();
        // Recovery must deliver a prefix of what was appended.
        prop_assert!(recovered.len() <= records.len());
        for (i, rec) in recovered.iter().enumerate() {
            prop_assert_eq!(rec, &records[i], "record {} corrupted", i);
        }
        std::fs::remove_dir_all(&d).ok();
    }
}

#[test]
fn pstatic_directory_is_exhaustive_and_stable() {
    // Not random, but a systematic sweep: bind many variables, reboot,
    // verify all bindings are stable.
    let d = dir("pstatic");
    let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
    let mut addrs = Vec::new();
    for i in 0..64u64 {
        addrs.push(m.pstatic(&format!("var{i}"), 8 + (i % 4) * 8).unwrap());
    }
    let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
    for (i, &a) in addrs.iter().enumerate() {
        assert_eq!(
            m2.pstatic(&format!("var{i}"), 8 + (i as u64 % 4) * 8)
                .unwrap(),
            a
        );
    }
    std::fs::remove_dir_all(&d).ok();
}
