//! Application-level integration (§6.2): the converted OpenLDAP and
//! Tokyo Cabinet behave identically across backends and differ exactly in
//! their durability guarantees.

use std::path::PathBuf;
use std::sync::Arc;

use mnemosyne::{CrashPolicy, Mnemosyne};
use mnemosyne_apps::ldap::{BackBdb, BackLdbm, BackMnemosyne, Backend, Workload};
use mnemosyne_apps::tokyo::{KvStore, MnemosyneTokyo, MsyncTokyo};
use pcmdisk::{DiskConfig, PcmDisk, SimpleFs};

fn dir(tag: &str) -> PathBuf {
    // Unique per run (counter + pid + timestamp), so a leftover directory
    // from a killed earlier run can never alias this one.
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let d = std::env::temp_dir().join(format!("it-apps-{tag}-{}-{n}-{t:08x}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn fs(blocks: u64) -> SimpleFs {
    SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(blocks)))).unwrap()
}

#[test]
fn all_three_ldap_backends_agree() {
    let d = dir("agree");
    let w = Workload::default();
    let m = Arc::new(Mnemosyne::builder(&d).scm_size(96 << 20).open().unwrap());
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(BackBdb::open(fs(1 << 15)).unwrap()),
        Box::new(BackLdbm::open(fs(1 << 15), 64).unwrap()),
        Box::new(BackMnemosyne::open(Arc::clone(&m)).unwrap()),
    ];
    for b in &backends {
        let mut s = b.session();
        for i in 0..80u64 {
            s.add(&w.entry(i)).unwrap();
        }
    }
    // Every backend returns the same entries.
    for i in (0..80u64).step_by(7) {
        let dn = w.entry(i).dn;
        let mut results = Vec::new();
        for b in &backends {
            let mut s = b.session();
            results.push(s.search(&dn).unwrap().expect("present"));
        }
        assert_eq!(results[0], results[1], "bdb vs ldbm differ at {dn}");
        assert_eq!(results[0], results[2], "bdb vs mnemosyne differ at {dn}");
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn mnemosyne_ldap_backend_survives_crash() {
    let d = dir("ldap-crash");
    let w = Workload::default();
    let m = Arc::new(Mnemosyne::builder(&d).scm_size(96 << 20).open().unwrap());
    {
        let b = BackMnemosyne::open(Arc::clone(&m)).unwrap();
        let mut s = b.session();
        for i in 0..60u64 {
            s.add(&w.entry(i)).unwrap();
        }
    }
    let m = Arc::try_unwrap(m).expect("sole owner");
    let m2 = Arc::new(m.crash_reboot(CrashPolicy::random(42)).unwrap());
    let b = BackMnemosyne::open(Arc::clone(&m2)).unwrap();
    let mut s = b.session();
    for i in 0..60u64 {
        let e = s.search(&w.entry(i).dn).unwrap().expect("entry survived");
        assert_eq!(e, w.entry(i));
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn tokyo_modes_agree_on_contents() {
    let d = dir("tokyo-agree");
    let m = Arc::new(Mnemosyne::builder(&d).scm_size(96 << 20).open().unwrap());
    let mut msync = MsyncTokyo::open(fs(1 << 15), "tc", 64).unwrap();
    let mut mnemo = MnemosyneTokyo::open(&m, "tc").unwrap();
    let stores: &mut [&mut dyn KvStore] = &mut [&mut msync, &mut mnemo];
    for s in stores.iter_mut() {
        for i in 0..120u64 {
            s.insert(i, &[(i % 251) as u8; 64]).unwrap();
        }
        for i in 0..60u64 {
            s.delete(i * 2).unwrap();
        }
    }
    for i in 0..120u64 {
        let a = stores[0].get(i).unwrap();
        let b = stores[1].get(i).unwrap();
        assert_eq!(a, b, "modes disagree at key {i}");
        assert_eq!(a.is_some(), i % 2 == 1);
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn bdb_store_recovers_ldap_entries_after_disk_crash() {
    // back-bdb commits through the WAL: entries survive a PCM-disk crash.
    let w = Workload::default();
    let filesystem = fs(1 << 15);
    let disk = Arc::clone(filesystem.disk());
    {
        let b = BackBdb::open(filesystem).unwrap();
        let mut s = b.session();
        for i in 0..30u64 {
            s.add(&w.entry(i)).unwrap();
        }
    }
    disk.crash();
    let fs2 = SimpleFs::open(disk).unwrap();
    let b2 = BackBdb::open(fs2).unwrap();
    let mut s = b2.session();
    for i in 0..30u64 {
        assert!(
            s.search(&w.entry(i).dn).unwrap().is_some(),
            "back-bdb lost committed entry {i}"
        );
    }
}

#[test]
fn ldbm_backend_may_lose_recent_entries_on_crash() {
    // back-ldbm's weaker guarantee (§6.2): updates since the last flush
    // are gone after a crash.
    let w = Workload::default();
    let filesystem = fs(1 << 15);
    let disk = Arc::clone(filesystem.disk());
    {
        let b = BackLdbm::open(filesystem, 1_000_000).unwrap(); // never flushes
        let mut s = b.session();
        for i in 0..10u64 {
            s.add(&w.entry(i)).unwrap();
        }
    }
    disk.crash();
    let fs2 = SimpleFs::open(disk).unwrap();
    let b2 = BackLdbm::open(fs2, 1_000_000).unwrap();
    let mut s = b2.session();
    assert!(
        s.search(&w.entry(0).dn).unwrap().is_none(),
        "unflushed ldbm entries should be gone after a crash"
    );
}
