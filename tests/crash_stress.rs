//! Crash stress (§6.2): the paper's seeded random-update program, run
//! across many adversarial crash seeds. Every crash must leave memory
//! holding exactly the values of the last committed round.

use std::path::PathBuf;

use mnemosyne::{CrashPolicy, Mnemosyne, Truncation};

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "it-stress-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// One stress iteration: run `rounds` of seeded updates under the given
/// truncation regime, crash with `seed`, verify on reboot.
fn stress(tag: &str, truncation: Truncation, seed: u64, rounds: u64) {
    const CELLS: u64 = 128;
    let d = dir(&format!("{tag}-{seed}"));
    let m = Mnemosyne::builder(&d)
        .scm_size(48 << 20)
        .truncation(truncation)
        .open()
        .unwrap();
    let area = m.pstatic("cells", CELLS * 8).unwrap();
    let round_cell = m.pstatic("round", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    for round in 1..=rounds {
        // One transaction per round: cells + the round counter move
        // together or not at all.
        th.atomic(|tx| {
            let mut x = round ^ (seed << 16);
            for i in 0..CELLS {
                x = lcg(x);
                tx.write_u64(area.add(i * 8), x)?;
            }
            tx.write_u64(round_cell, round)?;
            Ok(())
        })
        .unwrap();
    }
    drop(th);

    let m2 = m.crash_reboot(CrashPolicy::random(seed)).unwrap();
    let area = m2.pstatic("cells", CELLS * 8).unwrap();
    let round_cell = m2.pstatic("round", 8).unwrap();
    let mut th = m2.register_thread().unwrap();
    let round = th.atomic(|tx| tx.read_u64(round_cell)).unwrap();
    assert_eq!(round, rounds, "all rounds committed before the crash");
    let mut x = round ^ (seed << 16);
    for i in 0..CELLS {
        x = lcg(x);
        let got = th
            .atomic(|tx| tx.read_u64(area.add(i * 8)))
            .unwrap();
        assert_eq!(
            got, x,
            "[{tag} seed {seed}] cell {i} does not match round {round}"
        );
    }
    drop(th);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn sync_truncation_many_seeds() {
    for seed in 1..=8u64 {
        stress("sync", Truncation::Sync, seed, 10);
    }
}

#[test]
fn async_truncation_many_seeds() {
    // Async truncation is the adversarial case: the data of committed
    // rounds is usually still in the cache at crash time and must be
    // replayed from the per-thread redo logs.
    for seed in 100..=107u64 {
        stress("async", Truncation::Async, seed, 10);
    }
}

#[test]
fn extreme_policies() {
    stress("dropall", Truncation::Async, 1, 5);
    for (i, p) in [0.1f64, 0.9].iter().enumerate() {
        let seed = 500 + i as u64;
        // Inline variant with custom probability.
        const CELLS: u64 = 64;
        let d = dir(&format!("policy-{seed}"));
        let m = Mnemosyne::builder(&d)
            .scm_size(48 << 20)
            .truncation(Truncation::Async)
            .open()
            .unwrap();
        let area = m.pstatic("cells", CELLS * 8).unwrap();
        let mut th = m.register_thread().unwrap();
        th.atomic(|tx| {
            for c in 0..CELLS {
                tx.write_u64(area.add(c * 8), c + 1)?;
            }
            Ok(())
        })
        .unwrap();
        drop(th);
        let m2 = m
            .crash_reboot(CrashPolicy::Random {
                seed,
                apply_probability: *p,
            })
            .unwrap();
        let area = m2.pstatic("cells", CELLS * 8).unwrap();
        let mut th = m2.register_thread().unwrap();
        for c in 0..CELLS {
            assert_eq!(
                th.atomic(|tx| tx.read_u64(area.add(c * 8))).unwrap(),
                c + 1,
                "probability {p}: cell {c}"
            );
        }
        drop(th);
        std::fs::remove_dir_all(&d).ok();
    }
}

#[test]
fn uncommitted_work_never_surfaces() {
    // A transaction that cancels right before the crash must leave no
    // trace, no matter the crash policy.
    let d = dir("uncommitted");
    let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
    let cell = m.pstatic("v", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    th.atomic(|tx| tx.write_u64(cell, 10)).unwrap();
    let _ = th.atomic(|tx| {
        tx.write_u64(cell, 99)?;
        Err::<(), _>(tx.cancel())
    });
    drop(th);
    let m2 = m.crash_reboot(CrashPolicy::ApplyAll).unwrap();
    let cell = m2.pstatic("v", 8).unwrap();
    let mut th = m2.register_thread().unwrap();
    assert_eq!(th.atomic(|tx| tx.read_u64(cell)).unwrap(), 10);
    std::fs::remove_dir_all(&d).ok();
}
