//! Crash stress (§6.2): the paper's seeded random-update program, run
//! across many adversarial crash seeds. Every crash must leave memory
//! holding exactly the values of the last committed round.

use std::path::PathBuf;

use mnemosyne::{CrashPolicy, Error, Mnemosyne, Truncation};

fn dir(tag: &str) -> PathBuf {
    // Unique per run (counter + pid + timestamp), so a leftover directory
    // from a killed earlier run can never alias this one.
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let d = std::env::temp_dir().join(format!(
        "it-stress-{tag}-{}-{n}-{t:08x}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// One stress iteration: run `rounds` of seeded updates under the given
/// truncation regime, crash with `seed`, verify on reboot.
fn stress(tag: &str, truncation: Truncation, seed: u64, rounds: u64) {
    const CELLS: u64 = 128;
    let d = dir(&format!("{tag}-{seed}"));
    let m = Mnemosyne::builder(&d)
        .scm_size(48 << 20)
        .truncation(truncation)
        .open()
        .unwrap();
    let area = m.pstatic("cells", CELLS * 8).unwrap();
    let round_cell = m.pstatic("round", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    for round in 1..=rounds {
        // One transaction per round: cells + the round counter move
        // together or not at all.
        th.atomic(|tx| {
            let mut x = round ^ (seed << 16);
            for i in 0..CELLS {
                x = lcg(x);
                tx.write_u64(area.add(i * 8), x)?;
            }
            tx.write_u64(round_cell, round)?;
            Ok(())
        })
        .unwrap();
    }
    drop(th);

    let m2 = m.crash_reboot(CrashPolicy::random(seed)).unwrap();
    let area = m2.pstatic("cells", CELLS * 8).unwrap();
    let round_cell = m2.pstatic("round", 8).unwrap();
    let mut th = m2.register_thread().unwrap();
    let round = th.atomic(|tx| tx.read_u64(round_cell)).unwrap();
    assert_eq!(round, rounds, "all rounds committed before the crash");
    let mut x = round ^ (seed << 16);
    for i in 0..CELLS {
        x = lcg(x);
        let got = th.atomic(|tx| tx.read_u64(area.add(i * 8))).unwrap();
        assert_eq!(
            got, x,
            "[{tag} seed {seed}] cell {i} does not match round {round}"
        );
    }
    drop(th);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn sync_truncation_many_seeds() {
    for seed in 1..=8u64 {
        stress("sync", Truncation::Sync, seed, 10);
    }
}

#[test]
fn async_truncation_many_seeds() {
    // Async truncation is the adversarial case: the data of committed
    // rounds is usually still in the cache at crash time and must be
    // replayed from the per-thread redo logs.
    for seed in 100..=107u64 {
        stress("async", Truncation::Async, seed, 10);
    }
}

#[test]
fn extreme_policies() {
    stress("dropall", Truncation::Async, 1, 5);
    for (i, p) in [0.1f64, 0.9].iter().enumerate() {
        let seed = 500 + i as u64;
        // Inline variant with custom probability.
        const CELLS: u64 = 64;
        let d = dir(&format!("policy-{seed}"));
        let m = Mnemosyne::builder(&d)
            .scm_size(48 << 20)
            .truncation(Truncation::Async)
            .open()
            .unwrap();
        let area = m.pstatic("cells", CELLS * 8).unwrap();
        let mut th = m.register_thread().unwrap();
        th.atomic(|tx| {
            for c in 0..CELLS {
                tx.write_u64(area.add(c * 8), c + 1)?;
            }
            Ok(())
        })
        .unwrap();
        drop(th);
        let m2 = m
            .crash_reboot(CrashPolicy::Random {
                seed,
                apply_probability: *p,
            })
            .unwrap();
        let area = m2.pstatic("cells", CELLS * 8).unwrap();
        let mut th = m2.register_thread().unwrap();
        for c in 0..CELLS {
            assert_eq!(
                th.atomic(|tx| tx.read_u64(area.add(c * 8))).unwrap(),
                c + 1,
                "probability {p}: cell {c}"
            );
        }
        drop(th);
        std::fs::remove_dir_all(&d).ok();
    }
}

// --- Media corruption: recovery must degrade gracefully --------------
//
// Crashes are clean by construction (§4.4's torn-bit reasoning proves the
// log tail is distinguishable); genuine media corruption is not. These
// tests flip real bits in the redo-log pages and demand recovery return a
// typed error or recover intact state — never panic, never serve a
// corrupted record as data.

#[test]
fn corrupt_log_header_yields_typed_error_not_panic() {
    let d = dir("corrupt-header");
    let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
    let cell = m.pstatic("v", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    th.atomic(|tx| tx.write_u64(cell, 5)).unwrap();
    drop(th);
    // Flip a high bit of the capacity word in thread 0's redo-log header:
    // the magic stays valid, so recovery must walk into the header check
    // and reject it, not trust a 2^50-word capacity and scan off the map.
    let log0 = m
        .regions()
        .find("mtm.log0")
        .expect("redo log region exists");
    let pmem = m.pmem_handle();
    let pa = pmem.try_translate(log0.addr.add(8)).unwrap();
    m.sim().inject_bit_flip(pa, 50);
    match m.crash_reboot(CrashPolicy::DropAll) {
        Err(e) => {
            let s = e.to_string();
            assert!(
                s.contains("corruption"),
                "expected a typed corruption error, got: {s}"
            );
        }
        Ok(_) => panic!("recovery silently accepted a corrupt log header"),
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn seeded_bit_flips_in_log_body_never_panic_or_corrupt_data() {
    // Async truncation with the log manager killed up front (the abrupt
    // process-death model): committed redo records stay in the logs, so
    // the flips land exactly where recovery reads. Every seed must end in
    // one of two states: a typed corruption error, or a successful
    // recovery whose data is exactly a committed round.
    const CELLS: u64 = 32;
    let mut typed_errors = 0u32;
    let mut clean = 0u32;
    for seed in 0..12u64 {
        let d = dir(&format!("flip-{seed}"));
        let m = Mnemosyne::builder(&d)
            .scm_size(48 << 20)
            .truncation(Truncation::Async)
            .open()
            .unwrap();
        m.mtm().kill(); // no truncation from here on
        let area = m.pstatic("cells", CELLS * 8).unwrap();
        let mut th = m.register_thread().unwrap();
        for round in 1..=5u64 {
            th.atomic(|tx| {
                for i in 0..CELLS {
                    tx.write_u64(area.add(i * 8), round * 1000 + i)?;
                }
                Ok(())
            })
            .unwrap();
        }
        drop(th);
        // Scatter flips across the first page of log 0's record area (one
        // page is physically contiguous; the region as a whole need not
        // be). The five records cover most of the page, so the flips hit
        // live, checksummed words.
        let log0 = m.regions().find("mtm.log0").unwrap();
        let pmem = m.pmem_handle();
        let body = pmem.try_translate(log0.addr.add(64)).unwrap();
        m.sim().inject_corruption(body, 4096 - 64, seed, 8);
        match m.crash_reboot(CrashPolicy::DropAll) {
            Ok(m2) => {
                clean += 1;
                let area = m2.pstatic("cells", CELLS * 8).unwrap();
                let mut th = m2.register_thread().unwrap();
                let base = th.atomic(|tx| tx.read_u64(area)).unwrap();
                assert!(
                    base % 1000 == 0 && base <= 5000,
                    "seed {seed}: cell 0 = {base} was never committed"
                );
                for i in 1..CELLS {
                    let v = th.atomic(|tx| tx.read_u64(area.add(i * 8))).unwrap();
                    let want = if base == 0 { 0 } else { base + i };
                    assert_eq!(
                        v, want,
                        "seed {seed}: cell {i} torn across rounds after recovery"
                    );
                }
            }
            Err(Error::Tx(_) | Error::Log(_) | Error::Heap(_)) => typed_errors += 1,
            Err(e) => panic!("seed {seed}: unexpected error class: {e}"),
        }
        std::fs::remove_dir_all(&d).ok();
    }
    assert!(
        typed_errors > 0,
        "no seed produced a typed corruption error"
    );
    assert_eq!(clean + typed_errors, 12);
}

#[test]
fn uncommitted_work_never_surfaces() {
    // A transaction that cancels right before the crash must leave no
    // trace, no matter the crash policy.
    let d = dir("uncommitted");
    let m = Mnemosyne::builder(&d).scm_size(48 << 20).open().unwrap();
    let cell = m.pstatic("v", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    th.atomic(|tx| tx.write_u64(cell, 10)).unwrap();
    let _ = th.atomic(|tx| {
        tx.write_u64(cell, 99)?;
        Err::<(), _>(tx.cancel())
    });
    drop(th);
    let m2 = m.crash_reboot(CrashPolicy::ApplyAll).unwrap();
    let cell = m2.pstatic("v", 8).unwrap();
    let mut th = m2.register_thread().unwrap();
    assert_eq!(th.atomic(|tx| tx.read_u64(cell)).unwrap(), 10);
    std::fs::remove_dir_all(&d).ok();
}
