//! Crash-point sweeps and concurrency tests for the batched commit path:
//! group data fences, watermark (incremental) truncation, and the
//! adaptive contention manager.
//!
//! The PR-1 sweep driver re-runs a workload crashing at every strided
//! durability primitive; here the workloads are shaped so that the crash
//! windows *specific to the new pipeline* are covered:
//!
//! * between a commit's group-covered data fence and its (possibly
//!   skipped) watermark truncation — committed records linger in the log
//!   and recovery must replay them idempotently;
//! * inside the log manager's incremental drain — the watermark may have
//!   advanced past some records of a pass but not others;
//! * multi-word transactions must stay atomic across all of it: the
//!   invariant is always "every cell carries the same value".

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};

use mnemosyne::{crash_sweep, CrashPolicy, Error, Mnemosyne, ScmConfig, SweepConfig, Truncation};

fn dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("it-cscale-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Workload: `rounds` transactions, each writing the same round number
/// into `width` adjacent cells. At every instant the committed state has
/// all cells equal; a torn transaction (some cells old, some new) after
/// recovery is exactly the redo-replay bug the sweep hunts.
fn wide_bump_workload(m: &Mnemosyne, width: u64, rounds: u64) -> Result<(), Error> {
    let cells = m.pstatic("wide", width * 8)?;
    let mut th = m.register_thread()?;
    for r in 1..=rounds {
        th.atomic(|tx| {
            for j in 0..width {
                tx.write_u64(cells.add(j * 8), r)?;
            }
            Ok(())
        })?;
    }
    Ok(())
}

/// Invariant: all cells equal, value within the rounds ever written.
fn check_wide(m: &Mnemosyne, width: u64, rounds: u64) -> Result<(), String> {
    let cells = m.pstatic("wide", width * 8).map_err(|e| e.to_string())?;
    let mut th = m.register_thread().map_err(|e| e.to_string())?;
    let vals: Vec<u64> = th
        .atomic(|tx| {
            (0..width)
                .map(|j| tx.read_u64(cells.add(j * 8)))
                .collect::<Result<_, _>>()
        })
        .map_err(|e| e.to_string())?;
    let first = vals[0];
    if vals.iter().any(|&v| v != first) {
        return Err(format!("torn transaction visible after recovery: {vals:?}"));
    }
    if first > rounds {
        return Err(format!("cell value {first} exceeds {rounds} rounds"));
    }
    Ok(())
}

/// Sync mode with a small log and the default occupancy threshold: the
/// workload crosses the watermark-truncation point several times, so the
/// sweep crashes inside every window of the pipelined commit — after the
/// data fence but before truncation, right after a truncation, and in
/// the commits in between (whose records linger in the log for recovery
/// to replay). Includes a mid-recovery double-crash pass.
#[test]
fn sync_batched_commit_survives_crash_sweep() {
    let d = dir("sync");
    let width = 4u64;
    let rounds = 15u64;
    let cfg = SweepConfig {
        max_points: 20,
        recovery_points: 2,
        policy: CrashPolicy::DropAll,
        keep_failing_dirs: false,
    };
    let report = crash_sweep(
        &d,
        &cfg,
        |p: &Path| {
            Mnemosyne::builder(p)
                .scm_config(ScmConfig::virtual_clock(8 << 20))
                .truncation(Truncation::Sync)
                .log_words(256)
        },
        |m| wide_bump_workload(m, width, rounds),
        |m| check_wide(m, width, rounds),
    )
    .unwrap();
    assert!(report.passed(), "failures: {:?}", report.failures);
    assert!(report.crashes_fired > 0);
    assert!(report.recovery_points_tested > 0);
    std::fs::remove_dir_all(&d).ok();
}

/// Async mode with a log so small the producer outruns the manager: the
/// sweep crashes inside the manager's *incremental* drain, where the
/// durable watermark has advanced past part of a pass — recovery must
/// replay exactly the surviving suffix, never a torn record.
#[test]
fn async_incremental_truncation_survives_crash_sweep() {
    let d = dir("async");
    let width = 12u64;
    let rounds = 10u64;
    let cfg = SweepConfig {
        max_points: 16,
        recovery_points: 0,
        policy: CrashPolicy::DropAll,
        keep_failing_dirs: false,
    };
    let report = crash_sweep(
        &d,
        &cfg,
        |p: &Path| {
            Mnemosyne::builder(p)
                .scm_config(ScmConfig::virtual_clock(8 << 20))
                .truncation(Truncation::Async)
                .log_words(128)
        },
        |m| wide_bump_workload(m, width, rounds),
        |m| check_wide(m, width, rounds),
    )
    .unwrap();
    assert!(report.passed(), "failures: {:?}", report.failures);
    assert!(report.crashes_fired > 0);
    std::fs::remove_dir_all(&d).ok();
}

/// Concurrent disjoint commits under group fencing: every thread's
/// counter must survive an abrupt crash with exactly its committed
/// count, and the group-fence accounting identity must hold.
#[test]
fn group_commit_is_durable_and_accounted() {
    let d = dir("group");
    let threads = 4usize;
    let bumps = 30u64;
    let m = Arc::new(
        Mnemosyne::builder(&d)
            .scm_config(ScmConfig::virtual_clock(16 << 20))
            .truncation(Truncation::Sync)
            .max_threads(8)
            .open()
            .unwrap(),
    );
    let cells = m.pstatic("percpu", threads as u64 * 8).unwrap();
    let barrier = Arc::new(Barrier::new(threads));
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let m = Arc::clone(&m);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut th = m.register_thread().unwrap();
                let cell = cells.add(t as u64 * 8);
                barrier.wait();
                for _ in 0..bumps {
                    th.atomic(|tx| {
                        let v = tx.read_u64(cell)?;
                        tx.write_u64(cell, v + 1)?;
                        Ok(())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }

    // Identity: every sync update commit either led a group fence or
    // piggybacked on one. (`pstatic` also commits an update transaction
    // when it registers a slot, hence bounds rather than equality on the
    // worker count.)
    let snap = m.telemetry().snapshot();
    let update_commits = threads as u64 * bumps;
    let covered = snap.counter("mtm.group_fences") + snap.counter("mtm.piggybacked_commits");
    assert!(
        covered >= update_commits,
        "every worker commit must be fence-covered: {covered} < {update_commits}"
    );
    assert!(
        covered <= snap.counter("mtm.commits"),
        "covered commits cannot exceed all commits"
    );

    // Disjoint cells: no conflict episode may end in an abort.
    assert_eq!(snap.counter("mtm.conflict_aborts"), 0);

    // Abrupt power loss after the last commit: every count must survive
    // (each commit's data was fenced before its locks were released).
    let m2 = {
        let m = Arc::into_inner(m).expect("all workers joined");
        m.mtm().kill();
        m.crash_reboot(CrashPolicy::DropAll).unwrap()
    };
    let mut th = m2.register_thread().unwrap();
    let cells = m2.pstatic("percpu", threads as u64 * 8).unwrap();
    for t in 0..threads {
        let v = th
            .atomic(|tx| tx.read_u64(cells.add(t as u64 * 8)))
            .unwrap();
        assert_eq!(v, bumps, "thread {t}'s counter lost commits");
    }
    drop(th);
    drop(m2); // release backing files before removing the directory
    std::fs::remove_dir_all(&d).ok();
}

/// Bounded backoff resolves a transient conflict by waiting instead of
/// aborting: a slow writer holds the covering lock while a second thread
/// runs into it; the second thread must (eventually) commit, and the
/// conflict episode must be visible in telemetry.
#[test]
fn contended_lock_resolves_by_backoff() {
    let d = dir("backoff");
    let m = Arc::new(
        Mnemosyne::builder(&d)
            .scm_config(ScmConfig::virtual_clock(8 << 20))
            .truncation(Truncation::Sync)
            .open()
            .unwrap(),
    );
    let cell = m.pstatic("hot", 8).unwrap();
    let barrier = Arc::new(Barrier::new(2));

    let slow = {
        let m = Arc::clone(&m);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut th = m.register_thread().unwrap();
            let mut first = true;
            th.atomic(|tx| {
                let v = tx.read_u64(cell)?;
                tx.write_u64(cell, v + 1)?; // lock acquired here
                if first {
                    first = false;
                    barrier.wait(); // release the fast thread…
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Ok(())
            })
            .unwrap();
        })
    };
    let fast = {
        let m = Arc::clone(&m);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut th = m.register_thread().unwrap();
            barrier.wait(); // …into the held lock
            th.atomic(|tx| {
                let v = tx.read_u64(cell)?;
                tx.write_u64(cell, v + 1)?;
                Ok(())
            })
            .unwrap();
        })
    };
    slow.join().unwrap();
    fast.join().unwrap();

    let mut th = m.register_thread().unwrap();
    let v = th.atomic(|tx| tx.read_u64(cell)).unwrap();
    assert_eq!(v, 2, "both increments must commit");
    let snap = m.telemetry().snapshot();
    assert!(
        snap.counter("mtm.lock_conflicts") >= 1,
        "the contention manager must have seen the conflict"
    );
    assert!(
        snap.counter("mtm.lock_conflicts") >= snap.counter("mtm.conflict_aborts"),
        "aborted episodes are a subset of conflict episodes"
    );
    drop(th);
    std::fs::remove_dir_all(&d).ok();
}

/// Sync-mode amortised truncation leaves committed records in the log on
/// a clean shutdown; reopening must replay them idempotently — same
/// values, no invariant change — rather than reject or skip them.
#[test]
fn lingering_committed_records_replay_idempotently() {
    let d = dir("linger");
    let boot = |p: &Path| {
        Mnemosyne::builder(p)
            .scm_config(ScmConfig::virtual_clock(8 << 20))
            .truncation(Truncation::Sync)
            .log_words(1 << 12)
    };
    let m = boot(&d).open().unwrap();
    let cell = m.pstatic("idem", 8).unwrap();
    {
        let mut th = m.register_thread().unwrap();
        for _ in 0..20u64 {
            th.atomic(|tx| {
                let v = tx.read_u64(cell)?;
                tx.write_u64(cell, v + 1)?;
                Ok(())
            })
            .unwrap();
        }
    }
    // A big log at the default threshold: nothing was truncated, so the
    // records survive the (clean) crash below and are replayed at open.
    // (`crash_reboot` reopens with default geometry; rebuild with the
    // same builder instead, since `log_words` shapes the region size.)
    let (dir2, img) = m.crash(CrashPolicy::DropAll);
    let m2 = boot(&dir2).from_image(img).open().unwrap();
    assert!(
        m2.mtm().stats().replayed > 0,
        "lingering committed records should have been replayed"
    );
    let cell = m2.pstatic("idem", 8).unwrap();
    let mut th = m2.register_thread().unwrap();
    let v = th.atomic(|tx| tx.read_u64(cell)).unwrap();
    assert_eq!(v, 20, "idempotent replay must not change committed state");
    drop(th);
    drop(m2); // release backing files before removing the directory
    std::fs::remove_dir_all(&d).ok();
}

/// The watermark-truncation counter actually moves in sync mode once the
/// log crosses the occupancy threshold (guards against the amortisation
/// silently never firing — which would look fine until logs filled).
#[test]
fn watermark_truncations_fire_past_the_threshold() {
    let d = dir("wm");
    let m = Mnemosyne::builder(&d)
        .scm_config(ScmConfig::virtual_clock(8 << 20))
        .truncation(Truncation::Sync)
        .log_words(128)
        .open()
        .unwrap();
    let cell = m.pstatic("wmcell", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    for _ in 0..40u64 {
        th.atomic(|tx| {
            let v = tx.read_u64(cell)?;
            tx.write_u64(cell, v + 1)?;
            Ok(())
        })
        .unwrap();
    }
    let snap = m.telemetry().snapshot();
    assert!(
        snap.counter("mtm.wm_truncations") > 0,
        "a 128-word log over 40 commits must cross the 50% threshold"
    );
    let v = th.atomic(|tx| tx.read_u64(cell)).unwrap();
    assert_eq!(v, 40);
    drop(th);
    std::fs::remove_dir_all(&d).ok();
}
