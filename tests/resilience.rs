//! Operational-resilience tests: the background checkpointer bounds the
//! outstanding redo log without ever losing an acknowledged write, and
//! parallel recovery — even crashed mid-replay — is exactly as safe as
//! the serial replay it replaces.
//!
//! Crash sweeps here root their scratch space under
//! `target/crash-corpus/<name>` instead of the temp dir: a failing crash
//! point keeps its directory (media image, logs), and CI uploads the
//! whole corpus as an artifact on test failure.

use std::path::PathBuf;

use mnemosyne::{crash_sweep, CrashPolicy, Mnemosyne, ScmConfig, SweepConfig, Truncation};

/// Sweep scratch root that CI uploads on failure.
fn corpus_dir(tag: &str) -> PathBuf {
    let d = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("../crash-corpus")
        .join(tag);
    std::fs::remove_dir_all(&d).ok();
    d
}

fn dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("it-resil-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// With `sync_truncate_pct(90)` commits never truncate on their own
/// below 90% occupancy, so a sustained writer grows the backlog without
/// bound — unless checkpoints truncate it. This is the boundedness
/// claim: checkpoint cadence, not workload length, bounds the
/// outstanding log.
#[test]
fn checkpoints_bound_outstanding_log_under_sustained_writes() {
    let d = dir("bound");
    // (`crash` + the same builder rather than `crash_reboot`, since
    // `log_words` shapes the region layout.)
    let build = |dir: &std::path::Path| {
        Mnemosyne::builder(dir)
            .scm_config(ScmConfig::virtual_clock(32 << 20))
            .truncation(Truncation::Sync)
            .sync_truncate_pct(90)
            .log_words(1 << 14)
    };
    let m = build(&d).open().unwrap();
    let cell = m.pstatic("sustained", 256).unwrap();
    let mut th = m.register_thread().unwrap();
    let mut grew = false;
    let mut hwm = 0u64;
    for round in 0..16u64 {
        for i in 0..40u64 {
            th.atomic(|tx| {
                tx.write_u64(cell.add((i % 32) * 8), round * 1000 + i)?;
                Ok(())
            })
            .unwrap();
        }
        let before = m.mtm().outstanding_log_words();
        grew |= before > 0;
        hwm = hwm.max(before);
        let stats = m.mtm().checkpoint();
        assert_eq!(stats.outstanding_before, before);
        assert_eq!(
            m.mtm().outstanding_log_words(),
            0,
            "checkpoint left a backlog in round {round}"
        );
    }
    assert!(grew, "workload never built a backlog — test is vacuous");
    // 16 checkpointed rounds; unchecked, the backlog would be ~16x one
    // round's. The high-water mark must stay at a single round's worth.
    assert!(
        hwm < (1 << 14) / 2,
        "outstanding log {hwm} words not bounded by the checkpoint cadence"
    );
    let snap = m.telemetry().snapshot();
    assert!(snap.counter("mtm.ckpt.runs") >= 16);
    assert!(snap.counter("mtm.ckpt.words") > 0);
    drop(th);
    // And nothing was lost: the last round's values survive a crash.
    let (d, image) = m.crash(CrashPolicy::DropAll);
    let m = build(&d).from_image(image).open().unwrap();
    let cell = m.pstatic("sustained", 256).unwrap();
    let mut th = m.register_thread().unwrap();
    let v = th.atomic(|tx| tx.read_u64(cell.add(8))).unwrap();
    assert_eq!(v, 15 * 1000 + 33);
    std::fs::remove_dir_all(&d).ok();
}

/// A checkpoint's truncation primitives are crash points like any
/// other. Sweeping a workload that checkpoints every few transactions
/// proves dying *inside* a checkpoint never loses an acknowledged
/// (committed) write — the truncation moves `head` only after the
/// durable watermark, so any torn state replays correctly.
#[test]
fn crash_sweep_with_mid_workload_checkpoints_loses_nothing() {
    let base = corpus_dir("ckpt-sweep");
    let cfg = SweepConfig {
        max_points: 20,
        recovery_points: 0,
        ..SweepConfig::default()
    };
    let report = crash_sweep(
        &base,
        &cfg,
        |p| {
            Mnemosyne::builder(p)
                .scm_config(ScmConfig::virtual_clock(8 << 20))
                .truncation(Truncation::Sync)
                .sync_truncate_pct(90)
        },
        |m| {
            let cell = m.pstatic("ckptcell", 8)?;
            let mut th = m.register_thread()?;
            for i in 0..8u64 {
                th.atomic(|tx| {
                    let v = tx.read_u64(cell)?;
                    tx.write_u64(cell, v + 1)?;
                    Ok(())
                })?;
                // Checkpoint from the workload thread: deterministic
                // primitive counts, so the sweep strides through the
                // truncation primitives themselves.
                if i % 2 == 1 {
                    m.mtm().checkpoint();
                }
            }
            Ok(())
        },
        |m| {
            let cell = m.pstatic("ckptcell", 8).map_err(|e| e.to_string())?;
            let mut th = m.register_thread().map_err(|e| e.to_string())?;
            let v = th
                .atomic(|tx| tx.read_u64(cell))
                .map_err(|e| e.to_string())?;
            if v <= 8 {
                Ok(())
            } else {
                Err(format!("counter {v} exceeds the 8 increments ever made"))
            }
        },
    )
    .unwrap();
    assert!(report.passed(), "failures: {:?}", report.failures);
    assert!(report.crashes_fired > 0);
    std::fs::remove_dir_all(&base).ok();
}

/// Double fault through the *parallel* replay path: every workload crash
/// point is followed by crashes scheduled inside 4-thread recovery
/// itself (scan and replay workers both issue counted primitives), and a
/// clean reboot afterwards must still satisfy the invariant.
#[test]
fn double_fault_during_parallel_replay_loses_nothing() {
    let base = corpus_dir("replay-sweep");
    let cfg = SweepConfig {
        max_points: 6,
        recovery_points: 3,
        ..SweepConfig::default()
    };
    let report = crash_sweep(
        &base,
        &cfg,
        |p| {
            Mnemosyne::builder(p)
                .scm_config(ScmConfig::virtual_clock(8 << 20))
                .truncation(Truncation::Sync)
                // Keep records lingering so recovery always has a real
                // multi-record backlog to replay in parallel.
                .sync_truncate_pct(90)
                .recovery_threads(4)
        },
        |m| {
            let cell = m.pstatic("dblcell", 64)?;
            let mut th = m.register_thread()?;
            for i in 0..6u64 {
                th.atomic(|tx| {
                    let v = tx.read_u64(cell)?;
                    tx.write_u64(cell, v + 1)?;
                    // Touch neighbouring lines too, so the replay
                    // stream spans several address partitions.
                    tx.write_u64(cell.add(8 + (i % 7) * 8), v)?;
                    Ok(())
                })?;
            }
            Ok(())
        },
        |m| {
            let cell = m.pstatic("dblcell", 64).map_err(|e| e.to_string())?;
            let mut th = m.register_thread().map_err(|e| e.to_string())?;
            let v = th
                .atomic(|tx| tx.read_u64(cell))
                .map_err(|e| e.to_string())?;
            if v <= 6 {
                Ok(())
            } else {
                Err(format!("counter {v} exceeds the 6 increments ever made"))
            }
        },
    )
    .unwrap();
    assert!(report.passed(), "failures: {:?}", report.failures);
    assert!(report.recovery_points_tested > 0);
    std::fs::remove_dir_all(&base).ok();
}

/// Parallel replay must be write-for-write equivalent to serial replay:
/// reboot the same crash image at 1 and 4 threads and compare the
/// recovered state word for word.
#[test]
fn parallel_replay_matches_serial_replay() {
    let d = dir("equiv");
    let build = |dir: &std::path::Path| {
        Mnemosyne::builder(dir)
            .scm_config(ScmConfig::virtual_clock(16 << 20))
            .truncation(Truncation::Sync)
            .sync_truncate_pct(90)
            .max_threads(6)
    };
    let m = build(&d).open().unwrap();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let m = &m;
            s.spawn(move || {
                let area = m.pstatic(&format!("eq{t}"), 64 * 8).unwrap();
                let mut th = m.register_thread().unwrap();
                for i in 0..50u64 {
                    th.atomic(|tx| {
                        tx.write_u64(area.add((i % 64) * 8), t * 10_000 + i)?;
                        tx.write_u64(area.add(((i + 13) % 64) * 8), t * 10_000 + i + 1)?;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    assert!(m.mtm().outstanding_log_words() > 0);
    let (d, image) = m.crash(CrashPolicy::DropAll);

    let read_all = |m: &Mnemosyne| -> Vec<u64> {
        let mut th = m.register_thread().unwrap();
        let mut out = Vec::new();
        for t in 0..4u64 {
            let area = m.pstatic(&format!("eq{t}"), 64 * 8).unwrap();
            for w in 0..64u64 {
                out.push(th.atomic(|tx| tx.read_u64(area.add(w * 8))).unwrap());
            }
        }
        out
    };

    let serial = {
        let m = build(&d)
            .from_image(image.clone())
            .recovery_threads(1)
            .open()
            .unwrap();
        assert_eq!(m.mtm().recovery_stats().threads, 1);
        assert!(m.mtm().recovery_stats().replayed > 0);
        read_all(&m)
    };
    let parallel = {
        let m = build(&d)
            .from_image(image)
            .recovery_threads(4)
            .open()
            .unwrap();
        assert_eq!(m.mtm().recovery_stats().threads, 4);
        read_all(&m)
    };
    assert_eq!(serial, parallel, "parallel replay diverged from serial");
    std::fs::remove_dir_all(&d).ok();
}
