//! Cross-crate integration: the full stack (regions + heap + transactions
//! + data structures) working together.

use std::path::PathBuf;
use std::sync::Arc;

use mnemosyne::{Mnemosyne, VAddr};
use mnemosyne_pds::{PAvlTree, PBPlusTree, PHashTable, PRbTree};

fn dir(tag: &str) -> PathBuf {
    // Unique per run (counter + pid + timestamp), so a leftover directory
    // from a killed earlier run can never alias this one.
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let d = std::env::temp_dir().join(format!("it-tx-{tag}-{}-{n}-{t:08x}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn all_structures_coexist_in_one_stack() {
    let d = dir("coexist");
    let m = Mnemosyne::builder(&d).scm_size(128 << 20).open().unwrap();
    let mut th = m.register_thread().unwrap();
    let hash = PHashTable::open(&m, &mut th, "hash", 64).unwrap();
    let avl = PAvlTree::open(&m, "avl").unwrap();
    let bpt = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
    let rbt = PRbTree::open(&m, "rbt").unwrap();

    for i in 0..100u64 {
        hash.put(&mut th, &i.to_le_bytes(), b"h").unwrap();
        avl.insert(&mut th, &i.to_le_bytes(), b"a").unwrap();
        bpt.insert(&mut th, i, b"b").unwrap();
        rbt.insert(&mut th, i, b"r").unwrap();
    }
    assert_eq!(hash.len(&mut th).unwrap(), 100);
    assert_eq!(avl.check_invariants(&mut th).unwrap(), 100);
    assert_eq!(bpt.keys(&mut th).unwrap().len(), 100);
    assert_eq!(rbt.check_invariants(&mut th).unwrap(), 100);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn cross_structure_transaction_is_atomic() {
    // One transaction moving a value between two structures: after a
    // cancel, neither side changed.
    let d = dir("atomic");
    let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let from = m.pstatic("from", 8).unwrap();
    let to = m.pstatic("to", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    th.atomic(|tx| {
        tx.write_u64(from, 100)?;
        tx.write_u64(to, 0)?;
        Ok(())
    })
    .unwrap();
    // A transfer that cancels midway must not be visible.
    let r = th.atomic(|tx| {
        let f = tx.read_u64(from)?;
        tx.write_u64(from, f - 30)?;
        tx.write_u64(to, 30)?;
        Err::<(), _>(tx.cancel())
    });
    assert!(r.is_err());
    let (f, t) = th
        .atomic(|tx| Ok((tx.read_u64(from)?, tx.read_u64(to)?)))
        .unwrap();
    assert_eq!((f, t), (100, 0), "cancelled transfer leaked");
    // And a committed one is fully visible.
    th.atomic(|tx| {
        let f = tx.read_u64(from)?;
        tx.write_u64(from, f - 30)?;
        tx.write_u64(to, 30)?;
        Ok(())
    })
    .unwrap();
    let (f, t) = th
        .atomic(|tx| Ok((tx.read_u64(from)?, tx.read_u64(to)?)))
        .unwrap();
    assert_eq!((f, t), (70, 30));
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn bank_invariant_under_concurrency() {
    // Classic STM test: concurrent random transfers preserve the total.
    let d = dir("bank");
    let m = Arc::new(Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap());
    const ACCOUNTS: u64 = 32;
    const TOTAL: u64 = ACCOUNTS * 100;
    let area = m.pstatic("accounts", ACCOUNTS * 8).unwrap();
    {
        let mut th = m.register_thread().unwrap();
        th.atomic(|tx| {
            for a in 0..ACCOUNTS {
                tx.write_u64(area.add(a * 8), 100)?;
            }
            Ok(())
        })
        .unwrap();
    }
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let m = Arc::clone(&m);
        joins.push(std::thread::spawn(move || {
            let mut th = m.register_thread().unwrap();
            let mut x = t + 1;
            for _ in 0..300 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let from = x % ACCOUNTS;
                let to = (x >> 8) % ACCOUNTS;
                if from == to {
                    continue;
                }
                th.atomic(|tx| {
                    let f = tx.read_u64(area.add(from * 8))?;
                    if f == 0 {
                        return Ok(());
                    }
                    let amount = 1 + x % f.min(10);
                    tx.write_u64(area.add(from * 8), f - amount)?;
                    let tv = tx.read_u64(area.add(to * 8))?;
                    tx.write_u64(area.add(to * 8), tv + amount)?;
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let mut th = m.register_thread().unwrap();
    let sum = th
        .atomic(|tx| {
            let mut s = 0u64;
            for a in 0..ACCOUNTS {
                s += tx.read_u64(area.add(a * 8))?;
            }
            Ok(s)
        })
        .unwrap();
    assert_eq!(sum, TOTAL, "money created or destroyed under concurrency");
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn heap_pointers_roundtrip_through_transactions() {
    // Build a linked list through tx.pmalloc, walk it back, free it.
    let d = dir("list");
    let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let head = m.pstatic("head", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    for i in 0..50u64 {
        th.atomic(|tx| {
            let node = tx.pmalloc(16)?;
            let old_head = tx.read_u64(head)?;
            tx.write_u64(node, old_head)?;
            tx.write_u64(node.add(8), i)?;
            tx.write_u64(head, node.0)?;
            Ok(())
        })
        .unwrap();
    }
    let values = th
        .atomic(|tx| {
            let mut out = Vec::new();
            let mut cur = VAddr(tx.read_u64(head)?);
            while !cur.is_null() {
                out.push(tx.read_u64(cur.add(8))?);
                cur = VAddr(tx.read_u64(cur)?);
            }
            Ok(out)
        })
        .unwrap();
    assert_eq!(values, (0..50u64).rev().collect::<Vec<_>>());
    // Free the list.
    let heap_frees_before = m.heap().stats().frees;
    th.atomic(|tx| {
        let mut cur = VAddr(tx.read_u64(head)?);
        while !cur.is_null() {
            let next = VAddr(tx.read_u64(cur)?);
            tx.pfree(cur);
            cur = next;
        }
        tx.write_u64(head, 0)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(m.heap().stats().frees - heap_frees_before, 50);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn swapping_under_memory_pressure_preserves_data() {
    // SCM smaller than the working set: the region manager must swap
    // pages to backing files and fault them back transparently.
    let d = dir("swap");
    let m = Mnemosyne::builder(&d)
        .scm_size(24 << 20)
        .heap_sizes(4 << 20, 4 << 20)
        .open()
        .unwrap();
    let pmem = m.pmem_handle();
    let regions = m.regions();
    let big = regions.pmap("big", 8 << 20, &pmem).unwrap();
    // Touch far more pages than stay resident comfortably.
    for page in 0..(8 << 20) / 4096u64 {
        pmem.store_u64(big.addr.add(page * 4096), page ^ 0xabcd);
        if page % 64 == 0 {
            pmem.fence();
        }
    }
    pmem.fence();
    // Force eviction of a batch and read everything back.
    m.manager().reclaim(256).unwrap();
    for page in 0..(8 << 20) / 4096u64 {
        assert_eq!(
            pmem.read_u64(big.addr.add(page * 4096)),
            page ^ 0xabcd,
            "page {page} lost in swap"
        );
    }
    std::fs::remove_dir_all(&d).ok();
}
