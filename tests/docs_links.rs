//! Docs gate: every intra-repo markdown link in the operator-facing
//! documentation must resolve to a file that exists. The CI docs job
//! runs this test explicitly, so renaming or deleting a doc without
//! fixing its inbound links fails the build instead of shipping a
//! dead link.

use std::path::Path;

/// The documents whose links are load-bearing for users and operators.
const DOCS: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "METRICS.md",
    "OPERATIONS.md",
    "PROTOCOL.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
];

/// Extracts every markdown link target — the `target` of `[text](target)`
/// — outside fenced code blocks.
fn link_targets(md: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in md.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("](") {
            let tail = &rest[i + 2..];
            let Some(j) = tail.find(')') else { break };
            out.push(tail[..j].to_string());
            rest = &tail[j + 1..];
        }
    }
    out
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut broken = Vec::new();
    for doc in DOCS {
        let text = std::fs::read_to_string(root.join(doc))
            .unwrap_or_else(|e| panic!("cannot read {doc}: {e}"));
        for link in link_targets(&text) {
            // External links and pure same-page anchors are out of scope;
            // a path before a `#fragment` must still resolve.
            let target = link.split('#').next().unwrap_or("");
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            if !root.join(target).exists() {
                broken.push(format!("{doc}: ({link})"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo markdown links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn link_extraction_sees_through_lines_and_skips_fences() {
    let md = "see [a](A.md) and [b](B.md#frag)\n```\n[no](NOPE.md)\n```\n[c](#anchor)\n";
    assert_eq!(link_targets(md), vec!["A.md", "B.md#frag", "#anchor"]);
}
