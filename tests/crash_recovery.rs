//! System-level crash-recovery tests (§6.2 "Reliability"): crash the
//! machine at nasty points with adversarial policies and verify every
//! layer recovers to a consistent state.

use std::path::PathBuf;

use mnemosyne::{crash_sweep, CrashPolicy, Error, Mnemosyne, ScmConfig, SweepConfig, Truncation};
use mnemosyne_pds::{PBPlusTree, PHashTable, PRbTree};

fn dir(tag: &str) -> PathBuf {
    // Unique per run (counter + pid + timestamp), so a leftover directory
    // from a killed earlier run can never alias this one.
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let d = std::env::temp_dir().join(format!("it-crash-{tag}-{}-{n}-{t:08x}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn repeated_crash_reboot_cycles_accumulate_state() {
    let d = dir("cycles");
    let mut m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    for round in 0..6u64 {
        let counter = m.pstatic("rounds", 8).unwrap();
        let mut th = m.register_thread().unwrap();
        let seen = th.atomic(|tx| tx.read_u64(counter)).unwrap();
        assert_eq!(seen, round, "state lost across crash {round}");
        th.atomic(|tx| tx.write_u64(counter, seen + 1)).unwrap();
        drop(th);
        m = m.crash_reboot(CrashPolicy::random(round * 7 + 1)).unwrap();
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn hashtable_consistent_after_crash_between_every_batch() {
    let d = dir("hash");
    let mut m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let mut inserted = 0u64;
    for round in 0..4u64 {
        let mut th = m.register_thread().unwrap();
        let h = PHashTable::open(&m, &mut th, "h", 64).unwrap();
        // Verify everything previously inserted is intact.
        for i in 0..inserted {
            assert_eq!(
                h.get(&mut th, &i.to_le_bytes()).unwrap().unwrap(),
                vec![(i % 256) as u8; 48],
                "entry {i} lost after crash {round}"
            );
        }
        for i in inserted..inserted + 50 {
            h.put(&mut th, &i.to_le_bytes(), &[(i % 256) as u8; 48])
                .unwrap();
        }
        inserted += 50;
        drop(th);
        m = m.crash_reboot(CrashPolicy::random(round + 100)).unwrap();
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn async_mode_trees_survive_dropall_crash() {
    // Async truncation = data often still volatile at crash time; the
    // redo logs must carry the structures across.
    let d = dir("async");
    let m = Mnemosyne::builder(&d)
        .scm_size(64 << 20)
        .truncation(Truncation::Async)
        .open()
        .unwrap();
    {
        let mut th = m.register_thread().unwrap();
        let bpt = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
        let rbt = PRbTree::open(&m, "rbt").unwrap();
        for i in 0..150u64 {
            bpt.insert(&mut th, i, &i.to_le_bytes()).unwrap();
            rbt.insert(&mut th, i, &[i as u8; 8]).unwrap();
        }
    }
    let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
    // The reboot's registry records the recovery itself: the redo logs
    // were scanned, and whatever the logs carried across was replayed —
    // the same numbers MtmStats reports.
    let snap = m2.telemetry().snapshot();
    assert!(snap.counter("rawl.recoveries") >= 1);
    assert_eq!(snap.counter("mtm.replayed"), m2.mtm().stats().replayed);
    assert!(snap.counter("rawl.recovered_records") >= snap.counter("mtm.replayed"));
    let mut th = m2.register_thread().unwrap();
    let bpt = PBPlusTree::open(&m2, &mut th, "bpt").unwrap();
    let rbt = PRbTree::open(&m2, "rbt").unwrap();
    assert_eq!(bpt.keys(&mut th).unwrap().len(), 150);
    assert_eq!(rbt.check_invariants(&mut th).unwrap(), 150);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn heap_never_double_allocates_across_crashes() {
    let d = dir("heap");
    let mut m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let mut live: Vec<(u64, mnemosyne::VAddr)> = Vec::new();
    for round in 0..4u64 {
        let cells = m.pstatic("cells", 8 * 256).unwrap();
        let heap = m.heap().clone();
        // Check earlier allocations are still live and distinct.
        for &(_, a) in &live {
            assert!(heap.usable_size(a).is_some(), "allocation lost in crash");
        }
        for i in 0..40u64 {
            let slot = round * 40 + i;
            let a = heap.pmalloc(32, cells.add((slot % 256) * 8)).unwrap();
            assert!(
                !live.iter().any(|&(_, b)| b == a),
                "heap handed out a live block again after crash {round}"
            );
            live.push((slot, a));
        }
        m = m.crash_reboot(CrashPolicy::random(round + 77)).unwrap();
    }
    std::fs::remove_dir_all(&d).ok();
}

// --- Systematic crash-point sweep (the fault-injection harness) ------
//
// A seeded multi-cell update workload where every transaction moves all
// cells and the round counter together. After a crash at *any* durability
// primitive, the recovered state must correspond to exactly one committed
// round — a torn mixture of two rounds is the failure the redo logs exist
// to prevent.

const SWEEP_CELLS: u64 = 32;
const SWEEP_ROUNDS: u64 = 6;

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

fn sweep_builder(p: &std::path::Path) -> mnemosyne::MnemosyneBuilder {
    Mnemosyne::builder(p)
        .scm_config(ScmConfig::virtual_clock(8 << 20))
        .truncation(Truncation::Sync)
}

fn sweep_workload(m: &Mnemosyne) -> Result<(), Error> {
    let area = m.pstatic("cells", SWEEP_CELLS * 8)?;
    let round_cell = m.pstatic("round", 8)?;
    let mut th = m.register_thread()?;
    for round in 1..=SWEEP_ROUNDS {
        th.atomic(|tx| {
            let mut x = lcg(round);
            for i in 0..SWEEP_CELLS {
                x = lcg(x);
                tx.write_u64(area.add(i * 8), x)?;
            }
            tx.write_u64(round_cell, round)?;
            Ok(())
        })?;
    }
    Ok(())
}

fn sweep_check(m: &Mnemosyne) -> Result<(), String> {
    let area = m
        .pstatic("cells", SWEEP_CELLS * 8)
        .map_err(|e| e.to_string())?;
    let round_cell = m.pstatic("round", 8).map_err(|e| e.to_string())?;
    let mut th = m.register_thread().map_err(|e| e.to_string())?;
    let r = th
        .atomic(|tx| tx.read_u64(round_cell))
        .map_err(|e| e.to_string())?;
    if r > SWEEP_ROUNDS {
        return Err(format!("recovered round {r} was never committed"));
    }
    let mut x = lcg(r);
    for i in 0..SWEEP_CELLS {
        x = lcg(x);
        let want = if r == 0 { 0 } else { x };
        let got = th
            .atomic(|tx| tx.read_u64(area.add(i * 8)))
            .map_err(|e| e.to_string())?;
        if got != want {
            return Err(format!(
                "cell {i} = {got:#x}, want {want:#x} for committed round {r}"
            ));
        }
    }
    Ok(())
}

#[test]
fn sweep_200_distinct_crash_points_all_recover() {
    let d = dir("sweep200");
    let cfg = SweepConfig {
        max_points: 200,
        recovery_points: 0,
        policy: CrashPolicy::DropAll,
        keep_failing_dirs: true,
    };
    let report = crash_sweep(&d, &cfg, sweep_builder, sweep_workload, sweep_check).unwrap();
    assert!(
        report.passed(),
        "{} of {} crash points failed; first: {}",
        report.failures.len(),
        report.points_tested,
        report.failures[0]
    );
    assert!(
        report.points_tested >= 200,
        "only {} crash points covered ({} primitives)",
        report.points_tested,
        report.workload_primitives
    );
    assert!(report.crashes_fired >= 190, "report: {report}");
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn sweep_crashes_mid_recovery_and_still_recovers() {
    let d = dir("sweepdouble");
    let cfg = SweepConfig {
        max_points: 6,
        recovery_points: 3,
        policy: CrashPolicy::DropAll,
        keep_failing_dirs: true,
    };
    let report = crash_sweep(&d, &cfg, sweep_builder, sweep_workload, sweep_check).unwrap();
    assert!(
        report.passed(),
        "{} failures; first: {}",
        report.failures.len(),
        report.failures[0]
    );
    assert!(
        report.recovery_points_tested >= 12,
        "only {} mid-recovery crash points covered",
        report.recovery_points_tested
    );
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn graceful_shutdown_then_crash_free_reopen() {
    let d = dir("mixed");
    {
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let v = m.pstatic("x", 8).unwrap();
        let mut th = m.register_thread().unwrap();
        th.atomic(|tx| tx.write_u64(v, 1)).unwrap();
        drop(th);
        m.shutdown().unwrap();
    }
    // Reopen from files, update, crash, reboot from image.
    let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let v = m.pstatic("x", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    th.atomic(|tx| tx.write_u64(v, 2)).unwrap();
    drop(th);
    let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
    let v = m2.pstatic("x", 8).unwrap();
    let mut th = m2.register_thread().unwrap();
    assert_eq!(th.atomic(|tx| tx.read_u64(v)).unwrap(), 2);
    std::fs::remove_dir_all(&d).ok();
}
