//! System-level crash-recovery tests (§6.2 "Reliability"): crash the
//! machine at nasty points with adversarial policies and verify every
//! layer recovers to a consistent state.

use std::path::PathBuf;

use mnemosyne::{CrashPolicy, Mnemosyne, Truncation};
use mnemosyne_pds::{PBPlusTree, PHashTable, PRbTree};

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "it-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn repeated_crash_reboot_cycles_accumulate_state() {
    let d = dir("cycles");
    let mut m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    for round in 0..6u64 {
        let counter = m.pstatic("rounds", 8).unwrap();
        let mut th = m.register_thread().unwrap();
        let seen = th.atomic(|tx| tx.read_u64(counter)).unwrap();
        assert_eq!(seen, round, "state lost across crash {round}");
        th.atomic(|tx| tx.write_u64(counter, seen + 1)).unwrap();
        drop(th);
        m = m.crash_reboot(CrashPolicy::random(round * 7 + 1)).unwrap();
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn hashtable_consistent_after_crash_between_every_batch() {
    let d = dir("hash");
    let mut m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let mut inserted = 0u64;
    for round in 0..4u64 {
        let mut th = m.register_thread().unwrap();
        let h = PHashTable::open(&m, &mut th, "h", 64).unwrap();
        // Verify everything previously inserted is intact.
        for i in 0..inserted {
            assert_eq!(
                h.get(&mut th, &i.to_le_bytes()).unwrap().unwrap(),
                vec![(i % 256) as u8; 48],
                "entry {i} lost after crash {round}"
            );
        }
        for i in inserted..inserted + 50 {
            h.put(&mut th, &i.to_le_bytes(), &vec![(i % 256) as u8; 48])
                .unwrap();
        }
        inserted += 50;
        drop(th);
        m = m.crash_reboot(CrashPolicy::random(round + 100)).unwrap();
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn async_mode_trees_survive_dropall_crash() {
    // Async truncation = data often still volatile at crash time; the
    // redo logs must carry the structures across.
    let d = dir("async");
    let m = Mnemosyne::builder(&d)
        .scm_size(64 << 20)
        .truncation(Truncation::Async)
        .open()
        .unwrap();
    {
        let mut th = m.register_thread().unwrap();
        let bpt = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
        let rbt = PRbTree::open(&m, "rbt").unwrap();
        for i in 0..150u64 {
            bpt.insert(&mut th, i, &i.to_le_bytes()).unwrap();
            rbt.insert(&mut th, i, &[i as u8; 8]).unwrap();
        }
    }
    let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
    let mut th = m2.register_thread().unwrap();
    let bpt = PBPlusTree::open(&m2, &mut th, "bpt").unwrap();
    let rbt = PRbTree::open(&m2, "rbt").unwrap();
    assert_eq!(bpt.keys(&mut th).unwrap().len(), 150);
    assert_eq!(rbt.check_invariants(&mut th).unwrap(), 150);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn heap_never_double_allocates_across_crashes() {
    let d = dir("heap");
    let mut m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let mut live: Vec<(u64, mnemosyne::VAddr)> = Vec::new();
    for round in 0..4u64 {
        let cells = m.pstatic("cells", 8 * 256).unwrap();
        let heap = m.heap().clone();
        // Check earlier allocations are still live and distinct.
        for &(_, a) in &live {
            assert!(heap.usable_size(a).is_some(), "allocation lost in crash");
        }
        for i in 0..40u64 {
            let slot = round * 40 + i;
            let a = heap.pmalloc(32, cells.add((slot % 256) * 8)).unwrap();
            assert!(
                !live.iter().any(|&(_, b)| b == a),
                "heap handed out a live block again after crash {round}"
            );
            live.push((slot, a));
        }
        m = m.crash_reboot(CrashPolicy::random(round + 77)).unwrap();
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn graceful_shutdown_then_crash_free_reopen() {
    let d = dir("mixed");
    {
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let v = m.pstatic("x", 8).unwrap();
        let mut th = m.register_thread().unwrap();
        th.atomic(|tx| tx.write_u64(v, 1)).unwrap();
        drop(th);
        m.shutdown().unwrap();
    }
    // Reopen from files, update, crash, reboot from image.
    let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
    let v = m.pstatic("x", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    th.atomic(|tx| tx.write_u64(v, 2)).unwrap();
    drop(th);
    let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
    let v = m2.pstatic("x", 8).unwrap();
    let mut th = m2.register_thread().unwrap();
    assert_eq!(th.atomic(|tx| tx.read_u64(v)).unwrap(), 2);
    std::fs::remove_dir_all(&d).ok();
}
