//! Cross-layer telemetry tests: the registry must agree with the layer
//! stats it mirrors, survive a JSON round trip losslessly, expose the
//! paper's headline properties (single-fence tornbit appends, Figure 7
//! abort rates, §5 truncation stalls), and stay fully documented in
//! METRICS.md.

use std::path::PathBuf;

use mnemosyne::{
    CommitRecordLog, CrashPolicy, Mnemosyne, Telemetry, TelemetrySnapshot, TornbitLog, Truncation,
};
use pcmdisk::{DiskConfig, PcmDisk, BLOCK_SIZE};

fn dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("it-telem-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// A stressed stack's snapshot survives export → parse → compare, and
/// the cross-layer counting identities hold.
#[test]
fn snapshot_roundtrips_through_json_and_identities_hold() {
    let d = dir("roundtrip");
    let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
    let cell = m.pstatic("cell", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    for i in 0..200u64 {
        th.atomic(|tx| {
            let v = tx.read_u64(cell)?;
            tx.write_u64(cell, v + i)?;
            Ok(())
        })
        .unwrap();
    }
    let heap = m.heap().clone();
    let cells = m.pstatic("anchors", 8 * 8).unwrap();
    for i in 0..8u64 {
        heap.pmalloc(64, cells.add(i * 8)).unwrap();
    }

    let snap = m.telemetry().snapshot();

    // Identities across layers.
    assert!(
        snap.counter("scm.dirty_flushes") <= snap.counter("scm.flushes"),
        "dirty flushes are a subset of all flushes"
    );
    assert_eq!(
        snap.counter("mtm.commits") + snap.counter("mtm.aborts"),
        snap.counter("mtm.tx_begins"),
        "every transaction attempt ends in exactly one commit or abort"
    );
    assert!(snap.counter("mtm.commits") >= 200);
    assert_eq!(snap.counter("pheap.allocs"), 8);
    assert!(snap.counter("rawl.appends") > 0);
    assert!(snap.counter("scm.fences") > 0);

    // Registry mirrors the layer-local stats structs.
    let mtm = m.mtm().stats();
    assert_eq!(snap.counter("mtm.commits"), mtm.commits);
    assert_eq!(snap.counter("mtm.aborts"), mtm.aborts);
    let heap_stats = heap.stats();
    assert_eq!(snap.counter("pheap.allocs"), heap_stats.allocs);
    let scm = m.sim().stats();
    assert_eq!(snap.counter("scm.fences"), scm.fences);

    // Lossless JSON round trip, tags included.
    let json = snap.to_json_with(&[("experiment", "roundtrip-test"), ("scale", "quick")]);
    assert!(json.contains("\"schema\": \"mnemosyne-telemetry-v1\""));
    assert!(json.contains("\"experiment\": \"roundtrip-test\""));
    let back = TelemetrySnapshot::from_json(&json).unwrap();
    assert_eq!(back, snap, "JSON round trip must be lossless");

    drop(th);
    std::fs::remove_dir_all(&d).ok();
}

/// §4.4 / Table 6: a tornbit append is made durable by exactly ONE fence,
/// asserted from the telemetry the fence-counting machinery records.
#[test]
fn tornbit_append_is_single_fence_per_telemetry() {
    let d = dir("fence");
    let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
    let r = m
        .regions()
        .pmap("fence-log", 64 * 1024, &m.pmem_handle())
        .unwrap();
    let mut log = TornbitLog::create(m.pmem_handle(), r.addr, 4096).unwrap();
    // Warm up, then measure one append+flush cycle.
    log.append(&[1, 2, 3]).unwrap();
    log.flush();

    let before = m.telemetry().snapshot();
    log.append(&[4, 5, 6, 7]).unwrap();
    log.flush();
    let delta = m.telemetry().snapshot().since(&before);

    assert_eq!(
        delta.counter("scm.fences"),
        1,
        "tornbit append+flush must cost exactly one fence (§4.4)"
    );
    assert_eq!(delta.counter("rawl.flushes"), 1);
    assert_eq!(delta.counter("rawl.appends"), 1);
    assert_eq!(delta.counter("rawl.append_words"), 4);
    std::fs::remove_dir_all(&d).ok();
}

/// Figure 7's y-axis — the transaction abort rate — is computable from
/// telemetry alone and agrees with the runtime's own counters.
#[test]
fn fig7_abort_rate_computable_from_telemetry() {
    let d = dir("aborts");
    let m = std::sync::Arc::new(
        Mnemosyne::builder(&d)
            .scm_size(32 << 20)
            .max_threads(8)
            .open()
            .unwrap(),
    );
    let cell = m.pstatic("contended", 8).unwrap();
    let mut joins = Vec::new();
    for _ in 0..4 {
        let m = std::sync::Arc::clone(&m);
        joins.push(std::thread::spawn(move || {
            let mut th = m.register_thread().unwrap();
            for _ in 0..300u64 {
                th.atomic(|tx| {
                    let v = tx.read_u64(cell)?;
                    tx.write_u64(cell, v + 1)?;
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // The hammer above makes conflicts likely but not certain (commit
    // holds word locks only briefly), so manufacture one deterministic
    // conflict: one thread parks inside a transaction that owns the
    // word until another thread's attempt on the same word has
    // provably aborted.
    let base_aborts = m.mtm().stats().aborts;
    let locked = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let release = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let holder = {
        let m = std::sync::Arc::clone(&m);
        let locked = std::sync::Arc::clone(&locked);
        let release = std::sync::Arc::clone(&release);
        std::thread::spawn(move || {
            let mut th = m.register_thread().unwrap();
            th.atomic(|tx| {
                let v = tx.read_u64(cell)?;
                tx.write_u64(cell, v + 1)?;
                locked.store(true, std::sync::atomic::Ordering::Release);
                while !release.load(std::sync::atomic::Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                Ok(())
            })
            .unwrap();
        })
    };
    while !locked.load(std::sync::atomic::Ordering::Acquire) {
        std::thread::yield_now();
    }
    let contender = {
        let m = std::sync::Arc::clone(&m);
        std::thread::spawn(move || {
            let mut th = m.register_thread().unwrap();
            th.atomic(|tx| {
                let v = tx.read_u64(cell)?;
                tx.write_u64(cell, v + 1)?;
                Ok(())
            })
            .unwrap();
        })
    };
    while m.mtm().stats().aborts == base_aborts {
        std::thread::yield_now();
    }
    release.store(true, std::sync::atomic::Ordering::Release);
    holder.join().unwrap();
    contender.join().unwrap();

    let snap = m.telemetry().snapshot();
    let stats = m.mtm().stats();
    assert_eq!(snap.counter("mtm.aborts"), stats.aborts);
    assert_eq!(snap.counter("mtm.commits"), stats.commits);
    assert!(
        snap.counter("mtm.aborts") >= 1,
        "a transaction attempting a word owned by a parked transaction must abort"
    );
    let attempts = snap.counter("mtm.tx_begins");
    let abort_rate = snap.counter("mtm.aborts") as f64 / attempts as f64;
    assert!(
        abort_rate > 0.0 && abort_rate < 1.0,
        "abort rate {abort_rate} out of range for a live workload"
    );
    std::fs::remove_dir_all(&d).ok();
}

/// §5: with asynchronous truncation and a log too small for two records,
/// the committing thread must stall waiting for the log manager — and
/// the stall is surfaced in both `MtmStats` and the registry.
#[test]
fn async_truncation_stalls_are_surfaced() {
    let d = dir("stall");
    let m = Mnemosyne::builder(&d)
        .scm_size(32 << 20)
        .truncation(Truncation::Async)
        .log_words(128)
        .open()
        .unwrap();
    let area = m.pstatic("wide", 8 * 40).unwrap();
    let mut th = m.register_thread().unwrap();
    // Each record packs 3 + 2*40 words -> ~85 log words: one fits in the
    // 128-word log, two never do, so every commit after the first finds
    // the previous record still undrained and stalls on the truncator.
    for round in 0..20u64 {
        th.atomic(|tx| {
            for i in 0..40u64 {
                tx.write_u64(area.add(i * 8), round * 100 + i)?;
            }
            Ok(())
        })
        .unwrap();
    }
    drop(th);

    let stats = m.mtm().stats();
    let snap = m.telemetry().snapshot();
    assert!(
        stats.stalls >= 1,
        "a 128-word async log must stall 85-word appends at least once"
    );
    assert_eq!(snap.counter("mtm.truncation_stalls"), stats.stalls);
    let stall_hist = snap.histogram("mtm.stall_ns").expect("stall histogram");
    assert_eq!(stall_hist.count, stats.stalls);
    std::fs::remove_dir_all(&d).ok();
}

/// Recovery surfaces its work through the registry: replayed
/// transactions and recovered log records are visible after reboot.
#[test]
fn recovery_metrics_surface_replayed_work() {
    let d = dir("recover");
    let m = Mnemosyne::builder(&d)
        .scm_size(32 << 20)
        .truncation(Truncation::Async)
        .open()
        .unwrap();
    let cell = m.pstatic("v", 8).unwrap();
    let mut th = m.register_thread().unwrap();
    for i in 0..50u64 {
        th.atomic(|tx| tx.write_u64(cell, i)).unwrap();
    }
    drop(th);
    let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();

    // The reboot built a fresh machine, hence a fresh registry: it holds
    // exactly the recovery's own activity.
    let snap = m2.telemetry().snapshot();
    assert_eq!(snap.counter("mtm.replayed"), m2.mtm().stats().replayed);
    assert!(
        snap.counter("rawl.recoveries") >= 1,
        "reboot must have scanned the redo logs"
    );
    assert!(snap.counter("rawl.recovered_records") >= snap.counter("mtm.replayed"));
    let mut th2 = m2.register_thread().unwrap();
    assert_eq!(th2.atomic(|tx| tx.read_u64(cell)).unwrap(), 49);
    std::fs::remove_dir_all(&d).ok();
}

/// The process-wide snapshot keeps counting across a crash/reboot cycle
/// even though the reboot replaces the machine and its registry.
#[test]
fn process_snapshot_survives_reboot() {
    let d = dir("process");
    let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
    let cell = m.pstatic("n", 8).unwrap();
    let before = Telemetry::process_snapshot();
    let mut th = m.register_thread().unwrap();
    for _ in 0..30u64 {
        th.atomic(|tx| {
            let v = tx.read_u64(cell)?;
            tx.write_u64(cell, v + 1)?;
            Ok(())
        })
        .unwrap();
    }
    drop(th);
    let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
    let mut th2 = m2.register_thread().unwrap();
    for _ in 0..30u64 {
        th2.atomic(|tx| {
            let v = tx.read_u64(cell)?;
            tx.write_u64(cell, v + 1)?;
            Ok(())
        })
        .unwrap();
    }
    drop(th2);
    let delta = Telemetry::process_snapshot().since(&before);
    assert!(
        delta.counter("mtm.commits") >= 60,
        "process snapshot lost the pre-reboot machine's commits: {}",
        delta.counter("mtm.commits")
    );
    std::fs::remove_dir_all(&d).ok();
}

/// Every metric any layer registers is documented in METRICS.md — the
/// reference table cannot silently rot.
#[test]
fn metrics_md_documents_every_registered_metric() {
    let d = dir("docs");
    // Boot the full stack (registers scm.*, region.*, rawl.*, pheap.*,
    // mtm.*), then touch the remaining corners: the commit-record
    // baseline log (rawl.cr.*) and the PCM block device (pcmdisk.*).
    let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
    let mut th = m.register_thread().unwrap();
    th.atomic(|tx| {
        let a = tx.pmalloc(64)?;
        tx.write_u64(a, 1)?;
        Ok(())
    })
    .unwrap();
    drop(th);
    let r = m
        .regions()
        .pmap("cr-log", 64 * 1024, &m.pmem_handle())
        .unwrap();
    let _cr = CommitRecordLog::create(m.pmem_handle(), r.addr, 1024).unwrap();
    let disk = PcmDisk::new(DiskConfig::for_testing(8));
    disk.write_block(0, &[0u8; BLOCK_SIZE as usize]);
    disk.sync();

    let metrics_md =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../METRICS.md"))
            .expect("METRICS.md must exist at the repo root");

    let mut names: Vec<&'static str> = m.telemetry().metric_names();
    names.extend(disk.telemetry().metric_names());
    assert!(
        names.len() >= 40,
        "expected the full stack's metrics, got {}",
        names.len()
    );
    let undocumented: Vec<&str> = names
        .iter()
        .copied()
        .filter(|n| !metrics_md.contains(&format!("`{n}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "metrics missing from METRICS.md: {undocumented:?}"
    );
    std::fs::remove_dir_all(&d).ok();
}
