//! Physical SCM addresses and geometry constants.

use std::fmt;

/// Size in bytes of one 64-bit word, the atomic write unit the paper assumes
/// SCM memory systems support (§2, "Failure Models").
pub const WORD: u64 = 8;

/// Cache line size in bytes; matches the x86 platform of the paper (§4.1).
pub const CACHE_LINE: u64 = 64;

/// Words per cache line.
pub const WORDS_PER_LINE: usize = (CACHE_LINE / WORD) as usize;

/// A physical address within the SCM device: a byte offset from the base of
/// the media.
///
/// The kernel-side region manager hands out page frames of physical SCM;
/// user code normally works with virtual addresses (`VAddr` in
/// `mnemosyne-region`) that translate to `PAddr` through a page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

impl PAddr {
    /// Byte offset of this address within its 64-bit word.
    #[inline]
    pub fn word_offset(self) -> u64 {
        self.0 % WORD
    }

    /// Index of the 64-bit word containing this address.
    #[inline]
    pub fn word_index(self) -> usize {
        (self.0 / WORD) as usize
    }

    /// Index of the cache line containing this address.
    #[inline]
    pub fn line_index(self) -> u64 {
        self.0 / CACHE_LINE
    }

    /// Address rounded down to its cache-line base.
    #[inline]
    pub fn line_base(self) -> PAddr {
        PAddr(self.0 - self.0 % CACHE_LINE)
    }

    /// Whether this address is 8-byte aligned (required for word primitives).
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD)
    }

    /// Returns the address advanced by `bytes`.
    // Not `std::ops::Add`: the operand is a byte count, not another
    // address, and callers read `a.add(8)` as pointer arithmetic.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, bytes: u64) -> PAddr {
        PAddr(self.0 + bytes)
    }

    /// Checked subtraction of another address, yielding a byte distance.
    #[inline]
    pub fn offset_from(self, base: PAddr) -> u64 {
        debug_assert!(self.0 >= base.0, "address below base");
        self.0 - base.0
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl fmt::LowerHex for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PAddr {
    fn from(v: u64) -> Self {
        PAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_geometry() {
        assert_eq!(PAddr(0).word_index(), 0);
        assert_eq!(PAddr(8).word_index(), 1);
        assert_eq!(PAddr(15).word_index(), 1);
        assert_eq!(PAddr(15).word_offset(), 7);
        assert!(PAddr(16).is_word_aligned());
        assert!(!PAddr(17).is_word_aligned());
    }

    #[test]
    fn line_geometry() {
        assert_eq!(PAddr(0).line_index(), 0);
        assert_eq!(PAddr(63).line_index(), 0);
        assert_eq!(PAddr(64).line_index(), 1);
        assert_eq!(PAddr(130).line_base(), PAddr(128));
    }

    #[test]
    fn arithmetic() {
        let a = PAddr(100);
        assert_eq!(a.add(28), PAddr(128));
        assert_eq!(a.add(28).offset_from(a), 28);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PAddr(0x40).to_string(), "p:0x40");
    }
}
