//! Write-back processor cache model.
//!
//! The cache is the reason consistent updates are hard on SCM (§3.2.3): a
//! cacheable store is immediately visible to loads but not durable — the
//! line may reach the media at any time (background eviction) or never (a
//! crash discards it). This model tracks *dirty words* per 64-byte line;
//! `flush` (the `clflush` analogue) writes a line to the media, and a crash
//! hands the set of still-pending words to the crash policy.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::addr::{PAddr, CACHE_LINE, WORDS_PER_LINE};
use crate::media::Media;

const SHARDS: usize = 64;

/// One cached line: new values of dirty words plus a dirty mask.
#[derive(Debug, Clone, Copy, Default)]
struct CacheLine {
    words: [u64; WORDS_PER_LINE],
    dirty: u8,
}

/// Sharded dirty-line map standing in for the processor cache hierarchy.
///
/// Clean data is never cached here — reads of clean words go straight to
/// media, which is behaviourally equivalent (loads always see the newest
/// value) and keeps the model small.
#[derive(Debug)]
pub struct CacheModel {
    shards: Vec<Mutex<HashMap<u64, CacheLine>>>,
    capacity_per_shard: usize,
}

impl CacheModel {
    /// Creates a cache that begins background write-back beyond
    /// `capacity_lines` dirty lines.
    pub fn new(capacity_lines: usize) -> Self {
        CacheModel {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard: (capacity_lines / SHARDS).max(1),
        }
    }

    #[inline]
    fn shard(&self, line: u64) -> &Mutex<HashMap<u64, CacheLine>> {
        &self.shards[(line as usize) % SHARDS]
    }

    /// Cacheable store of `data` at `addr` (the `mov` analogue). Visible to
    /// subsequent reads, not durable until flushed or evicted.
    pub fn store_bytes(&self, media: &Media, addr: PAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr.add(off as u64);
            let line = a.line_index();
            let end_of_line = (line + 1) * CACHE_LINE;
            let n = ((end_of_line - a.0) as usize).min(data.len() - off);
            self.store_within_line(media, a, &data[off..off + n]);
            off += n;
        }
    }

    /// Store that does not cross a line boundary.
    fn store_within_line(&self, media: &Media, addr: PAddr, data: &[u8]) {
        let line = addr.line_index();
        let mut shard = self.shard(line).lock();
        let entry = shard.entry(line).or_default();
        let mut off = 0usize;
        while off < data.len() {
            let a = addr.add(off as u64);
            let widx = ((a.0 / 8) % WORDS_PER_LINE as u64) as usize;
            let start = a.word_offset() as usize;
            let n = (8 - start).min(data.len() - off);
            let bit = 1u8 << widx;
            let mut cur = if entry.dirty & bit != 0 {
                entry.words[widx]
            } else {
                media.read_word(PAddr(a.0 - a.0 % 8))
            };
            let mut bytes = cur.to_le_bytes();
            bytes[start..start + n].copy_from_slice(&data[off..off + n]);
            cur = u64::from_le_bytes(bytes);
            entry.words[widx] = cur;
            entry.dirty |= bit;
            off += n;
        }
        // Capacity pressure: evict some other dirty line to media, like a
        // real cache replacing a victim. The victim becomes durable.
        if shard.len() > self.capacity_per_shard {
            let victim = *shard.keys().find(|&&l| l != line).unwrap_or(&line);
            if victim != line {
                if let Some(v) = shard.remove(&victim) {
                    write_line_back(media, victim, &v);
                }
            }
        }
    }

    /// Reads bytes at `addr`, seeing dirty cached words first, clean words
    /// from the media.
    pub fn read_bytes(&self, media: &Media, addr: PAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr.add(off as u64);
            let word_base = PAddr(a.0 - a.0 % 8);
            let line = a.line_index();
            let widx = ((a.0 / 8) % WORDS_PER_LINE as u64) as usize;
            let word = {
                let shard = self.shard(line).lock();
                match shard.get(&line) {
                    Some(entry) if entry.dirty & (1 << widx) != 0 => entry.words[widx],
                    _ => media.read_word(word_base),
                }
            };
            let bytes = word.to_le_bytes();
            let start = a.word_offset() as usize;
            let n = (8 - start).min(buf.len() - off);
            buf[off..off + n].copy_from_slice(&bytes[start..start + n]);
            off += n;
        }
    }

    /// Flushes the line containing `addr` to media (the `clflush`
    /// analogue). Returns `true` if the line was dirty — the caller charges
    /// PCM write latency only in that case.
    pub fn flush_line(&self, media: &Media, addr: PAddr) -> bool {
        let line = addr.line_index();
        let mut shard = self.shard(line).lock();
        match shard.remove(&line) {
            Some(entry) => {
                write_line_back(media, line, &entry);
                true
            }
            None => false,
        }
    }

    /// Writes every dirty line back to media (orderly shutdown — *not*
    /// available to recovery code, which must assume a crash instead).
    pub fn writeback_all(&self, media: &Media) {
        for s in &self.shards {
            let mut shard = s.lock();
            for (line, entry) in shard.drain() {
                write_line_back(media, line, &entry);
            }
        }
    }

    /// Removes and returns all pending dirty words as `(address, value)`
    /// pairs. Used by crash injection: the crash policy decides which of
    /// these ever reached the media.
    pub fn drain_pending(&self) -> Vec<(PAddr, u64)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let mut shard = s.lock();
            for (line, entry) in shard.drain() {
                for w in 0..WORDS_PER_LINE {
                    if entry.dirty & (1 << w) != 0 {
                        out.push((PAddr(line * CACHE_LINE + w as u64 * 8), entry.words[w]));
                    }
                }
            }
        }
        out
    }

    /// Number of dirty lines currently held.
    pub fn dirty_lines(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

fn write_line_back(media: &Media, line: u64, entry: &CacheLine) {
    for w in 0..WORDS_PER_LINE {
        if entry.dirty & (1 << w) != 0 {
            media.write_word(PAddr(line * CACHE_LINE + w as u64 * 8), entry.words[w]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Media, CacheModel) {
        (Media::new(1 << 16), CacheModel::new(1024))
    }

    #[test]
    fn store_visible_to_read_but_not_media() {
        let (media, cache) = setup();
        cache.store_bytes(&media, PAddr(128), &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        cache.read_bytes(&media, PAddr(128), &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        // Media still zero: the store is not durable.
        assert_eq!(media.read_word(PAddr(128)), 0);
    }

    #[test]
    fn flush_makes_durable() {
        let (media, cache) = setup();
        cache.store_bytes(&media, PAddr(128), &[1, 2, 3, 4]);
        assert!(cache.flush_line(&media, PAddr(130)));
        assert_eq!(
            media.read_word(PAddr(128)),
            u64::from_le_bytes([1, 2, 3, 4, 0, 0, 0, 0])
        );
        // Second flush is a no-op on a clean line.
        assert!(!cache.flush_line(&media, PAddr(130)));
    }

    #[test]
    fn store_preserves_clean_bytes_of_word() {
        let (media, cache) = setup();
        media.write_word(PAddr(64), u64::MAX);
        cache.store_bytes(&media, PAddr(66), &[0]);
        let mut buf = [0u8; 8];
        cache.read_bytes(&media, PAddr(64), &mut buf);
        assert_eq!(buf, [0xff, 0xff, 0, 0xff, 0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn store_crossing_line_boundary() {
        let (media, cache) = setup();
        let data: Vec<u8> = (0..100u8).collect();
        cache.store_bytes(&media, PAddr(30), &data);
        let mut buf = vec![0u8; 100];
        cache.read_bytes(&media, PAddr(30), &mut buf);
        assert_eq!(buf, data);
        assert!(cache.dirty_lines() >= 2);
    }

    #[test]
    fn drain_pending_reports_dirty_words() {
        let (media, cache) = setup();
        cache.store_bytes(&media, PAddr(0), &[0xaa]);
        cache.store_bytes(&media, PAddr(8), &[0xbb]);
        let mut pending = cache.drain_pending();
        pending.sort_by_key(|(a, _)| a.0);
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0], (PAddr(0), 0xaa));
        assert_eq!(pending[1], (PAddr(8), 0xbb));
        assert_eq!(cache.dirty_lines(), 0);
    }

    #[test]
    fn writeback_all_flushes_everything() {
        let (media, cache) = setup();
        cache.store_bytes(&media, PAddr(0), &[1]);
        cache.store_bytes(&media, PAddr(4096), &[2]);
        cache.writeback_all(&media);
        assert_eq!(cache.dirty_lines(), 0);
        assert_eq!(media.read_word(PAddr(0)), 1);
        assert_eq!(media.read_word(PAddr(4096)), 2);
    }

    #[test]
    fn capacity_eviction_writes_back() {
        let media = Media::new(1 << 20);
        let cache = CacheModel::new(SHARDS); // one line per shard
                                             // Dirty many lines in the same shard (stride SHARDS*64 bytes).
        for i in 0..10u64 {
            cache.store_bytes(&media, PAddr(i * SHARDS as u64 * CACHE_LINE), &[7]);
        }
        assert!(
            cache.dirty_lines() < 10,
            "older lines must have been evicted"
        );
        // Every line is still readable with its stored value.
        for i in 0..10u64 {
            let mut b = [0u8; 1];
            cache.read_bytes(&media, PAddr(i * SHARDS as u64 * CACHE_LINE), &mut b);
            assert_eq!(b[0], 7);
        }
    }
}
