//! Storage-class memory (SCM) device and performance emulator.
//!
//! This crate is the hardware substrate of the Mnemosyne reproduction
//! (Volos, Tack, Swift — *Mnemosyne: Lightweight Persistent Memory*,
//! ASPLOS 2011). It models, in software, everything §2, §4.1 and §6.1 of the
//! paper assume about the machine:
//!
//! * a byte-addressable persistent **media** array attached to the memory
//!   bus, with atomic 64-bit writes ([`media::Media`]);
//! * a write-back **processor cache** in front of it — cacheable stores are
//!   *not* durable until the line is flushed ([`cache::CacheModel`]);
//! * per-thread **write-combining buffers** for streaming (`movntq`) stores,
//!   which may retire out of order ([`wc::WcBuffer`]);
//! * the four **hardware primitives** Mnemosyne builds on —
//!   [`MemHandle::store`], [`MemHandle::wtstore`], [`MemHandle::flush`] and
//!   [`MemHandle::fence`] (§4.1, Table 3);
//! * the paper's §6.1 **performance emulator**: a configurable extra write
//!   latency applied on flushes and fences plus a bandwidth model for
//!   streaming sequences ([`clock`]);
//! * **crash injection**: on a simulated failure, only data that actually
//!   reached the media survives; anything in the cache or the
//!   write-combining buffers is retired according to an adversarial
//!   [`CrashPolicy`] at 64-bit granularity ([`ScmSim::crash`]).
//!
//! # Example
//!
//! ```
//! use mnemosyne_scm::{ScmSim, ScmConfig, PAddr};
//!
//! let sim = ScmSim::new(ScmConfig::for_testing(1 << 20));
//! let mem = sim.handle();
//! // A write-through store followed by a fence is durable.
//! mem.wtstore_u64(PAddr(64), 0xdead_beef);
//! mem.fence();
//! assert_eq!(mem.read_u64(PAddr(64)), 0xdead_beef);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod clock;
pub mod config;
pub mod crash;
pub mod faults;
pub mod media;
pub mod sim;
pub mod stats;
pub mod tech;
pub mod wc;

pub use addr::{PAddr, CACHE_LINE, WORD};
pub use clock::EmulationMode;
pub use config::ScmConfig;
pub use crash::CrashPolicy;
pub use faults::{crash_payload, CrashRequested, FaultPlan, FaultSite};
pub use sim::{DmaHandle, MemHandle, ScmSim};
pub use stats::{MemStats, StatsSnapshot};
pub use tech::{TechPreset, TechSpec};

pub use mnemosyne_obs as obs;
pub use mnemosyne_obs::Telemetry;
