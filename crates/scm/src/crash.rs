//! Crash policies: which in-flight writes survive a failure.
//!
//! The paper's failure model (§2): "on a system failure, in-flight memory
//! operations may fail, and ... atomic updates either complete or do not
//! modify memory". At crash time the simulator gathers every pending
//! 64-bit word (dirty cache words plus write-combining entries) and asks a
//! `CrashPolicy` which of them had already reached the media.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::PAddr;

/// Decides the fate of in-flight words at a simulated crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashPolicy {
    /// Every pending write retired just before the failure — the luckiest
    /// possible crash.
    ApplyAll,
    /// No pending write retired — a power cut at the worst moment.
    DropAll,
    /// Each pending word independently retired with probability
    /// `apply_probability`, from a deterministic seed. This is the
    /// adversarial torn-write case: streaming stores retire out of order,
    /// so *any* subset is a legal outcome.
    Random {
        /// RNG seed, so failures are reproducible.
        seed: u64,
        /// Probability in `[0, 1]` that a given pending word retired.
        apply_probability: f64,
    },
}

impl CrashPolicy {
    /// Convenience constructor for the common 50/50 random policy.
    pub fn random(seed: u64) -> Self {
        CrashPolicy::Random {
            seed,
            apply_probability: 0.5,
        }
    }

    /// Applies the policy: returns the subset of `pending` words that
    /// reached the media.
    pub fn select(&self, pending: Vec<(PAddr, u64)>) -> Vec<(PAddr, u64)> {
        match *self {
            CrashPolicy::ApplyAll => pending,
            CrashPolicy::DropAll => Vec::new(),
            CrashPolicy::Random {
                seed,
                apply_probability,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                pending
                    .into_iter()
                    .filter(|_| rng.gen_bool(apply_probability.clamp(0.0, 1.0)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(PAddr, u64)> {
        (0..100).map(|i| (PAddr(i * 8), i)).collect()
    }

    #[test]
    fn apply_all_keeps_everything() {
        assert_eq!(CrashPolicy::ApplyAll.select(sample()).len(), 100);
    }

    #[test]
    fn drop_all_keeps_nothing() {
        assert!(CrashPolicy::DropAll.select(sample()).is_empty());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = CrashPolicy::random(42).select(sample());
        let b = CrashPolicy::random(42).select(sample());
        assert_eq!(a, b);
        let c = CrashPolicy::random(43).select(sample());
        assert_ne!(a, c, "different seeds should normally differ");
    }

    #[test]
    fn random_probability_extremes() {
        let all = CrashPolicy::Random {
            seed: 1,
            apply_probability: 1.0,
        };
        assert_eq!(all.select(sample()).len(), 100);
        let none = CrashPolicy::Random {
            seed: 1,
            apply_probability: 0.0,
        };
        assert!(none.select(sample()).is_empty());
    }

    #[test]
    fn random_is_a_strict_subset_usually() {
        let kept = CrashPolicy::random(7).select(sample());
        assert!(!kept.is_empty() && kept.len() < 100);
    }
}
