//! The persistent media array: what actually survives a crash.
//!
//! The media is an array of `AtomicU64` words — the paper assumes SCM
//! memory systems "support an atomic write of at least 64 bits" (§2), and
//! making the word the atomic unit bakes that assumption into the type.
//! Everything above the media (cache, write-combining buffers) is volatile
//! simulation state that a crash may discard.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::{PAddr, WORD};

/// The persistent word array backing an SCM device.
///
/// All accesses use relaxed atomics: ordering between simulated "hardware"
/// events is provided by the locks in the cache/WC models, and real SCM
/// provides no cross-word ordering either.
pub struct Media {
    words: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Media {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Media")
            .field("size_bytes", &self.size())
            .finish()
    }
}

impl Media {
    /// Creates zero-initialised media of `size` bytes (rounded up to words).
    pub fn new(size: u64) -> Self {
        let n = size.div_ceil(WORD) as usize;
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        Media {
            words: v.into_boxed_slice(),
        }
    }

    /// Restores media from a previously saved image, padding with zeros if
    /// `size` exceeds the image.
    pub fn from_image(image: &[u8], size: u64) -> Self {
        let media = Media::new(size.max(image.len() as u64));
        for (i, chunk) in image.chunks(WORD as usize).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            media.words[i].store(u64::from_le_bytes(buf), Ordering::Relaxed);
        }
        media
    }

    /// Loads media from a file written by [`Media::save`].
    ///
    /// # Errors
    /// Returns any I/O error from reading the file.
    pub fn load(path: &Path, size: u64) -> io::Result<Self> {
        let image = fs::read(path)?;
        Ok(Media::from_image(&image, size))
    }

    /// Saves a byte image of the media to a file, allowing the "machine" to
    /// be powered back on later.
    ///
    /// # Errors
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.image())
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.words.len() as u64 * WORD
    }

    /// Number of 64-bit words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Atomically reads the word containing `addr` (which must be
    /// word-aligned).
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or out of range.
    #[inline]
    pub fn read_word(&self, addr: PAddr) -> u64 {
        debug_assert!(addr.is_word_aligned(), "unaligned word read at {addr}");
        self.words[addr.word_index()].load(Ordering::Relaxed)
    }

    /// Atomically writes the word at `addr` (must be word-aligned). This is
    /// the device's atomic-update primitive: it either fully happens or not.
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or out of range.
    #[inline]
    pub fn write_word(&self, addr: PAddr, value: u64) {
        debug_assert!(addr.is_word_aligned(), "unaligned word write at {addr}");
        self.words[addr.word_index()].store(value, Ordering::Relaxed);
    }

    /// Reads `buf.len()` bytes starting at `addr`, crossing word boundaries
    /// as needed.
    pub fn read_bytes(&self, addr: PAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr.add(off as u64);
            let word = self.words[a.word_index()].load(Ordering::Relaxed);
            let bytes = word.to_le_bytes();
            let start = a.word_offset() as usize;
            let n = (8 - start).min(buf.len() - off);
            buf[off..off + n].copy_from_slice(&bytes[start..start + n]);
            off += n;
        }
    }

    /// Writes bytes starting at `addr` using read-modify-write on the
    /// containing words. Note: byte writes that span words are *not* atomic
    /// as a unit — only each 64-bit word is — which is exactly the hardware
    /// guarantee consistency mechanisms must cope with.
    pub fn write_bytes(&self, addr: PAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr.add(off as u64);
            let idx = a.word_index();
            let start = a.word_offset() as usize;
            let n = (8 - start).min(data.len() - off);
            if n == 8 {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&data[off..off + 8]);
                self.words[idx].store(u64::from_le_bytes(buf), Ordering::Relaxed);
            } else {
                let cur = self.words[idx].load(Ordering::Relaxed);
                let mut bytes = cur.to_le_bytes();
                bytes[start..start + n].copy_from_slice(&data[off..off + n]);
                self.words[idx].store(u64::from_le_bytes(bytes), Ordering::Relaxed);
            }
            off += n;
        }
    }

    /// Flips one bit of the word at `addr` (corruption injection: a failed
    /// PCM cell or a radiation upset). `bit` is taken modulo 64.
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or out of range.
    pub fn flip_bit(&self, addr: PAddr, bit: u32) {
        debug_assert!(addr.is_word_aligned(), "unaligned bit flip at {addr}");
        self.words[addr.word_index()].fetch_xor(1u64 << (bit % 64), Ordering::Relaxed);
    }

    /// Overwrites the word at `addr` with pseudo-random garbage derived
    /// from `seed` (corruption injection: a torn device write that left an
    /// arbitrary bit pattern).
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or out of range.
    pub fn tear_word(&self, addr: PAddr, seed: u64) {
        debug_assert!(addr.is_word_aligned(), "unaligned torn word at {addr}");
        let garbage = crate::faults::mix64(seed ^ addr.0);
        self.words[addr.word_index()].store(garbage, Ordering::Relaxed);
    }

    /// Seeded corruption of `[addr, addr + len)`: flips `flips` independent
    /// single bits at pseudo-random word/bit positions in the range. The
    /// same seed corrupts the same bits — tests stay reproducible.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn corrupt_range(&self, addr: PAddr, len: u64, seed: u64, flips: u32) {
        assert!(len >= 8, "corruption range must cover at least one word");
        let words = len / 8;
        for i in 0..flips {
            let r = crate::faults::mix64(
                seed.wrapping_add(i as u64)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D),
            );
            let word = r % words;
            let bit = ((r >> 32) % 64) as u32;
            self.flip_bit(PAddr(addr.0 + word * 8), bit);
        }
    }

    /// Full byte image of the media (for crash/reboot snapshots).
    pub fn image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in self.words.iter() {
            out.extend_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Media::new(256);
        assert_eq!(m.read_word(PAddr(0)), 0);
        assert_eq!(m.read_word(PAddr(248)), 0);
    }

    #[test]
    fn word_roundtrip() {
        let m = Media::new(256);
        m.write_word(PAddr(64), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_word(PAddr(64)), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_word(PAddr(72)), 0);
    }

    #[test]
    fn byte_roundtrip_unaligned() {
        let m = Media::new(256);
        let data: Vec<u8> = (0..40u8).collect();
        m.write_bytes(PAddr(13), &data);
        let mut back = vec![0u8; 40];
        m.read_bytes(PAddr(13), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn partial_byte_write_preserves_neighbours() {
        let m = Media::new(64);
        m.write_word(PAddr(0), u64::MAX);
        m.write_bytes(PAddr(2), &[0xaa, 0xbb]);
        let mut out = [0u8; 8];
        m.read_bytes(PAddr(0), &mut out);
        assert_eq!(out, [0xff, 0xff, 0xaa, 0xbb, 0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn image_roundtrip() {
        let m = Media::new(128);
        m.write_word(PAddr(8), 42);
        m.write_bytes(PAddr(100), b"hello");
        let img = m.image();
        let m2 = Media::from_image(&img, 128);
        assert_eq!(m2.read_word(PAddr(8)), 42);
        let mut b = [0u8; 5];
        m2.read_bytes(PAddr(100), &mut b);
        assert_eq!(&b, b"hello");
    }

    #[test]
    fn from_image_pads_to_size() {
        let m = Media::from_image(&[1, 2, 3], 64);
        assert_eq!(m.size(), 64);
        let mut b = [0u8; 4];
        m.read_bytes(PAddr(0), &mut b);
        assert_eq!(b, [1, 2, 3, 0]);
    }

    #[test]
    fn size_rounds_up_to_words() {
        assert_eq!(Media::new(9).size(), 16);
    }

    #[test]
    fn flip_bit_is_involutive() {
        let m = Media::new(64);
        m.write_word(PAddr(8), 0xff00);
        m.flip_bit(PAddr(8), 3);
        assert_eq!(m.read_word(PAddr(8)), 0xff08);
        m.flip_bit(PAddr(8), 3);
        assert_eq!(m.read_word(PAddr(8)), 0xff00);
        m.flip_bit(PAddr(8), 64); // modulo: bit 0
        assert_eq!(m.read_word(PAddr(8)), 0xff01);
    }

    #[test]
    fn tear_word_is_seed_deterministic() {
        let a = Media::new(64);
        let b = Media::new(64);
        a.tear_word(PAddr(16), 99);
        b.tear_word(PAddr(16), 99);
        assert_eq!(a.read_word(PAddr(16)), b.read_word(PAddr(16)));
        b.tear_word(PAddr(16), 100);
        assert_ne!(a.read_word(PAddr(16)), b.read_word(PAddr(16)));
    }

    #[test]
    fn corrupt_range_flips_within_bounds() {
        let m = Media::new(256);
        m.corrupt_range(PAddr(64), 64, 7, 8);
        let outside: u64 = (0..8).map(|i| m.read_word(PAddr(i * 8))).sum::<u64>()
            + (16..32).map(|i| m.read_word(PAddr(i * 8))).sum::<u64>();
        assert_eq!(outside, 0, "corruption must stay inside the range");
        let inside = (8..16).filter(|&i| m.read_word(PAddr(i * 8)) != 0).count();
        assert!(inside > 0, "at least one word must be corrupted");
        // Deterministic per seed.
        let m2 = Media::new(256);
        m2.corrupt_range(PAddr(64), 64, 7, 8);
        for i in 8..16u64 {
            assert_eq!(m.read_word(PAddr(i * 8)), m2.read_word(PAddr(i * 8)));
        }
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join(format!("scm-media-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("media.img");
        let m = Media::new(128);
        m.write_word(PAddr(16), 7);
        m.save(&path).unwrap();
        let m2 = Media::load(&path, 128).unwrap();
        assert_eq!(m2.read_word(PAddr(16)), 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
