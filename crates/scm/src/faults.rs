//! Crash-point fault injection: a seeded, atomically-counted hook on every
//! durability primitive.
//!
//! The existing [`crate::crash::CrashPolicy`] machinery decides *what
//! survives* a crash; a [`FaultPlan`] decides *when the crash happens*. A
//! plan attached to a machine ([`crate::ScmSim::set_fault_plan`]) observes
//! every durability primitive — cacheable stores, streaming stores, line
//! flushes, fences, and (via `pcmdisk`) block writes — under one global
//! atomic counter. Depending on the trigger it either just counts
//! (enumeration pass), fires at the Nth matching primitive (systematic
//! sweep), or fires probabilistically (randomised soak).
//!
//! Firing models the instant of machine death:
//!
//! 1. The machine is marked **dead**: from this point no primitive has any
//!    durable effect (suppressed, exactly as on real hardware where the
//!    machine simply stops executing). In particular, the orderly
//!    "streaming stores retire on handle drop" rule no longer applies —
//!    pending write-combining entries stay pending for the crash policy to
//!    resolve.
//! 2. The firing thread — and every other thread at its next primitive —
//!    unwinds with a [`CrashRequested`] panic payload. The harness catches
//!    the unwind with `catch_unwind`, injects the device-level crash
//!    ([`crate::ScmSim::crash`]), and reboots from the image.
//!
//! Because the plan can be attached before boot, a crash can land *inside*
//! recovery itself (mid-replay), not just inside the workload. The counter
//! is strictly deterministic for single-threaded workloads under the
//! `Virtual` clock: the same seed and plan reproduce the same crash point.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The durability primitives a [`FaultPlan`] observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Cacheable store (`mov`).
    Store,
    /// Streaming write-through store (`movntq`), counted per word batch.
    WtStore,
    /// Cache-line flush (`clflush`).
    Flush,
    /// Memory fence (`mfence`).
    Fence,
    /// PCM block-device write (one per block forced to media).
    BlockWrite,
}

impl FaultSite {
    const ALL: [FaultSite; 5] = [
        FaultSite::Store,
        FaultSite::WtStore,
        FaultSite::Flush,
        FaultSite::Fence,
        FaultSite::BlockWrite,
    ];

    fn bit(self) -> u8 {
        match self {
            FaultSite::Store => 1 << 0,
            FaultSite::WtStore => 1 << 1,
            FaultSite::Flush => 1 << 2,
            FaultSite::Fence => 1 << 3,
            FaultSite::BlockWrite => 1 << 4,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultSite::Store => "store",
            FaultSite::WtStore => "wtstore",
            FaultSite::Flush => "flush",
            FaultSite::Fence => "fence",
            FaultSite::BlockWrite => "block-write",
        };
        f.write_str(s)
    }
}

/// The panic payload thrown when a plan fires. Catch with
/// `std::panic::catch_unwind` and downcast to decide whether an unwind was
/// an injected crash or a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRequested {
    /// The primitive at which the machine died.
    pub site: FaultSite,
    /// Its index in the plan's global primitive count.
    pub index: u64,
}

impl std::fmt::Display for CrashRequested {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected crash at {} #{}", self.site, self.index)
    }
}

#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Count primitives, never fire (the sweep's enumeration pass).
    CountOnly,
    /// Fire at the Nth matching primitive (0-based).
    At(u64),
    /// Fire each matching primitive with probability `num`/2^32, decided by
    /// a hash of `seed` and the primitive index (deterministic per index).
    Probabilistic { seed: u64, num: u32 },
}

#[derive(Debug)]
struct FaultInner {
    trigger: Trigger,
    /// Bitmask of [`FaultSite`]s the trigger applies to.
    mask: u8,
    /// Matching primitives observed so far.
    counter: AtomicU64,
    /// Set once the plan fires; the machine is dead from then on.
    dead: AtomicBool,
    /// Where the plan fired (valid once `dead`); packed as
    /// `index << 3 | site` to stay lock-free.
    fired_at: AtomicU64,
}

/// A crash-point schedule shared between a machine and the test harness.
/// Cloning shares state (`Arc` inside), so the harness keeps visibility
/// into the counter after handing the plan to the simulator.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<FaultInner>,
}

impl FaultPlan {
    fn with_trigger(trigger: Trigger) -> Self {
        FaultPlan {
            inner: Arc::new(FaultInner {
                trigger,
                mask: FaultSite::ALL.iter().fold(0, |m, s| m | s.bit()),
                counter: AtomicU64::new(0),
                dead: AtomicBool::new(false),
                fired_at: AtomicU64::new(0),
            }),
        }
    }

    /// A plan that only counts primitives — the sweep's enumeration pass.
    pub fn count_only() -> Self {
        Self::with_trigger(Trigger::CountOnly)
    }

    /// A plan that crashes the machine at the `n`th (0-based) matching
    /// durability primitive.
    pub fn crash_at(n: u64) -> Self {
        Self::with_trigger(Trigger::At(n))
    }

    /// A plan that crashes each matching primitive with probability `p`
    /// (clamped to `[0, 1]`), decided deterministically from `seed` and the
    /// primitive index.
    pub fn probabilistic(seed: u64, p: f64) -> Self {
        let num = (p.clamp(0.0, 1.0) * (u32::MAX as f64)) as u32;
        Self::with_trigger(Trigger::Probabilistic { seed, num })
    }

    /// Restricts the plan to the given sites; other primitives are neither
    /// counted nor crashed. Call before attaching the plan.
    #[must_use]
    pub fn with_sites(self, sites: &[FaultSite]) -> Self {
        let mask = sites.iter().fold(0, |m, s| m | s.bit());
        // The plan has not been shared yet in the builder pattern, but
        // `Arc::make_mut` keeps this correct even if it has.
        let inner = &self.inner;
        FaultPlan {
            inner: Arc::new(FaultInner {
                trigger: inner.trigger,
                mask,
                counter: AtomicU64::new(inner.counter.load(Ordering::Relaxed)),
                dead: AtomicBool::new(inner.dead.load(Ordering::Relaxed)),
                fired_at: AtomicU64::new(inner.fired_at.load(Ordering::Relaxed)),
            }),
        }
    }

    /// Matching primitives observed so far.
    pub fn primitives(&self) -> u64 {
        self.inner.counter.load(Ordering::Acquire)
    }

    /// Where the plan fired, if it has.
    pub fn fired(&self) -> Option<CrashRequested> {
        if !self.inner.dead.load(Ordering::Acquire) {
            return None;
        }
        let packed = self.inner.fired_at.load(Ordering::Acquire);
        let site = match packed & 7 {
            0 => FaultSite::Store,
            1 => FaultSite::WtStore,
            2 => FaultSite::Flush,
            3 => FaultSite::Fence,
            _ => FaultSite::BlockWrite,
        };
        Some(CrashRequested {
            site,
            index: packed >> 3,
        })
    }

    /// Whether the plan has fired (the machine is dead).
    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::Acquire)
    }

    fn pack(site: FaultSite, index: u64) -> u64 {
        let s = match site {
            FaultSite::Store => 0,
            FaultSite::WtStore => 1,
            FaultSite::Flush => 2,
            FaultSite::Fence => 3,
            FaultSite::BlockWrite => 4,
        };
        (index << 3) | s
    }

    /// The primitive hook. Returns `true` if the operation's memory effect
    /// should be performed, `false` if it must be suppressed (the machine
    /// is dead). Unwinds with [`CrashRequested`] when the plan fires, and
    /// again on every live thread's next primitive after death — never
    /// while the calling thread is already unwinding (that would abort).
    #[inline]
    pub fn on_primitive(&self, site: FaultSite) -> bool {
        if self.inner.dead.load(Ordering::Acquire) {
            self.dead_unwind();
            return false;
        }
        if self.inner.mask & site.bit() == 0 {
            return true;
        }
        let idx = self.inner.counter.fetch_add(1, Ordering::AcqRel);
        let fire = match self.inner.trigger {
            Trigger::CountOnly => false,
            Trigger::At(n) => idx == n,
            Trigger::Probabilistic { seed, num } => {
                num > 0 && (mix64(seed ^ idx) >> 32) as u32 <= num
            }
        };
        if !fire {
            return true;
        }
        // First thread to fire wins; late racers fall into the dead path.
        if self
            .inner
            .dead
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.inner
                .fired_at
                .store(Self::pack(site, idx), Ordering::Release);
        }
        self.dead_unwind();
        false
    }

    /// Suppression check for non-primitive effects (DMA, drop-time drains):
    /// returns `true` when the machine is alive. On a dead machine returns
    /// `false`, unwinding first unless the thread is already panicking.
    #[inline]
    pub fn check_alive(&self) -> bool {
        if self.inner.dead.load(Ordering::Acquire) {
            self.dead_unwind();
            return false;
        }
        true
    }

    /// Whether effects should be silently suppressed without unwinding
    /// (dead machine). Used by teardown paths that must not panic.
    #[inline]
    pub fn suppress_only(&self) -> bool {
        self.inner.dead.load(Ordering::Acquire)
    }

    #[cold]
    fn dead_unwind(&self) {
        if std::thread::panicking() {
            return; // never double-panic during an unwind
        }
        let fired = self.fired().unwrap_or(CrashRequested {
            site: FaultSite::Fence,
            index: 0,
        });
        std::panic::panic_any(fired);
    }
}

/// SplitMix64: decorrelates `seed ^ index` into uniform bits. Shared with
/// the media corruption injector so both fault sources are seeded alike.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Result of catching a workload that may have died to an injected crash:
/// classify an unwind payload.
///
/// Returns `Some` if the payload is a [`CrashRequested`] (an injected
/// crash), `None` for any other panic (a genuine bug — resume it or fail
/// the test).
pub fn crash_payload(payload: &(dyn std::any::Any + Send)) -> Option<CrashRequested> {
    payload.downcast_ref::<CrashRequested>().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_only_never_fires() {
        let p = FaultPlan::count_only();
        for _ in 0..100 {
            assert!(p.on_primitive(FaultSite::Store));
        }
        assert_eq!(p.primitives(), 100);
        assert!(p.fired().is_none());
    }

    #[test]
    fn crash_at_fires_exactly_there() {
        let p = FaultPlan::crash_at(3);
        for _ in 0..3 {
            assert!(p.on_primitive(FaultSite::Flush));
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_primitive(FaultSite::Fence);
        }))
        .unwrap_err();
        let req = crash_payload(&*err).expect("payload is CrashRequested");
        assert_eq!(req.index, 3);
        assert_eq!(req.site, FaultSite::Fence);
        assert!(p.is_dead());
        assert_eq!(p.fired(), Some(req));
    }

    #[test]
    fn dead_machine_unwinds_other_threads_and_suppresses() {
        let p = FaultPlan::crash_at(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_primitive(FaultSite::Store);
        }));
        // A later primitive on another (non-panicking) thread unwinds too.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_primitive(FaultSite::Store);
        }))
        .unwrap_err();
        assert!(crash_payload(&*err).is_some());
        assert!(p.suppress_only());
    }

    #[test]
    fn site_filter_limits_counting() {
        let p = FaultPlan::count_only().with_sites(&[FaultSite::Fence]);
        assert!(p.on_primitive(FaultSite::Store));
        assert!(p.on_primitive(FaultSite::Flush));
        assert!(p.on_primitive(FaultSite::Fence));
        assert_eq!(p.primitives(), 1);
    }

    #[test]
    fn probabilistic_is_deterministic_per_seed() {
        let run = |seed| {
            let p = FaultPlan::probabilistic(seed, 0.05);
            let mut fired_idx = None;
            for i in 0..500u64 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    p.on_primitive(FaultSite::WtStore)
                }));
                if r.is_err() {
                    fired_idx = Some(i);
                    break;
                }
            }
            fired_idx
        };
        assert_eq!(run(7), run(7));
        // Not a guarantee for every pair, but these seeds differ.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn zero_probability_never_fires() {
        let p = FaultPlan::probabilistic(1, 0.0);
        for _ in 0..1000 {
            assert!(p.on_primitive(FaultSite::Fence));
        }
        assert!(p.fired().is_none());
    }
}
