//! The simulated machine: media + cache + write-combining buffers + clock,
//! and the per-thread [`MemHandle`] exposing Mnemosyne's hardware
//! primitives (§4.1, Table 3).

use std::path::Path;
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};

use crate::addr::{PAddr, CACHE_LINE};
use crate::cache::CacheModel;
use crate::clock::{DelayEngine, EmulationMode, Stopwatch};
use crate::config::ScmConfig;
use crate::crash::CrashPolicy;
use crate::faults::{FaultPlan, FaultSite};
use crate::media::Media;
use crate::stats::{MemStats, StatsSnapshot};
use crate::wc::WcBuffer;
use mnemosyne_obs::Telemetry;

struct SimInner {
    media: Media,
    cache: CacheModel,
    config: ScmConfig,
    telemetry: Telemetry,
    stats: MemStats,
    /// Every live handle's write-combining buffer, so crash injection can
    /// reach in-flight streaming stores of all threads. Weak: a handle
    /// drains its buffer on drop (streaming stores retire eventually),
    /// after which the registry entry is garbage and is pruned lazily.
    wc_registry: Mutex<Vec<Weak<Mutex<WcBuffer>>>>,
    /// Optional crash-point schedule observing every durability primitive.
    faults: RwLock<Option<FaultPlan>>,
}

impl SimInner {
    /// Fault hook for durability primitives: `true` means perform the
    /// memory effect. May unwind with
    /// [`crate::faults::CrashRequested`].
    #[inline]
    fn fault_hook(&self, site: FaultSite) -> bool {
        match self.faults.read().as_ref() {
            None => true,
            Some(p) => p.on_primitive(site),
        }
    }

    /// Whether the machine died to a fired fault plan (effects must be
    /// suppressed). Never unwinds — for teardown paths.
    #[inline]
    fn dead(&self) -> bool {
        match self.faults.read().as_ref() {
            None => false,
            Some(p) => p.suppress_only(),
        }
    }

    /// Like [`SimInner::dead`] but unwinds first on live threads, so
    /// kernel-path writes (DMA) also stop at the crash instant.
    #[inline]
    fn alive(&self) -> bool {
        match self.faults.read().as_ref() {
            None => true,
            Some(p) => p.check_alive(),
        }
    }
}

/// A simulated machine with SCM attached to its memory bus.
///
/// Cloning is cheap (shared state); each thread should obtain its own
/// [`MemHandle`] via [`ScmSim::handle`].
#[derive(Clone)]
pub struct ScmSim {
    inner: Arc<SimInner>,
}

impl std::fmt::Debug for ScmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScmSim")
            .field("size", &self.inner.media.size())
            .field("config", &self.inner.config)
            .finish()
    }
}

impl ScmSim {
    /// Creates a machine with zeroed SCM.
    pub fn new(config: ScmConfig) -> Self {
        let media = Media::new(config.rounded_size());
        Self::with_media(media, config)
    }

    /// Boots a machine from a previously captured media image (e.g. after a
    /// crash or power-down).
    pub fn from_image(image: &[u8], config: ScmConfig) -> Self {
        let media = Media::from_image(image, config.rounded_size());
        Self::with_media(media, config)
    }

    /// Boots a machine from a media file saved by [`ScmSim::shutdown_to`].
    ///
    /// # Errors
    /// Returns any I/O error from reading the file.
    pub fn load(path: &Path, config: ScmConfig) -> std::io::Result<Self> {
        let media = Media::load(path, config.rounded_size())?;
        Ok(Self::with_media(media, config))
    }

    fn with_media(media: Media, config: ScmConfig) -> Self {
        let cache = CacheModel::new(config.cache_capacity_lines);
        let telemetry = Telemetry::new();
        let stats = MemStats::new(&telemetry);
        ScmSim {
            inner: Arc::new(SimInner {
                media,
                cache,
                config,
                telemetry,
                stats,
                wc_registry: Mutex::new(Vec::new()),
                faults: RwLock::new(None),
            }),
        }
    }

    /// Attaches a crash-point schedule. Every durability primitive on every
    /// handle of this machine reports to `plan` from now on; see
    /// [`FaultPlan`] for firing semantics.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.inner.faults.write() = Some(plan);
    }

    /// The attached crash-point schedule, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.inner.faults.read().clone()
    }

    /// Detaches the crash-point schedule.
    pub fn clear_fault_plan(&self) {
        *self.inner.faults.write() = None;
    }

    /// Creates a per-thread memory handle with its own write-combining
    /// buffer and delay engine. Handles are `Send` but deliberately not
    /// `Sync`/`Clone`: one per hardware thread, like the real buffers.
    pub fn handle(&self) -> MemHandle {
        let wc = Arc::new(Mutex::new(WcBuffer::new()));
        let mut registry = self.inner.wc_registry.lock();
        registry.retain(|w| w.strong_count() > 0);
        registry.push(Arc::downgrade(&wc));
        drop(registry);
        MemHandle {
            inner: Arc::clone(&self.inner),
            wc,
            engine: DelayEngine::new(self.inner.config.mode),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &ScmConfig {
        &self.inner.config
    }

    /// Device-wide operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The telemetry registry of this machine. Every layer booted over
    /// the device (region manager, log, heap, transaction runtime)
    /// registers its metrics here, so one registry describes one
    /// simulated machine end to end.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Injects a crash: every in-flight word (dirty cache words and pending
    /// write-combining entries of *all* threads) is handed to `policy`,
    /// which decides the retired subset; the rest is lost. Afterwards the
    /// media holds exactly what a real machine's SCM would hold after the
    /// failure. Handles remain usable — they model the rebooted machine's
    /// (empty) cache.
    pub fn crash(&self, policy: CrashPolicy) {
        // The crash consumes any attached fault plan: handles now model the
        // rebooted machine, whose primitives execute normally again.
        *self.inner.faults.write() = None;
        let mut pending = self.inner.cache.drain_pending();
        for wc in self.inner.wc_registry.lock().iter() {
            if let Some(wc) = wc.upgrade() {
                pending.extend(wc.lock().take_pending());
            }
        }
        for (addr, value) in policy.select(pending) {
            self.inner.media.write_word(addr, value);
        }
        self.inner.stats.crashes.inc();
    }

    /// Captures the post-crash media image. Combined with
    /// [`ScmSim::from_image`] this models power-off/power-on.
    pub fn image(&self) -> Vec<u8> {
        self.inner.media.image()
    }

    /// Corruption injection: flips one bit of the media word at `addr`
    /// (`bit` taken modulo 64), bypassing cache and buffers — a failed PCM
    /// cell. Recovery code must *detect* this, not trust it.
    pub fn inject_bit_flip(&self, addr: PAddr, bit: u32) {
        self.inner.media.flip_bit(addr, bit);
    }

    /// Corruption injection: replaces the media word at `addr` with
    /// seed-derived garbage — a torn device write.
    pub fn inject_torn_word(&self, addr: PAddr, seed: u64) {
        self.inner.media.tear_word(addr, seed);
    }

    /// Corruption injection: flips `flips` seeded single bits across
    /// `[addr, addr + len)` — e.g. targeted at a log region to exercise
    /// recovery's corruption detection.
    pub fn inject_corruption(&self, addr: PAddr, len: u64, seed: u64, flips: u32) {
        self.inner.media.corrupt_range(addr, len, seed, flips);
    }

    /// Orderly power-down: write every dirty line back, then save the media
    /// image to `path`.
    ///
    /// # Errors
    /// Returns any I/O error from writing the file.
    pub fn shutdown_to(&self, path: &Path) -> std::io::Result<()> {
        if !self.inner.dead() {
            self.inner.cache.writeback_all(&self.inner.media);
            self.drain_wc_all();
        }
        self.inner.media.save(path)
    }

    /// Drains every thread's write-combining buffer to the media, like a
    /// system-wide store fence. The kernel's page-eviction path uses this
    /// before copying a frame out, so no in-flight streaming store to the
    /// victim page is lost. No latency is charged (kernel context).
    pub fn drain_wc_all(&self) {
        if self.inner.dead() {
            return;
        }
        for wc in self.inner.wc_registry.lock().iter() {
            if let Some(wc) = wc.upgrade() {
                wc.lock().drain(&self.inner.media);
            }
        }
    }

    /// Direct media access for simulated DMA (the region manager uses this
    /// to install page contents from backing files without going through
    /// the cache, like a kernel driver would).
    pub fn dma(&self) -> DmaHandle {
        DmaHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Device size in bytes.
    pub fn size(&self) -> u64 {
        self.inner.media.size()
    }
}

/// Uncached, unaccounted direct access to the media, standing in for kernel
/// DMA during page swap-in/out. Not for application data paths.
#[derive(Clone)]
pub struct DmaHandle {
    inner: Arc<SimInner>,
}

impl std::fmt::Debug for DmaHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmaHandle").finish()
    }
}

impl DmaHandle {
    /// Bulk read directly from media. Ignores (volatile) cached data, which
    /// is correct for swap-out only if callers flush first; the region
    /// manager does.
    pub fn read(&self, addr: PAddr, buf: &mut [u8]) {
        self.inner.media.read_bytes(addr, buf);
    }

    /// Bulk write directly to media.
    pub fn write(&self, addr: PAddr, data: &[u8]) {
        if !self.inner.alive() {
            return;
        }
        self.inner.media.write_bytes(addr, data);
    }

    /// Flushes any cached (volatile) data for `len` bytes starting at
    /// `addr` out to media, so a following [`DmaHandle::read`] sees current
    /// contents. Used before swapping a page out.
    pub fn flush_range(&self, addr: PAddr, len: u64) {
        if !self.inner.alive() {
            return;
        }
        let first = addr.line_index();
        let last = addr.add(len.saturating_sub(1)).line_index();
        for line in first..=last {
            self.inner
                .cache
                .flush_line(&self.inner.media, PAddr(line * CACHE_LINE));
        }
    }
}

/// A hardware thread's view of the memory system: the four Mnemosyne
/// primitives plus loads (§4.1, Table 3).
///
/// `Send` (can move to a worker thread) but intentionally neither `Sync`
/// nor `Clone`: the write-combining buffer and virtual clock are
/// per-thread.
pub struct MemHandle {
    inner: Arc<SimInner>,
    wc: Arc<Mutex<WcBuffer>>,
    engine: DelayEngine,
}

impl std::fmt::Debug for MemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemHandle")
            .field("mode", &self.engine.mode())
            .finish()
    }
}

impl Drop for MemHandle {
    /// Streaming stores retire eventually on real hardware even without a
    /// fence, so an orderly handle drop drains its write-combining buffer
    /// (a *crash* is the only thing that discards pending stores).
    fn drop(&mut self) {
        if self.inner.dead() {
            // The machine crashed: pending streaming stores do NOT retire;
            // the crash policy decides their fate.
            return;
        }
        self.wc.lock().drain(&self.inner.media);
    }
}

impl MemHandle {
    /// Cacheable store (`mov`): visible to loads immediately, durable only
    /// after [`MemHandle::flush`] + [`MemHandle::fence`] or eviction.
    #[inline]
    pub fn store(&self, addr: PAddr, data: &[u8]) {
        if !self.inner.fault_hook(FaultSite::Store) {
            return;
        }
        self.inner.stats.stores.inc();
        self.inner.cache.store_bytes(&self.inner.media, addr, data);
    }

    /// Cacheable store of one 64-bit word.
    #[inline]
    pub fn store_u64(&self, addr: PAddr, value: u64) {
        self.store(addr, &value.to_le_bytes());
    }

    /// Streaming write-through store (`movntq`) of one word. Weakly
    /// ordered: durable only after the next [`MemHandle::fence`], and until
    /// then any subset of pending streaming stores may have retired.
    ///
    /// # Panics
    /// Panics if `addr` is not 8-byte aligned.
    #[inline]
    pub fn wtstore_u64(&self, addr: PAddr, value: u64) {
        if !self.inner.fault_hook(FaultSite::WtStore) {
            return;
        }
        self.inner.stats.wtstore_words.inc();
        self.wc.lock().push(&self.inner.media, addr, value);
    }

    /// Streaming store of a word-aligned byte buffer whose length is a
    /// multiple of 8 (streaming stores operate on whole words).
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or `data.len()` is not a multiple of 8.
    pub fn wtstore(&self, addr: PAddr, data: &[u8]) {
        assert!(addr.is_word_aligned(), "wtstore requires word alignment");
        assert!(
            data.len().is_multiple_of(8),
            "wtstore length must be a multiple of 8"
        );
        if !self.inner.fault_hook(FaultSite::WtStore) {
            return;
        }
        let mut wc = self.wc.lock();
        self.inner.stats.wtstore_words.add((data.len() / 8) as u64);
        for (i, chunk) in data.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            wc.push(
                &self.inner.media,
                addr.add(i as u64 * 8),
                u64::from_le_bytes(b),
            );
        }
    }

    /// Flushes the cache line containing `addr` (`clflush`). Charges PCM
    /// write latency if the line was dirty (§6.1: "for cacheable writes we
    /// insert the delay on the subsequent flush").
    pub fn flush(&self, addr: PAddr) {
        if !self.inner.fault_hook(FaultSite::Flush) {
            return;
        }
        self.inner.stats.flushes.inc();
        if self.inner.cache.flush_line(&self.inner.media, addr) {
            self.inner.stats.dirty_flushes.inc();
            self.engine.delay(self.inner.config.write_latency_ns);
        }
    }

    /// Flushes every line overlapping `[addr, addr+len)`.
    pub fn flush_range(&self, addr: PAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr.line_index();
        let last = addr.add(len - 1).line_index();
        for line in first..=last {
            self.flush(PAddr(line * CACHE_LINE));
        }
    }

    /// Memory fence (`mfence`): drains this thread's write-combining buffer
    /// to the media and stalls until outstanding writes are stable. Charges
    /// the §6.1 delay: one write latency plus the streamed bytes divided by
    /// the modelled bandwidth.
    pub fn fence(&self) {
        if !self.inner.fault_hook(FaultSite::Fence) {
            return;
        }
        self.inner.stats.fences.inc();
        let bytes = self.wc.lock().drain(&self.inner.media);
        let bw_ns = (bytes as f64 / self.inner.config.write_bandwidth_bytes_per_ns) as u64;
        self.engine
            .delay(self.inner.config.write_latency_ns + bw_ns);
    }

    /// Load of `buf.len()` bytes at `addr`. Sees dirty cached data (normal
    /// coherent loads); does not snoop write-combining buffers, matching
    /// the weak ordering of streaming stores.
    pub fn read(&self, addr: PAddr, buf: &mut [u8]) {
        self.inner.stats.reads.inc();
        if self.inner.config.read_latency_ns > 0 {
            self.engine.delay(self.inner.config.read_latency_ns);
        }
        self.inner.cache.read_bytes(&self.inner.media, addr, buf);
    }

    /// Load of one 64-bit word.
    #[inline]
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Crash-point poll for wait loops that issue no primitives (e.g. a
    /// thread stalled on log space): unwinds with
    /// [`crate::faults::CrashRequested`] if the machine died to a fired
    /// [`FaultPlan`]. Free when no plan is attached; never counts as a
    /// primitive.
    #[inline]
    pub fn poll_crash(&self) {
        self.inner.alive();
    }

    /// Nanoseconds of modelled SCM delay accounted on this handle.
    pub fn accounted_ns(&self) -> u64 {
        self.engine.accounted_ns()
    }

    /// Resets this handle's accounted-time counter.
    pub fn reset_accounting(&self) {
        self.engine.reset()
    }

    /// Starts a stopwatch appropriate for this handle's emulation mode
    /// (wall clock for `None`/`Spin`, virtual clock for `Virtual`).
    pub fn stopwatch(&self) -> HandleStopwatch<'_> {
        HandleStopwatch {
            sw: Stopwatch::start(&self.engine),
            engine: &self.engine,
        }
    }

    /// The emulation mode this handle runs under.
    pub fn mode(&self) -> EmulationMode {
        self.engine.mode()
    }

    /// Device-wide statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The telemetry registry of the machine this handle belongs to.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Device size in bytes.
    pub fn size(&self) -> u64 {
        self.inner.media.size()
    }
}

/// Stopwatch bound to a handle; see [`MemHandle::stopwatch`].
#[derive(Debug)]
pub struct HandleStopwatch<'a> {
    sw: Stopwatch,
    engine: &'a DelayEngine,
}

impl HandleStopwatch<'_> {
    /// Elapsed nanoseconds in the handle's time domain.
    pub fn elapsed_ns(&self) -> u64 {
        self.sw.elapsed_ns(self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> ScmSim {
        ScmSim::new(ScmConfig::for_testing(1 << 20))
    }

    #[test]
    fn store_then_flush_fence_is_durable_across_crash() {
        let s = sim();
        let m = s.handle();
        m.store_u64(PAddr(256), 99);
        m.flush(PAddr(256));
        m.fence();
        s.crash(CrashPolicy::DropAll);
        let m2 = s.handle();
        assert_eq!(m2.read_u64(PAddr(256)), 99);
    }

    #[test]
    fn unflushed_store_lost_on_dropall_crash() {
        let s = sim();
        let m = s.handle();
        m.store_u64(PAddr(256), 99);
        s.crash(CrashPolicy::DropAll);
        assert_eq!(s.handle().read_u64(PAddr(256)), 0);
    }

    #[test]
    fn unfenced_wtstore_lost_on_dropall_crash() {
        let s = sim();
        let m = s.handle();
        m.wtstore_u64(PAddr(512), 7);
        s.crash(CrashPolicy::DropAll);
        assert_eq!(s.handle().read_u64(PAddr(512)), 0);
    }

    #[test]
    fn fenced_wtstore_survives_crash() {
        let s = sim();
        let m = s.handle();
        m.wtstore_u64(PAddr(512), 7);
        m.fence();
        s.crash(CrashPolicy::DropAll);
        assert_eq!(s.handle().read_u64(PAddr(512)), 7);
    }

    #[test]
    fn random_crash_tears_multiword_update() {
        let s = sim();
        let m = s.handle();
        for i in 0..64u64 {
            m.wtstore_u64(PAddr(4096 + i * 8), u64::MAX);
        }
        s.crash(CrashPolicy::random(3));
        let m2 = s.handle();
        let survived = (0..64u64)
            .filter(|i| m2.read_u64(PAddr(4096 + i * 8)) == u64::MAX)
            .count();
        assert!(
            survived > 0 && survived < 64,
            "expected a torn write, got {survived}/64"
        );
    }

    #[test]
    fn wtstore_bulk_roundtrip() {
        let s = sim();
        let m = s.handle();
        let data: Vec<u8> = (0..64u8).collect();
        m.wtstore(PAddr(1024), &data);
        m.fence();
        let mut back = vec![0u8; 64];
        m.read(PAddr(1024), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn image_reboot_cycle() {
        let s = sim();
        let m = s.handle();
        m.store_u64(PAddr(0), 1);
        m.flush(PAddr(0));
        m.fence();
        s.crash(CrashPolicy::DropAll);
        let img = s.image();
        let s2 = ScmSim::from_image(&img, ScmConfig::for_testing(1 << 20));
        assert_eq!(s2.handle().read_u64(PAddr(0)), 1);
    }

    #[test]
    fn virtual_mode_accounts_flush_latency() {
        let s = ScmSim::new(ScmConfig::virtual_clock(1 << 16));
        let m = s.handle();
        m.store_u64(PAddr(0), 5);
        m.flush(PAddr(0));
        assert_eq!(m.accounted_ns(), 150);
        m.fence(); // +150, nothing streamed
        assert_eq!(m.accounted_ns(), 300);
    }

    #[test]
    fn fence_charges_bandwidth_for_streaming() {
        let s = ScmSim::new(ScmConfig::virtual_clock(1 << 16));
        let m = s.handle();
        for i in 0..512u64 {
            m.wtstore_u64(PAddr(i * 8), i);
        }
        m.fence();
        // 4096 bytes at 4 B/ns = 1024 ns, plus 150 ns write latency.
        assert_eq!(m.accounted_ns(), 150 + 1024);
    }

    #[test]
    fn flush_of_clean_line_costs_nothing() {
        let s = ScmSim::new(ScmConfig::virtual_clock(1 << 16));
        let m = s.handle();
        m.flush(PAddr(128));
        assert_eq!(m.accounted_ns(), 0);
    }

    #[test]
    fn stats_count_operations() {
        let s = sim();
        let m = s.handle();
        m.store_u64(PAddr(0), 1);
        m.wtstore_u64(PAddr(64), 2);
        m.flush(PAddr(0));
        m.fence();
        m.read_u64(PAddr(0));
        let st = s.stats();
        assert_eq!(st.stores, 1);
        assert_eq!(st.wtstore_words, 1);
        assert_eq!(st.flushes, 1);
        assert_eq!(st.dirty_flushes, 1);
        assert_eq!(st.fences, 1);
        assert_eq!(st.reads, 1);
    }

    #[test]
    fn crash_reaches_other_threads_wc_buffers() {
        let s = sim();
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            let m = s2.handle();
            m.wtstore_u64(PAddr(2048), 42);
            m // keep the handle (and its WC buffer) alive across the crash
        });
        let _held = t.join().unwrap();
        s.crash(CrashPolicy::ApplyAll);
        assert_eq!(s.handle().read_u64(PAddr(2048)), 42);
    }

    #[test]
    fn dropped_handle_drains_pending_writes() {
        let s = sim();
        {
            let m = s.handle();
            m.wtstore_u64(PAddr(2048), 42);
            // handle dropped without a fence: streaming stores retire
            // eventually on real hardware, so Drop drains them
        }
        s.crash(CrashPolicy::DropAll);
        assert_eq!(s.handle().read_u64(PAddr(2048)), 42);
    }

    #[test]
    fn dma_bypasses_cache() {
        let s = sim();
        let d = s.dma();
        d.write(PAddr(0), &[9; 16]);
        let mut b = [0u8; 16];
        d.read(PAddr(0), &mut b);
        assert_eq!(b, [9; 16]);
        // Durable: survives DropAll crash.
        s.crash(CrashPolicy::DropAll);
        assert_eq!(s.handle().read_u64(PAddr(0)), u64::from_le_bytes([9; 8]));
    }

    #[test]
    fn dma_flush_range_captures_cached_data() {
        let s = sim();
        let m = s.handle();
        m.store_u64(PAddr(4096), 77);
        let d = s.dma();
        d.flush_range(PAddr(4096), 4096);
        let mut b = [0u8; 8];
        d.read(PAddr(4096), &mut b);
        assert_eq!(u64::from_le_bytes(b), 77);
    }

    #[test]
    fn fault_plan_counts_primitives() {
        let s = sim();
        let plan = FaultPlan::count_only();
        s.set_fault_plan(plan.clone());
        let m = s.handle();
        m.store_u64(PAddr(0), 1);
        m.wtstore_u64(PAddr(64), 2);
        m.flush(PAddr(0));
        m.fence();
        assert_eq!(plan.primitives(), 4);
    }

    #[test]
    fn fault_plan_crash_suppresses_drop_drain() {
        let s = sim();
        let plan = FaultPlan::crash_at(2);
        s.set_fault_plan(plan.clone());
        let m = s.handle();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.store_u64(PAddr(0), 1); // #0
            m.wtstore_u64(PAddr(64), 2); // #1
            m.fence(); // #2 — fires
        }));
        let payload = r.unwrap_err();
        let req = crate::faults::crash_payload(&*payload).expect("injected crash");
        assert_eq!(req.index, 2);
        assert_eq!(req.site, FaultSite::Fence);
        // Machine is dead: dropping the handle must NOT retire the pending
        // streaming store; the crash policy decides, and DropAll loses it.
        drop(m);
        s.crash(CrashPolicy::DropAll);
        assert_eq!(
            s.handle().read_u64(PAddr(64)),
            0,
            "wtstore must not survive"
        );
        assert_eq!(
            s.handle().read_u64(PAddr(0)),
            0,
            "cached store must not survive"
        );
    }

    #[test]
    fn crash_detaches_fault_plan() {
        let s = sim();
        s.set_fault_plan(FaultPlan::crash_at(0));
        let m = s.handle();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.store_u64(PAddr(0), 1);
        }))
        .is_err());
        s.crash(CrashPolicy::DropAll);
        assert!(s.fault_plan().is_none());
        // Rebooted machine executes primitives normally again.
        let m2 = s.handle();
        m2.store_u64(PAddr(0), 5);
        m2.flush(PAddr(0));
        m2.fence();
        assert_eq!(m2.read_u64(PAddr(0)), 5);
    }

    #[test]
    fn handle_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MemHandle>();
        assert_send::<ScmSim>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<ScmSim>();
    }
}
