//! Device-wide operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of memory-system events, shared by all handles of a device.
///
/// These are used both by tests (asserting, e.g., that the tornbit log
/// really issues a single fence per append) and by the micro-cost
/// experiments.
#[derive(Debug, Default)]
pub struct MemStats {
    /// Cacheable stores issued (`store`).
    pub stores: AtomicU64,
    /// Streaming words issued (`wtstore`).
    pub wtstore_words: AtomicU64,
    /// Cache-line flushes issued (`flush`), whether or not the line was dirty.
    pub flushes: AtomicU64,
    /// Flushes that found a dirty line and paid PCM write latency.
    pub dirty_flushes: AtomicU64,
    /// Fences issued.
    pub fences: AtomicU64,
    /// Reads issued.
    pub reads: AtomicU64,
    /// Crashes injected.
    pub crashes: AtomicU64,
}

impl MemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all counters as plain integers.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            stores: self.stores.load(Ordering::Relaxed),
            wtstore_words: self.wtstore_words.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            dirty_flushes: self.dirty_flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Plain-integer snapshot of [`MemStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub stores: u64,
    pub wtstore_words: u64,
    pub flushes: u64,
    pub dirty_flushes: u64,
    pub fences: u64,
    pub reads: u64,
    pub crashes: u64,
}

impl StatsSnapshot {
    /// Difference of two snapshots (`self` - `earlier`), for measuring a
    /// phase.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            stores: self.stores - earlier.stores,
            wtstore_words: self.wtstore_words - earlier.wtstore_words,
            flushes: self.flushes - earlier.flushes,
            dirty_flushes: self.dirty_flushes - earlier.dirty_flushes,
            fences: self.fences - earlier.fences,
            reads: self.reads - earlier.reads,
            crashes: self.crashes - earlier.crashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = MemStats::new();
        MemStats::bump(&s.fences);
        MemStats::add(&s.wtstore_words, 5);
        let a = s.snapshot();
        MemStats::bump(&s.fences);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.fences, 1);
        assert_eq!(d.wtstore_words, 0);
        assert_eq!(b.wtstore_words, 5);
    }
}
