//! Device-wide operation counters.
//!
//! Backed by the cross-layer [`mnemosyne_obs`] registry: every counter
//! here is registered under an `scm.*` name in the device's
//! [`Telemetry`], so the same numbers that tests assert on (e.g. that
//! the tornbit log really issues a single fence per append) also appear
//! in the `telemetry.json` sidecar every bench binary emits.

use mnemosyne_obs::{Counter, Telemetry, Unit};

/// Counters of memory-system events, shared by all handles of a device.
#[derive(Debug)]
pub struct MemStats {
    /// Cacheable stores issued (`store`).
    pub stores: Counter,
    /// Streaming words issued (`wtstore`).
    pub wtstore_words: Counter,
    /// Cache-line flushes issued (`flush`), whether or not the line was dirty.
    pub flushes: Counter,
    /// Flushes that found a dirty line and paid PCM write latency.
    pub dirty_flushes: Counter,
    /// Fences issued.
    pub fences: Counter,
    /// Reads issued.
    pub reads: Counter,
    /// Crashes injected.
    pub crashes: Counter,
}

impl MemStats {
    /// Registers the `scm.*` counters in `telemetry`.
    pub fn new(telemetry: &Telemetry) -> Self {
        MemStats {
            stores: telemetry.counter("scm.stores", Unit::Count),
            wtstore_words: telemetry.counter("scm.wtstore_words", Unit::Words),
            flushes: telemetry.counter("scm.flushes", Unit::Count),
            dirty_flushes: telemetry.counter("scm.dirty_flushes", Unit::Count),
            fences: telemetry.counter("scm.fences", Unit::Count),
            reads: telemetry.counter("scm.reads", Unit::Count),
            crashes: telemetry.counter("scm.crashes", Unit::Count),
        }
    }

    /// Snapshot of all counters as plain integers.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            stores: self.stores.get(),
            wtstore_words: self.wtstore_words.get(),
            flushes: self.flushes.get(),
            dirty_flushes: self.dirty_flushes.get(),
            fences: self.fences.get(),
            reads: self.reads.get(),
            crashes: self.crashes.get(),
        }
    }
}

/// Plain-integer snapshot of [`MemStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Cacheable stores issued.
    pub stores: u64,
    /// Streaming words issued.
    pub wtstore_words: u64,
    /// Cache-line flushes issued (dirty or not).
    pub flushes: u64,
    /// Flushes that found a dirty line.
    pub dirty_flushes: u64,
    /// Fences issued.
    pub fences: u64,
    /// Reads issued.
    pub reads: u64,
    /// Crashes injected.
    pub crashes: u64,
}

impl StatsSnapshot {
    /// Difference of two snapshots (`self` - `earlier`), for measuring a
    /// phase.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            stores: self.stores - earlier.stores,
            wtstore_words: self.wtstore_words - earlier.wtstore_words,
            flushes: self.flushes - earlier.flushes,
            dirty_flushes: self.dirty_flushes - earlier.dirty_flushes,
            fences: self.fences - earlier.fences,
            reads: self.reads - earlier.reads,
            crashes: self.crashes - earlier.crashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let t = Telemetry::new();
        let s = MemStats::new(&t);
        s.fences.inc();
        s.wtstore_words.add(5);
        let a = s.snapshot();
        s.fences.inc();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.fences, 1);
        assert_eq!(d.wtstore_words, 0);
        assert_eq!(b.wtstore_words, 5);
        // The same numbers are visible through the registry.
        assert_eq!(t.snapshot().counter("scm.fences"), 2);
        assert_eq!(t.snapshot().counter("scm.wtstore_words"), 5);
    }
}
