//! Latency emulation: how modelled PCM delays are realised.
//!
//! The paper's emulator (§6.1) inserts delays with a loop reading the TSC
//! until the requested time has elapsed. [`EmulationMode::Spin`] reproduces
//! that, so wall-clock measurements over the simulator are meaningful.
//! [`EmulationMode::Virtual`] instead *accounts* the delay on a per-thread
//! virtual clock, giving deterministic, machine-independent timings for the
//! table/figure harness. [`EmulationMode::None`] disables delays for tests.

use std::cell::Cell;
use std::time::Instant;

/// How modelled SCM delays are realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EmulationMode {
    /// No delays; durability semantics only. For unit tests.
    #[default]
    None,
    /// Busy-wait for the modelled duration (the paper's §6.1 method); makes
    /// wall-clock benchmark numbers reflect the modelled technology.
    Spin,
    /// Account delays on a per-thread virtual clock without waiting.
    Virtual,
}

/// Per-thread delay engine. Owned by a [`crate::MemHandle`]; deliberately
/// `!Sync` (uses `Cell`) because write-combining buffers and virtual time
/// are per-hardware-thread state.
#[derive(Debug)]
pub struct DelayEngine {
    mode: EmulationMode,
    /// Nanoseconds of modelled device time accounted so far (all modes).
    accounted_ns: Cell<u64>,
}

impl DelayEngine {
    /// Creates an engine for the given mode.
    pub fn new(mode: EmulationMode) -> Self {
        DelayEngine {
            mode,
            accounted_ns: Cell::new(0),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> EmulationMode {
        self.mode
    }

    /// Realise a delay of `ns` nanoseconds according to the mode. The delay
    /// is always *accounted*, so [`Self::accounted_ns`] can be used to
    /// report modelled device time even in `Spin` mode.
    pub fn delay(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        self.accounted_ns.set(self.accounted_ns.get() + ns);
        if self.mode == EmulationMode::Spin {
            spin_for(ns);
        }
    }

    /// Total nanoseconds of modelled SCM delay accounted on this thread.
    pub fn accounted_ns(&self) -> u64 {
        self.accounted_ns.get()
    }

    /// Resets the accounted-time counter (used between benchmark phases).
    pub fn reset(&self) {
        self.accounted_ns.set(0);
    }
}

/// Busy-wait for `ns` nanoseconds. Calibration in the paper found inserted
/// delays to be "at least equal to the target delay"; `Instant`-based
/// spinning has the same property.
fn spin_for(ns: u64) {
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// A stopwatch that reads either wall-clock time or a handle's virtual
/// clock, so benchmark code can be written once for both modes.
#[derive(Debug)]
pub struct Stopwatch {
    start_wall: Instant,
    start_virtual_ns: u64,
}

impl Stopwatch {
    /// Starts timing against the given engine.
    pub fn start(engine: &DelayEngine) -> Self {
        Stopwatch {
            start_wall: Instant::now(),
            start_virtual_ns: engine.accounted_ns(),
        }
    }

    /// Elapsed nanoseconds: wall time in `None`/`Spin` modes, accounted
    /// virtual time in `Virtual` mode.
    pub fn elapsed_ns(&self, engine: &DelayEngine) -> u64 {
        match engine.mode() {
            EmulationMode::Virtual => engine.accounted_ns() - self.start_virtual_ns,
            _ => self.start_wall.elapsed().as_nanos() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_mode_accounts_but_does_not_wait() {
        let e = DelayEngine::new(EmulationMode::None);
        let t = Instant::now();
        e.delay(50_000_000);
        assert!(t.elapsed().as_millis() < 40, "None mode must not spin");
        assert_eq!(e.accounted_ns(), 50_000_000);
    }

    #[test]
    fn virtual_mode_accumulates() {
        let e = DelayEngine::new(EmulationMode::Virtual);
        e.delay(150);
        e.delay(150);
        e.delay(0);
        assert_eq!(e.accounted_ns(), 300);
        e.reset();
        assert_eq!(e.accounted_ns(), 0);
    }

    #[test]
    fn spin_mode_waits_at_least_target() {
        let e = DelayEngine::new(EmulationMode::Spin);
        let t = Instant::now();
        e.delay(200_000); // 200 µs
        assert!(t.elapsed().as_nanos() as u64 >= 200_000);
    }

    #[test]
    fn stopwatch_virtual_reads_accounted_time() {
        let e = DelayEngine::new(EmulationMode::Virtual);
        let sw = Stopwatch::start(&e);
        e.delay(1234);
        assert_eq!(sw.elapsed_ns(&e), 1234);
    }

    #[test]
    fn stopwatch_wall_reads_real_time() {
        let e = DelayEngine::new(EmulationMode::None);
        let sw = Stopwatch::start(&e);
        spin_for(100_000);
        assert!(sw.elapsed_ns(&e) >= 100_000);
    }
}
