//! Write-combining buffer model for streaming (`movntq`) stores.
//!
//! Mnemosyne's `wtstore` primitive issues streaming writes through the x86
//! write-combining buffers (§4.1): words are merged into line-sized buffers
//! and written to memory without polluting the cache. Two properties matter
//! for persistence and are both modelled here:
//!
//! 1. streaming writes are **weakly ordered** — until a fence, any subset of
//!    pending words may or may not have reached the media (this is what the
//!    tornbit log defends against, §4.4);
//! 2. a **fence** drains the buffers and stalls until the data is stable in
//!    SCM, which is where the emulator charges write latency plus a
//!    bandwidth term (§6.1).

use crate::addr::PAddr;
use crate::media::Media;

/// Maximum pending words before the oldest line drains spontaneously, like
/// real WC buffers being reclaimed. Spontaneous drains make data durable
/// early, which is always safe (durability is monotonic).
const PENDING_CAPACITY_WORDS: usize = 4096;

/// One hardware thread's write-combining state.
#[derive(Debug, Default)]
pub struct WcBuffer {
    /// Word-granularity pending streaming stores in program order.
    pending: Vec<(PAddr, u64)>,
    /// Bytes streamed since the last fence; drives the bandwidth model.
    bytes_since_fence: u64,
}

impl WcBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a streaming word store.
    ///
    /// # Panics
    /// Panics if `addr` is not 8-byte aligned: `movntq` operates on whole
    /// words.
    pub fn push(&mut self, media: &Media, addr: PAddr, value: u64) {
        assert!(
            addr.is_word_aligned(),
            "wtstore requires word alignment: {addr}"
        );
        self.pending.push((addr, value));
        self.bytes_since_fence += 8;
        if self.pending.len() > PENDING_CAPACITY_WORDS {
            // Drain the oldest half to media: buffer reclaim.
            let drained: Vec<_> = self.pending.drain(..PENDING_CAPACITY_WORDS / 2).collect();
            for (a, v) in drained {
                media.write_word(a, v);
            }
        }
    }

    /// Drains every pending word to the media (the fence operation) and
    /// returns the number of bytes streamed since the previous fence, which
    /// the caller converts into a bandwidth delay.
    pub fn drain(&mut self, media: &Media) -> u64 {
        for (a, v) in self.pending.drain(..) {
            media.write_word(a, v);
        }
        std::mem::take(&mut self.bytes_since_fence)
    }

    /// Removes and returns all pending words without writing them — used by
    /// crash injection, where the crash policy decides which retired.
    pub fn take_pending(&mut self) -> Vec<(PAddr, u64)> {
        self.bytes_since_fence = 0;
        std::mem::take(&mut self.pending)
    }

    /// Number of words currently pending.
    pub fn pending_words(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_until_drained() {
        let media = Media::new(4096);
        let mut wc = WcBuffer::new();
        wc.push(&media, PAddr(0), 11);
        wc.push(&media, PAddr(8), 22);
        assert_eq!(wc.pending_words(), 2);
        assert_eq!(media.read_word(PAddr(0)), 0, "not durable before fence");
        let bytes = wc.drain(&media);
        assert_eq!(bytes, 16);
        assert_eq!(media.read_word(PAddr(0)), 11);
        assert_eq!(media.read_word(PAddr(8)), 22);
        assert_eq!(wc.pending_words(), 0);
    }

    #[test]
    fn bandwidth_counter_resets_per_fence() {
        let media = Media::new(4096);
        let mut wc = WcBuffer::new();
        wc.push(&media, PAddr(0), 1);
        assert_eq!(wc.drain(&media), 8);
        assert_eq!(wc.drain(&media), 0);
    }

    #[test]
    fn take_pending_loses_writes() {
        let media = Media::new(4096);
        let mut wc = WcBuffer::new();
        wc.push(&media, PAddr(16), 5);
        let pending = wc.take_pending();
        assert_eq!(pending, vec![(PAddr(16), 5)]);
        assert_eq!(media.read_word(PAddr(16)), 0);
    }

    #[test]
    #[should_panic(expected = "word alignment")]
    fn unaligned_wtstore_panics() {
        let media = Media::new(4096);
        let mut wc = WcBuffer::new();
        wc.push(&media, PAddr(3), 1);
    }

    #[test]
    fn overflow_drains_oldest() {
        let media = Media::new(1 << 20);
        let mut wc = WcBuffer::new();
        for i in 0..(PENDING_CAPACITY_WORDS as u64 + 1) {
            wc.push(&media, PAddr(i * 8), i);
        }
        // Oldest half drained spontaneously.
        assert_eq!(media.read_word(PAddr(0)), 0u64.wrapping_add(0));
        assert_eq!(media.read_word(PAddr(8)), 1);
        assert!(wc.pending_words() <= PENDING_CAPACITY_WORDS / 2 + 1);
    }
}
