//! Table 1 of the paper: access latency and endurance of current and
//! future memory technologies.
//!
//! These presets configure the emulator for the technologies the paper
//! surveys and are printed verbatim by the `table1` experiment binary.

use std::fmt;

/// A memory technology row from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechPreset {
    /// Conventional DRAM (the baseline: zero extra latency).
    Dram,
    /// NAND flash — included in Table 1 for comparison only; the paper does
    /// not consider flash to be storage-class memory (§2).
    NandFlash,
    /// Phase-change memory as shipping at publication time (Numonyx P8P).
    PcmToday,
    /// Projected PCM based on research prototypes (§2: reads matching DRAM,
    /// writes 2–17x slower).
    PcmPrototype,
    /// Spin-torque-transfer RAM.
    SttRam,
}

/// Characteristics of one technology: latency ranges in nanoseconds and
/// endurance in overwrites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechSpec {
    /// Display name.
    pub name: &'static str,
    /// Read latency range `[lo, hi]` in nanoseconds.
    pub read_ns: (u64, u64),
    /// Write latency range `[lo, hi]` in nanoseconds.
    pub write_ns: (u64, u64),
    /// Endurance (overwrites) range `[lo, hi]`.
    pub endurance: (f64, f64),
    /// Whether the row describes current ("today") or prospective hardware.
    pub prospective: bool,
}

impl TechSpec {
    /// Midpoint of the write latency range.
    pub fn write_ns_mid(&self) -> u64 {
        (self.write_ns.0 + self.write_ns.1) / 2
    }

    /// Midpoint of the read latency range.
    pub fn read_ns_mid(&self) -> u64 {
        (self.read_ns.0 + self.read_ns.1) / 2
    }
}

impl TechPreset {
    /// All Table 1 rows in paper order.
    pub fn all() -> [TechPreset; 5] {
        [
            TechPreset::Dram,
            TechPreset::NandFlash,
            TechPreset::PcmToday,
            TechPreset::PcmPrototype,
            TechPreset::SttRam,
        ]
    }

    /// The Table 1 data for this technology.
    pub fn spec(self) -> TechSpec {
        match self {
            TechPreset::Dram => TechSpec {
                name: "DRAM",
                read_ns: (60, 60),
                write_ns: (60, 60),
                endurance: (1e16, 1e16),
                prospective: false,
            },
            TechPreset::NandFlash => TechSpec {
                name: "NAND Flash",
                read_ns: (25_000, 25_000),
                write_ns: (200_000, 500_000),
                endurance: (1e4, 1e5),
                prospective: false,
            },
            TechPreset::PcmToday => TechSpec {
                name: "PCM (today)",
                read_ns: (115, 115),
                write_ns: (120_000, 120_000),
                endurance: (1e6, 1e6),
                prospective: false,
            },
            TechPreset::PcmPrototype => TechSpec {
                name: "PCM (prototype)",
                read_ns: (50, 85),
                write_ns: (150, 1000),
                endurance: (1e8, 1e12),
                prospective: true,
            },
            TechPreset::SttRam => TechSpec {
                name: "STT-RAM",
                read_ns: (6, 6),
                write_ns: (13, 13),
                endurance: (1e15, 1e15),
                prospective: true,
            },
        }
    }
}

impl fmt::Display for TechPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_rows() {
        assert_eq!(TechPreset::all().len(), 5);
    }

    #[test]
    fn prototype_pcm_write_range_matches_paper() {
        let spec = TechPreset::PcmPrototype.spec();
        assert_eq!(spec.write_ns, (150, 1000));
        assert_eq!(spec.read_ns, (50, 85));
        assert!(spec.prospective);
    }

    #[test]
    fn dram_is_the_zero_point() {
        let d = TechPreset::Dram.spec();
        assert_eq!(d.write_ns_mid(), 60);
        assert_eq!(d.read_ns_mid(), 60);
    }

    #[test]
    fn flash_is_orders_of_magnitude_slower() {
        let f = TechPreset::NandFlash.spec();
        assert!(f.write_ns_mid() > 1000 * TechPreset::SttRam.spec().write_ns_mid());
    }
}
