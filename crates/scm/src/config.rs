//! Configuration of the simulated SCM device and its performance model.

use crate::clock::EmulationMode;
use crate::tech::TechPreset;

/// Configuration for an [`crate::ScmSim`].
///
/// Defaults reproduce the paper's evaluation platform (§6.1): 150 ns of
/// extra write latency relative to DRAM and 4 GB/s of streaming write
/// bandwidth, values estimated from Numonyx PCM projections.
#[derive(Debug, Clone, PartialEq)]
pub struct ScmConfig {
    /// Size of the device in bytes. Rounded up to a multiple of 64.
    pub size: u64,
    /// Additional latency of a PCM write over a DRAM write, in nanoseconds.
    /// Charged when a dirty cache line is flushed and when a fence waits for
    /// outstanding writes (§6.1).
    pub write_latency_ns: u64,
    /// Additional load latency, in nanoseconds. The paper's emulator does not
    /// model load latency (§6.1: "our emulator does not account for
    /// additional latency on loads"), so this defaults to zero; it is kept
    /// configurable for sensitivity experiments.
    pub read_latency_ns: u64,
    /// Effective streaming (write-through) bandwidth in bytes per
    /// nanosecond. 4.0 corresponds to the 4 GB/s cap used in the paper.
    pub write_bandwidth_bytes_per_ns: f64,
    /// How delays are realised: not at all, by spinning (wall-clock
    /// benchmarking, the paper's method), or on a deterministic virtual
    /// clock.
    pub mode: EmulationMode,
    /// Maximum number of dirty lines the simulated cache holds before it
    /// starts writing lines back in the background. Background write-backs
    /// make data durable without the program asking — exactly like a real
    /// cache — which is why consistent-update code can never rely on data
    /// *staying* volatile.
    pub cache_capacity_lines: usize,
}

impl ScmConfig {
    /// Paper-default configuration (§6.1): 150 ns extra write latency,
    /// 4 GB/s streaming bandwidth, spin-loop delay emulation.
    pub fn paper_default(size: u64) -> Self {
        ScmConfig {
            size,
            write_latency_ns: 150,
            read_latency_ns: 0,
            write_bandwidth_bytes_per_ns: 4.0,
            mode: EmulationMode::Spin,
            cache_capacity_lines: 1 << 14,
        }
    }

    /// Configuration for unit tests: no delay emulation at all, so tests run
    /// at full speed while keeping identical durability semantics.
    pub fn for_testing(size: u64) -> Self {
        ScmConfig {
            mode: EmulationMode::None,
            ..Self::paper_default(size)
        }
    }

    /// Deterministic virtual-clock configuration used by the table/figure
    /// harness: per-thread elapsed time is *accounted* rather than spun, so
    /// experiment output is machine-independent.
    pub fn virtual_clock(size: u64) -> Self {
        ScmConfig {
            mode: EmulationMode::Virtual,
            ..Self::paper_default(size)
        }
    }

    /// Overrides the extra write latency, returning the modified config.
    /// Used by the Figure 7 sensitivity sweep (150/1000/2000 ns).
    pub fn with_write_latency_ns(mut self, ns: u64) -> Self {
        self.write_latency_ns = ns;
        self
    }

    /// Overrides the emulation mode, returning the modified config.
    pub fn with_mode(mut self, mode: EmulationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builds a config from one of the Table 1 technology presets, taking
    /// the midpoint of the preset's write-latency range as the extra write
    /// latency (clamped at DRAM parity: DRAM itself yields 0 extra).
    pub fn from_tech(size: u64, preset: TechPreset, mode: EmulationMode) -> Self {
        let spec = preset.spec();
        let dram_write = TechPreset::Dram.spec().write_ns_mid();
        let extra = spec.write_ns_mid().saturating_sub(dram_write);
        ScmConfig {
            size,
            write_latency_ns: extra,
            read_latency_ns: 0,
            write_bandwidth_bytes_per_ns: 4.0,
            mode,
            cache_capacity_lines: 1 << 14,
        }
    }

    /// Device size rounded up to whole cache lines.
    pub fn rounded_size(&self) -> u64 {
        self.size.div_ceil(crate::CACHE_LINE) * crate::CACHE_LINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let c = ScmConfig::paper_default(1 << 20);
        assert_eq!(c.write_latency_ns, 150);
        assert_eq!(c.read_latency_ns, 0);
        assert!((c.write_bandwidth_bytes_per_ns - 4.0).abs() < f64::EPSILON);
        assert_eq!(c.mode, EmulationMode::Spin);
    }

    #[test]
    fn testing_config_disables_delays() {
        assert_eq!(ScmConfig::for_testing(4096).mode, EmulationMode::None);
    }

    #[test]
    fn size_rounds_to_lines() {
        let c = ScmConfig::for_testing(100);
        assert_eq!(c.rounded_size(), 128);
        let c = ScmConfig::for_testing(128);
        assert_eq!(c.rounded_size(), 128);
    }

    #[test]
    fn latency_override() {
        let c = ScmConfig::for_testing(4096).with_write_latency_ns(2000);
        assert_eq!(c.write_latency_ns, 2000);
    }

    #[test]
    fn dram_preset_has_zero_extra_latency() {
        let c = ScmConfig::from_tech(4096, TechPreset::Dram, EmulationMode::None);
        assert_eq!(c.write_latency_ns, 0);
    }

    #[test]
    fn pcm_preset_has_positive_extra_latency() {
        let c = ScmConfig::from_tech(4096, TechPreset::PcmPrototype, EmulationMode::None);
        assert!(c.write_latency_ns > 0);
    }
}
