//! A persistent red-black tree with 128-byte nodes (Table 5's workload).
//!
//! §6.3 "compares the cost of maintaining a red-black tree with 128
//! byte nodes in persistent memory against the cost of keeping it in DRAM
//! and periodically serializing it". Nodes are exactly 128 bytes:
//!
//! ```text
//! [left][right][parent][color][key u64][payload 88 B]   = 128 bytes
//! ```
//!
//! Insertion is the classic CLRS algorithm (BST insert + recolouring /
//! rotation fix-up), run entirely inside one durable transaction.

use mnemosyne::{Mnemosyne, Tx, TxAbort, TxError, TxThread, VAddr};

/// Total node size — the paper's 128-byte node.
pub const NODE_BYTES: u64 = 128;

/// Payload bytes available per node.
pub const PAYLOAD_BYTES: usize = 88;

const OFF_LEFT: u64 = 0;
const OFF_RIGHT: u64 = 8;
const OFF_PARENT: u64 = 16;
const OFF_COLOR: u64 = 24;
const OFF_KEY: u64 = 32;
const OFF_PAYLOAD: u64 = 40;

const RED: u64 = 1;
const BLACK: u64 = 0;

/// Handle to a persistent red-black tree.
#[derive(Debug, Clone, Copy)]
pub struct PRbTree {
    root_cell: VAddr,
}

fn left(tx: &mut Tx<'_>, n: VAddr) -> Result<VAddr, TxAbort> {
    Ok(VAddr(tx.read_u64(n.add(OFF_LEFT))?))
}
fn right(tx: &mut Tx<'_>, n: VAddr) -> Result<VAddr, TxAbort> {
    Ok(VAddr(tx.read_u64(n.add(OFF_RIGHT))?))
}
fn parent(tx: &mut Tx<'_>, n: VAddr) -> Result<VAddr, TxAbort> {
    Ok(VAddr(tx.read_u64(n.add(OFF_PARENT))?))
}
fn color(tx: &mut Tx<'_>, n: VAddr) -> Result<u64, TxAbort> {
    if n.is_null() {
        return Ok(BLACK); // nil nodes are black
    }
    tx.read_u64(n.add(OFF_COLOR))
}
fn set_color(tx: &mut Tx<'_>, n: VAddr, c: u64) -> Result<(), TxAbort> {
    tx.write_u64(n.add(OFF_COLOR), c)
}

/// Replaces `old`'s position under its parent with `new` (possibly null).
fn replace_child(tx: &mut Tx<'_>, root_cell: VAddr, old: VAddr, new: VAddr) -> Result<(), TxAbort> {
    let p = parent(tx, old)?;
    if p.is_null() {
        tx.write_u64(root_cell, new.0)?;
    } else if left(tx, p)? == old {
        tx.write_u64(p.add(OFF_LEFT), new.0)?;
    } else {
        tx.write_u64(p.add(OFF_RIGHT), new.0)?;
    }
    if !new.is_null() {
        tx.write_u64(new.add(OFF_PARENT), p.0)?;
    }
    Ok(())
}

fn rotate_left(tx: &mut Tx<'_>, root_cell: VAddr, x: VAddr) -> Result<(), TxAbort> {
    let y = right(tx, x)?;
    let yl = left(tx, y)?;
    tx.write_u64(x.add(OFF_RIGHT), yl.0)?;
    if !yl.is_null() {
        tx.write_u64(yl.add(OFF_PARENT), x.0)?;
    }
    replace_child(tx, root_cell, x, y)?;
    tx.write_u64(y.add(OFF_LEFT), x.0)?;
    tx.write_u64(x.add(OFF_PARENT), y.0)?;
    Ok(())
}

fn rotate_right(tx: &mut Tx<'_>, root_cell: VAddr, x: VAddr) -> Result<(), TxAbort> {
    let y = left(tx, x)?;
    let yr = right(tx, y)?;
    tx.write_u64(x.add(OFF_LEFT), yr.0)?;
    if !yr.is_null() {
        tx.write_u64(yr.add(OFF_PARENT), x.0)?;
    }
    replace_child(tx, root_cell, x, y)?;
    tx.write_u64(y.add(OFF_RIGHT), x.0)?;
    tx.write_u64(x.add(OFF_PARENT), y.0)?;
    Ok(())
}

/// CLRS RB-INSERT-FIXUP.
fn fixup(tx: &mut Tx<'_>, root_cell: VAddr, mut z: VAddr) -> Result<(), TxAbort> {
    loop {
        let p = parent(tx, z)?;
        if p.is_null() || color(tx, p)? == BLACK {
            break;
        }
        let g = parent(tx, p)?; // grandparent exists: parent is red, root is black
        if p == left(tx, g)? {
            let uncle = right(tx, g)?;
            if color(tx, uncle)? == RED {
                set_color(tx, p, BLACK)?;
                set_color(tx, uncle, BLACK)?;
                set_color(tx, g, RED)?;
                z = g;
            } else {
                if z == right(tx, p)? {
                    z = p;
                    rotate_left(tx, root_cell, z)?;
                }
                let p = parent(tx, z)?;
                let g = parent(tx, p)?;
                set_color(tx, p, BLACK)?;
                set_color(tx, g, RED)?;
                rotate_right(tx, root_cell, g)?;
            }
        } else {
            let uncle = left(tx, g)?;
            if color(tx, uncle)? == RED {
                set_color(tx, p, BLACK)?;
                set_color(tx, uncle, BLACK)?;
                set_color(tx, g, RED)?;
                z = g;
            } else {
                if z == left(tx, p)? {
                    z = p;
                    rotate_right(tx, root_cell, z)?;
                }
                let p = parent(tx, z)?;
                let g = parent(tx, p)?;
                set_color(tx, p, BLACK)?;
                set_color(tx, g, RED)?;
                rotate_left(tx, root_cell, g)?;
            }
        }
    }
    let root = VAddr(tx.read_u64(root_cell)?);
    set_color(tx, root, BLACK)?;
    Ok(())
}

impl PRbTree {
    /// Opens (or creates) the named tree.
    ///
    /// # Errors
    /// Propagates pstatic failures.
    pub fn open(m: &Mnemosyne, name: &str) -> Result<PRbTree, mnemosyne::Error> {
        Ok(PRbTree {
            root_cell: m.pstatic(name, 8)?,
        })
    }

    /// Inserts or replaces `key` with up to [`PAYLOAD_BYTES`] of payload,
    /// in one durable transaction. Returns `true` if the key was new.
    ///
    /// # Errors
    /// Propagates transaction/heap failures.
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`PAYLOAD_BYTES`].
    pub fn insert(&self, th: &mut TxThread, key: u64, payload: &[u8]) -> Result<bool, TxError> {
        assert!(payload.len() <= PAYLOAD_BYTES, "payload exceeds node size");
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            // BST descent.
            let mut p = VAddr::NULL;
            let mut cur = VAddr(tx.read_u64(root_cell)?);
            let mut went_left = false;
            while !cur.is_null() {
                let k = tx.read_u64(cur.add(OFF_KEY))?;
                if key == k {
                    tx.write_bytes(cur.add(OFF_PAYLOAD), payload)?;
                    return Ok(false);
                }
                p = cur;
                went_left = key < k;
                cur = if went_left {
                    left(tx, cur)?
                } else {
                    right(tx, cur)?
                };
            }
            let z = tx.pmalloc(NODE_BYTES)?;
            tx.write_u64(z.add(OFF_LEFT), 0)?;
            tx.write_u64(z.add(OFF_RIGHT), 0)?;
            tx.write_u64(z.add(OFF_PARENT), p.0)?;
            tx.write_u64(z.add(OFF_COLOR), RED)?;
            tx.write_u64(z.add(OFF_KEY), key)?;
            tx.write_bytes(z.add(OFF_PAYLOAD), payload)?;
            if p.is_null() {
                tx.write_u64(root_cell, z.0)?;
            } else if went_left {
                tx.write_u64(p.add(OFF_LEFT), z.0)?;
            } else {
                tx.write_u64(p.add(OFF_RIGHT), z.0)?;
            }
            fixup(tx, root_cell, z)?;
            Ok(true)
        })
    }

    /// Looks up `key`, returning its payload.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn get(&self, th: &mut TxThread, key: u64) -> Result<Option<Vec<u8>>, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let mut cur = VAddr(tx.read_u64(root_cell)?);
            while !cur.is_null() {
                let k = tx.read_u64(cur.add(OFF_KEY))?;
                if key == k {
                    let mut v = vec![0u8; PAYLOAD_BYTES];
                    tx.read_bytes(cur.add(OFF_PAYLOAD), &mut v)?;
                    return Ok(Some(v));
                }
                cur = if key < k {
                    left(tx, cur)?
                } else {
                    right(tx, cur)?
                };
            }
            Ok(None)
        })
    }

    /// Verifies the red-black invariants (root black, no red-red edge,
    /// equal black heights, BST order); returns the node count.
    ///
    /// # Errors
    /// Propagates transaction failures.
    ///
    /// # Panics
    /// Panics if an invariant is violated (test helper).
    pub fn check_invariants(&self, th: &mut TxThread) -> Result<u64, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            fn walk(
                tx: &mut Tx<'_>,
                n: VAddr,
                lo: Option<u64>,
                hi: Option<u64>,
            ) -> Result<(u64, u64), TxAbort> {
                if n.is_null() {
                    return Ok((1, 0)); // black height of nil, count
                }
                let k = tx.read_u64(n.add(OFF_KEY))?;
                if let Some(lo) = lo {
                    assert!(k > lo, "BST order violated");
                }
                if let Some(hi) = hi {
                    assert!(k < hi, "BST order violated");
                }
                let c = color(tx, n)?;
                let l = left(tx, n)?;
                let r = right(tx, n)?;
                if c == RED {
                    assert_eq!(color(tx, l)?, BLACK, "red-red edge");
                    assert_eq!(color(tx, r)?, BLACK, "red-red edge");
                }
                // Parent pointers consistent.
                if !l.is_null() {
                    assert_eq!(parent(tx, l)?, n, "left parent pointer stale");
                }
                if !r.is_null() {
                    assert_eq!(parent(tx, r)?, n, "right parent pointer stale");
                }
                let (lb, ln) = walk(tx, l, lo, Some(k))?;
                let (rb, rn) = walk(tx, r, Some(k), hi)?;
                assert_eq!(lb, rb, "black height mismatch at key {k}");
                Ok((lb + u64::from(c == BLACK), 1 + ln + rn))
            }
            let root = VAddr(tx.read_u64(root_cell)?);
            if root.is_null() {
                return Ok(0);
            }
            assert_eq!(color(tx, root)?, BLACK, "root must be black");
            let (_, n) = walk(tx, root, None, None)?;
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne::CrashPolicy;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pds-rbt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn sequential_inserts_keep_invariants() {
        let d = dir("seq");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PRbTree::open(&m, "rbt").unwrap();
        for i in 0..500u64 {
            assert!(t.insert(&mut th, i, &i.to_le_bytes()).unwrap());
        }
        assert_eq!(t.check_invariants(&mut th).unwrap(), 500);
        for i in 0..500u64 {
            let v = t.get(&mut th, i).unwrap().unwrap();
            assert_eq!(&v[..8], &i.to_le_bytes());
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn random_inserts_keep_invariants() {
        let d = dir("rand");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PRbTree::open(&m, "rbt").unwrap();
        let mut x = 7u64;
        let mut n = 0;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if t.insert(&mut th, x % 1000, b"p").unwrap() {
                n += 1;
            }
        }
        assert_eq!(t.check_invariants(&mut th).unwrap(), n);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn replace_does_not_grow() {
        let d = dir("repl");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PRbTree::open(&m, "rbt").unwrap();
        t.insert(&mut th, 9, b"first").unwrap();
        assert!(!t.insert(&mut th, 9, b"second").unwrap());
        assert_eq!(t.check_invariants(&mut th).unwrap(), 1);
        assert_eq!(&t.get(&mut th, 9).unwrap().unwrap()[..6], b"second");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn survives_crash_with_invariants() {
        let d = dir("crash");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        {
            let mut th = m.register_thread().unwrap();
            let t = PRbTree::open(&m, "rbt").unwrap();
            for i in 0..300u64 {
                t.insert(&mut th, i * 37 % 1009, &[i as u8; 16]).unwrap();
            }
        }
        let m2 = m.crash_reboot(CrashPolicy::random(31)).unwrap();
        let mut th = m2.register_thread().unwrap();
        let t = PRbTree::open(&m2, "rbt").unwrap();
        assert_eq!(t.check_invariants(&mut th).unwrap(), 300);
        std::fs::remove_dir_all(&d).ok();
    }
}
