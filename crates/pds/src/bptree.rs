//! A persistent B+ tree — Tokyo Cabinet's structure (§6.2).
//!
//! Tokyo Cabinet "stores data in a B+ tree"; the converted version
//! allocates the tree in a persistent region and performs updates in
//! durable transactions, with the file/`msync` persistence code removed.
//!
//! Keys are `u64`; values are separately `pmalloc`ed blobs
//! (`[vlen][bytes…]`). Node layout (order 8):
//!
//! ```text
//! leaf:     [1][nkeys][next_leaf][keys ×8][value ptrs ×8]
//! internal: [0][nkeys][unused]   [keys ×8][children ×9]
//! ```
//!
//! Deletion removes the key from its leaf without rebalancing (lazy
//! deletion): correct for lookups, and matching the insert/delete
//! steady-state of the Table 4 workload. Structural shrink is left to a
//! rebuild, as in many production B-trees.

use mnemosyne::{Mnemosyne, Tx, TxAbort, TxError, TxThread, VAddr};

/// Maximum keys per node.
const ORDER: usize = 8;

const OFF_TAG: u64 = 0;
const OFF_NKEYS: u64 = 8;
const OFF_NEXT: u64 = 16; // next leaf (leaves only)
const OFF_KEYS: u64 = 24;
const OFF_VALS: u64 = OFF_KEYS + (ORDER as u64) * 8; // leaf value ptrs
const OFF_CHILDREN: u64 = OFF_KEYS + (ORDER as u64) * 8; // internal children
const LEAF_BYTES: u64 = OFF_VALS + (ORDER as u64) * 8;
const INTERNAL_BYTES: u64 = OFF_CHILDREN + (ORDER as u64 + 1) * 8;

/// Handle to a persistent B+ tree.
#[derive(Debug, Clone, Copy)]
pub struct PBPlusTree {
    root_cell: VAddr,
}

fn read_keys(tx: &mut Tx<'_>, node: VAddr, n: usize) -> Result<Vec<u64>, TxAbort> {
    (0..n)
        .map(|i| tx.read_u64(node.add(OFF_KEYS + i as u64 * 8)))
        .collect()
}

fn new_leaf(tx: &mut Tx<'_>) -> Result<VAddr, TxAbort> {
    let leaf = tx.pmalloc(LEAF_BYTES)?;
    tx.write_u64(leaf.add(OFF_TAG), 1)?;
    tx.write_u64(leaf.add(OFF_NKEYS), 0)?;
    tx.write_u64(leaf.add(OFF_NEXT), 0)?;
    Ok(leaf)
}

fn new_blob(tx: &mut Tx<'_>, value: &[u8]) -> Result<VAddr, TxAbort> {
    let blob = tx.pmalloc(8 + (value.len() as u64).div_ceil(8) * 8)?;
    tx.write_u64(blob, value.len() as u64)?;
    tx.write_bytes(blob.add(8), value)?;
    Ok(blob)
}

fn read_blob(tx: &mut Tx<'_>, blob: VAddr) -> Result<Vec<u8>, TxAbort> {
    let len = tx.read_u64(blob)? as usize;
    let mut v = vec![0u8; len];
    tx.read_bytes(blob.add(8), &mut v)?;
    Ok(v)
}

/// Shifts the key (and parallel pointer) arrays right from `idx`.
fn shift_right(
    tx: &mut Tx<'_>,
    node: VAddr,
    ptr_off: u64,
    n: usize,
    idx: usize,
) -> Result<(), TxAbort> {
    for i in (idx..n).rev() {
        let k = tx.read_u64(node.add(OFF_KEYS + i as u64 * 8))?;
        tx.write_u64(node.add(OFF_KEYS + (i + 1) as u64 * 8), k)?;
        let p = tx.read_u64(node.add(ptr_off + i as u64 * 8))?;
        tx.write_u64(node.add(ptr_off + (i + 1) as u64 * 8), p)?;
    }
    Ok(())
}

/// Result of a recursive insert: the subtree may have split.
enum InsertResult {
    Done {
        replaced: bool,
    },
    Split {
        sep: u64,
        right: VAddr,
        replaced: bool,
    },
}

fn insert_rec(
    tx: &mut Tx<'_>,
    node: VAddr,
    key: u64,
    value: &[u8],
) -> Result<InsertResult, TxAbort> {
    let is_leaf = tx.read_u64(node.add(OFF_TAG))? == 1;
    let n = tx.read_u64(node.add(OFF_NKEYS))? as usize;
    let keys = read_keys(tx, node, n)?;
    if is_leaf {
        if let Ok(pos) = keys.binary_search(&key) {
            // Replace: swap in a fresh blob.
            let old = VAddr(tx.read_u64(node.add(OFF_VALS + pos as u64 * 8))?);
            let blob = new_blob(tx, value)?;
            tx.write_u64(node.add(OFF_VALS + pos as u64 * 8), blob.0)?;
            tx.pfree(old);
            return Ok(InsertResult::Done { replaced: true });
        }
        let pos = keys.partition_point(|&k| k < key);
        if n < ORDER {
            shift_right(tx, node, OFF_VALS, n, pos)?;
            let blob = new_blob(tx, value)?;
            tx.write_u64(node.add(OFF_KEYS + pos as u64 * 8), key)?;
            tx.write_u64(node.add(OFF_VALS + pos as u64 * 8), blob.0)?;
            tx.write_u64(node.add(OFF_NKEYS), n as u64 + 1)?;
            return Ok(InsertResult::Done { replaced: false });
        }
        // Split the leaf: right half moves to a new leaf.
        let right = new_leaf(tx)?;
        let mid = ORDER / 2;
        for (j, i) in (mid..n).enumerate() {
            let k = tx.read_u64(node.add(OFF_KEYS + i as u64 * 8))?;
            let v = tx.read_u64(node.add(OFF_VALS + i as u64 * 8))?;
            tx.write_u64(right.add(OFF_KEYS + j as u64 * 8), k)?;
            tx.write_u64(right.add(OFF_VALS + j as u64 * 8), v)?;
        }
        tx.write_u64(right.add(OFF_NKEYS), (n - mid) as u64)?;
        let next = tx.read_u64(node.add(OFF_NEXT))?;
        tx.write_u64(right.add(OFF_NEXT), next)?;
        tx.write_u64(node.add(OFF_NEXT), right.0)?;
        tx.write_u64(node.add(OFF_NKEYS), mid as u64)?;
        // Insert into the proper half.
        let target = if key < tx.read_u64(right.add(OFF_KEYS))? {
            node
        } else {
            right
        };
        match insert_rec(tx, target, key, value)? {
            InsertResult::Done { replaced } => Ok(InsertResult::Split {
                sep: tx.read_u64(right.add(OFF_KEYS))?,
                right,
                replaced,
            }),
            InsertResult::Split { .. } => unreachable!("half-full leaf cannot split"),
        }
    } else {
        let pos = keys.partition_point(|&k| k <= key);
        let child = VAddr(tx.read_u64(node.add(OFF_CHILDREN + pos as u64 * 8))?);
        match insert_rec(tx, child, key, value)? {
            InsertResult::Done { replaced } => Ok(InsertResult::Done { replaced }),
            InsertResult::Split {
                sep,
                right,
                replaced,
            } => {
                if n < ORDER {
                    // Make room for sep at pos; children shift from pos+1.
                    for i in (pos..n).rev() {
                        let k = tx.read_u64(node.add(OFF_KEYS + i as u64 * 8))?;
                        tx.write_u64(node.add(OFF_KEYS + (i + 1) as u64 * 8), k)?;
                    }
                    for i in (pos + 1..=n).rev() {
                        let c = tx.read_u64(node.add(OFF_CHILDREN + i as u64 * 8))?;
                        tx.write_u64(node.add(OFF_CHILDREN + (i + 1) as u64 * 8), c)?;
                    }
                    tx.write_u64(node.add(OFF_KEYS + pos as u64 * 8), sep)?;
                    tx.write_u64(node.add(OFF_CHILDREN + (pos + 1) as u64 * 8), right.0)?;
                    tx.write_u64(node.add(OFF_NKEYS), n as u64 + 1)?;
                    return Ok(InsertResult::Done { replaced });
                }
                // Split this internal node.
                let mid = ORDER / 2; // key at mid moves up
                let up = tx.read_u64(node.add(OFF_KEYS + mid as u64 * 8))?;
                let rnode = tx.pmalloc(INTERNAL_BYTES)?;
                tx.write_u64(rnode.add(OFF_TAG), 0)?;
                let rn = n - mid - 1;
                for (j, i) in (mid + 1..n).enumerate() {
                    let k = tx.read_u64(node.add(OFF_KEYS + i as u64 * 8))?;
                    tx.write_u64(rnode.add(OFF_KEYS + j as u64 * 8), k)?;
                }
                for (j, i) in (mid + 1..=n).enumerate() {
                    let c = tx.read_u64(node.add(OFF_CHILDREN + i as u64 * 8))?;
                    tx.write_u64(rnode.add(OFF_CHILDREN + j as u64 * 8), c)?;
                }
                tx.write_u64(rnode.add(OFF_NKEYS), rn as u64)?;
                tx.write_u64(node.add(OFF_NKEYS), mid as u64)?;
                // Now place (sep, right) into the proper half.
                let (target, tpos_base) = if sep < up {
                    (node, pos)
                } else {
                    (rnode, pos - mid - 1)
                };
                let tn = tx.read_u64(target.add(OFF_NKEYS))? as usize;
                let tpos = tpos_base.min(tn);
                for i in (tpos..tn).rev() {
                    let k = tx.read_u64(target.add(OFF_KEYS + i as u64 * 8))?;
                    tx.write_u64(target.add(OFF_KEYS + (i + 1) as u64 * 8), k)?;
                }
                for i in (tpos + 1..=tn).rev() {
                    let c = tx.read_u64(target.add(OFF_CHILDREN + i as u64 * 8))?;
                    tx.write_u64(target.add(OFF_CHILDREN + (i + 1) as u64 * 8), c)?;
                }
                tx.write_u64(target.add(OFF_KEYS + tpos as u64 * 8), sep)?;
                tx.write_u64(target.add(OFF_CHILDREN + (tpos + 1) as u64 * 8), right.0)?;
                tx.write_u64(target.add(OFF_NKEYS), tn as u64 + 1)?;
                Ok(InsertResult::Split {
                    sep: up,
                    right: rnode,
                    replaced,
                })
            }
        }
    }
}

impl PBPlusTree {
    /// Opens (or creates) the named tree.
    ///
    /// # Errors
    /// Propagates pstatic/transaction failures.
    pub fn open(
        m: &Mnemosyne,
        th: &mut TxThread,
        name: &str,
    ) -> Result<PBPlusTree, mnemosyne::Error> {
        let root_cell = m.pstatic(name, 8)?;
        th.atomic(|tx| {
            if tx.read_u64(root_cell)? == 0 {
                let leaf = new_leaf(tx)?;
                tx.write_u64(root_cell, leaf.0)?;
            }
            Ok(())
        })?;
        Ok(PBPlusTree { root_cell })
    }

    /// Inserts or replaces `key → value` in one durable transaction;
    /// returns `true` if the key existed.
    ///
    /// # Errors
    /// Propagates transaction/heap failures.
    pub fn insert(&self, th: &mut TxThread, key: u64, value: &[u8]) -> Result<bool, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let root = VAddr(tx.read_u64(root_cell)?);
            match insert_rec(tx, root, key, value)? {
                InsertResult::Done { replaced } => Ok(replaced),
                InsertResult::Split {
                    sep,
                    right,
                    replaced,
                } => {
                    let new_root = tx.pmalloc(INTERNAL_BYTES)?;
                    tx.write_u64(new_root.add(OFF_TAG), 0)?;
                    tx.write_u64(new_root.add(OFF_NKEYS), 1)?;
                    tx.write_u64(new_root.add(OFF_KEYS), sep)?;
                    tx.write_u64(new_root.add(OFF_CHILDREN), root.0)?;
                    tx.write_u64(new_root.add(OFF_CHILDREN + 8), right.0)?;
                    tx.write_u64(root_cell, new_root.0)?;
                    Ok(replaced)
                }
            }
        })
    }

    fn find_leaf(tx: &mut Tx<'_>, root_cell: VAddr, key: u64) -> Result<VAddr, TxAbort> {
        let mut node = VAddr(tx.read_u64(root_cell)?);
        loop {
            if tx.read_u64(node.add(OFF_TAG))? == 1 {
                return Ok(node);
            }
            let n = tx.read_u64(node.add(OFF_NKEYS))? as usize;
            let keys = read_keys(tx, node, n)?;
            let pos = keys.partition_point(|&k| k <= key);
            node = VAddr(tx.read_u64(node.add(OFF_CHILDREN + pos as u64 * 8))?);
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn get(&self, th: &mut TxThread, key: u64) -> Result<Option<Vec<u8>>, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let leaf = Self::find_leaf(tx, root_cell, key)?;
            let n = tx.read_u64(leaf.add(OFF_NKEYS))? as usize;
            let keys = read_keys(tx, leaf, n)?;
            match keys.binary_search(&key) {
                Ok(pos) => {
                    let blob = VAddr(tx.read_u64(leaf.add(OFF_VALS + pos as u64 * 8))?);
                    Ok(Some(read_blob(tx, blob)?))
                }
                Err(_) => Ok(None),
            }
        })
    }

    /// Removes `key` from its leaf (lazy deletion); returns whether it
    /// was present.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn remove(&self, th: &mut TxThread, key: u64) -> Result<bool, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let leaf = Self::find_leaf(tx, root_cell, key)?;
            let n = tx.read_u64(leaf.add(OFF_NKEYS))? as usize;
            let keys = read_keys(tx, leaf, n)?;
            match keys.binary_search(&key) {
                Ok(pos) => {
                    let blob = VAddr(tx.read_u64(leaf.add(OFF_VALS + pos as u64 * 8))?);
                    for i in pos + 1..n {
                        let k = tx.read_u64(leaf.add(OFF_KEYS + i as u64 * 8))?;
                        tx.write_u64(leaf.add(OFF_KEYS + (i - 1) as u64 * 8), k)?;
                        let v = tx.read_u64(leaf.add(OFF_VALS + i as u64 * 8))?;
                        tx.write_u64(leaf.add(OFF_VALS + (i - 1) as u64 * 8), v)?;
                    }
                    tx.write_u64(leaf.add(OFF_NKEYS), n as u64 - 1)?;
                    tx.pfree(blob);
                    Ok(true)
                }
                Err(_) => Ok(false),
            }
        })
    }

    /// Range scan `[lo, hi]` via the leaf chain — the access pattern B+
    /// trees exist for.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn range(
        &self,
        th: &mut TxThread,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let mut leaf = Self::find_leaf(tx, root_cell, lo)?;
            let mut out = Vec::new();
            while !leaf.is_null() {
                let n = tx.read_u64(leaf.add(OFF_NKEYS))? as usize;
                let keys = read_keys(tx, leaf, n)?;
                for (i, &k) in keys.iter().enumerate() {
                    if k > hi {
                        return Ok(out);
                    }
                    if k >= lo {
                        let blob = VAddr(tx.read_u64(leaf.add(OFF_VALS + i as u64 * 8))?);
                        out.push((k, read_blob(tx, blob)?));
                    }
                }
                leaf = VAddr(tx.read_u64(leaf.add(OFF_NEXT))?);
            }
            Ok(out)
        })
    }

    /// In-order key scan via the leaf chain (diagnostics / range reads).
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn keys(&self, th: &mut TxThread) -> Result<Vec<u64>, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            // Find the leftmost leaf.
            let mut node = VAddr(tx.read_u64(root_cell)?);
            while tx.read_u64(node.add(OFF_TAG))? == 0 {
                node = VAddr(tx.read_u64(node.add(OFF_CHILDREN))?);
            }
            let mut out = Vec::new();
            while !node.is_null() {
                let n = tx.read_u64(node.add(OFF_NKEYS))? as usize;
                out.extend(read_keys(tx, node, n)?);
                node = VAddr(tx.read_u64(node.add(OFF_NEXT))?);
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne::CrashPolicy;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pds-bpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let d = dir("basic");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
        for i in 0..199u64 {
            assert!(!t.insert(&mut th, i * 7 % 199, &i.to_le_bytes()).unwrap());
        }
        for i in 0..199u64 {
            let k = i * 7 % 199;
            let got = t.get(&mut th, k).unwrap();
            assert!(got.is_some(), "missing {k}");
        }
        assert!(t.remove(&mut th, 0).unwrap());
        assert!(!t.remove(&mut th, 0).unwrap());
        assert!(t.get(&mut th, 0).unwrap().is_none());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn keys_come_back_sorted() {
        let d = dir("sorted");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
        let mut x = 99u64;
        let mut expect = std::collections::BTreeSet::new();
        for _ in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 10_000;
            t.insert(&mut th, k, b"v").unwrap();
            expect.insert(k);
        }
        let keys = t.keys(&mut th).unwrap();
        let want: Vec<u64> = expect.into_iter().collect();
        assert_eq!(keys, want);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn replace_updates_value() {
        let d = dir("replace");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
        t.insert(&mut th, 5, b"old").unwrap();
        assert!(t.insert(&mut th, 5, b"new value").unwrap());
        assert_eq!(t.get(&mut th, 5).unwrap().unwrap(), b"new value");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn survives_crash() {
        let d = dir("crash");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        {
            let mut th = m.register_thread().unwrap();
            let t = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
            for i in 0..300u64 {
                t.insert(&mut th, i, &[(i % 251) as u8; 64]).unwrap();
            }
        }
        let m2 = m.crash_reboot(CrashPolicy::random(23)).unwrap();
        let mut th = m2.register_thread().unwrap();
        let t = PBPlusTree::open(&m2, &mut th, "bpt").unwrap();
        for i in 0..300u64 {
            assert_eq!(
                t.get(&mut th, i).unwrap().unwrap(),
                vec![(i % 251) as u8; 64],
                "key {i}"
            );
        }
        assert_eq!(t.keys(&mut th).unwrap().len(), 300);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn range_scan_via_leaf_chain() {
        let d = dir("range");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
        for i in 0..100u64 {
            t.insert(&mut th, i * 3, &i.to_le_bytes()).unwrap();
        }
        let r = t.range(&mut th, 10, 40).unwrap();
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![12, 15, 18, 21, 24, 27, 30, 33, 36, 39]);
        // Values travel with their keys.
        assert_eq!(r[0].1, (4u64).to_le_bytes());
        // Empty and full ranges.
        assert!(t.range(&mut th, 1000, 2000).unwrap().is_empty());
        assert_eq!(t.range(&mut th, 0, u64::MAX).unwrap().len(), 100);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn large_values() {
        let d = dir("large");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PBPlusTree::open(&m, &mut th, "bpt").unwrap();
        let big: Vec<u8> = (0..2048).map(|i| (i % 256) as u8).collect();
        t.insert(&mut th, 1, &big).unwrap();
        assert_eq!(t.get(&mut th, 1).unwrap().unwrap(), big);
        std::fs::remove_dir_all(&d).ok();
    }
}
