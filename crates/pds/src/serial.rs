//! The serialization baseline of Table 5 (Boost stand-in).
//!
//! "An alternative approach … is to serialize the data into a buffer and
//! write it to a file. For example, productivity applications including
//! word processors use this approach for periodic fast saves" (§6.3).
//!
//! The paper keeps a red-black tree in DRAM and periodically serializes
//! it with Boost onto PCM-disk. Here the volatile ordered tree is
//! `std::collections::BTreeMap` (a balanced ordered tree; the archive
//! cost — an O(n) node walk plus a sequential file write and fsync — is
//! identical in shape) and the archive format is a Boost-like
//! length-prefixed record stream.

use std::collections::BTreeMap;

use pcmdisk::{FsError, SimpleFs};

/// A volatile ordered tree of fixed-payload nodes, mirroring the Table 5
/// DRAM-side structure.
#[derive(Debug, Default, Clone)]
pub struct VolatileTree {
    map: BTreeMap<u64, Vec<u8>>,
}

impl VolatileTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a node.
    pub fn insert(&mut self, key: u64, payload: Vec<u8>) {
        self.map.insert(key, payload);
    }

    /// Looks up a node.
    pub fn get(&self, key: u64) -> Option<&Vec<u8>> {
        self.map.get(&key)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Serializes the whole tree to `file` on `fs` (creating or
    /// overwriting) and forces it to the device — one "fast save".
    /// Returns the archive size in bytes.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn archive(&self, fs: &SimpleFs, file: &str) -> Result<u64, FsError> {
        // Walk the tree into a Boost-like archive: header + records.
        let mut buf = Vec::with_capacity(self.map.len() * 96 + 16);
        buf.extend_from_slice(b"BOOSTISH");
        buf.extend_from_slice(&(self.map.len() as u64).to_le_bytes());
        for (k, v) in &self.map {
            buf.extend_from_slice(&k.to_le_bytes());
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v);
        }
        if !fs.exists(file) {
            fs.create(file)?;
        }
        fs.truncate(file, 0)?;
        fs.pwrite(file, 0, &buf)?;
        fs.fsync(file)?;
        Ok(buf.len() as u64)
    }

    /// Restores a tree from an archive written by
    /// [`VolatileTree::archive`].
    ///
    /// # Errors
    /// Propagates file-system errors; fails on a corrupt archive.
    pub fn restore(fs: &SimpleFs, file: &str) -> Result<VolatileTree, FsError> {
        let size = fs.size(file)?;
        let mut buf = vec![0u8; size as usize];
        let n = fs.pread(file, 0, &mut buf)?;
        buf.truncate(n);
        if buf.len() < 16 || &buf[0..8] != b"BOOSTISH" {
            return Err(FsError::Corrupt("bad archive header"));
        }
        let count = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let mut map = BTreeMap::new();
        let mut off = 16usize;
        for _ in 0..count {
            if off + 12 > buf.len() {
                return Err(FsError::Corrupt("truncated archive"));
            }
            let k = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            let vlen = u32::from_le_bytes(buf[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 12;
            if off + vlen > buf.len() {
                return Err(FsError::Corrupt("truncated archive record"));
            }
            map.insert(k, buf[off..off + vlen].to_vec());
            off += vlen;
        }
        Ok(VolatileTree { map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmdisk::{DiskConfig, PcmDisk};
    use std::sync::Arc;

    fn fs() -> SimpleFs {
        SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(16384)))).unwrap()
    }

    #[test]
    fn archive_restore_roundtrip() {
        let fs = fs();
        let mut t = VolatileTree::new();
        for i in 0..1000u64 {
            t.insert(i, vec![(i % 256) as u8; 88]);
        }
        let bytes = t.archive(&fs, "tree.arc").unwrap();
        assert!(bytes > 1000 * 88);
        let back = VolatileTree::restore(&fs, "tree.arc").unwrap();
        assert_eq!(back.len(), 1000);
        assert_eq!(back.get(999).unwrap(), t.get(999).unwrap());
    }

    #[test]
    fn rearchive_overwrites() {
        let fs = fs();
        let mut t = VolatileTree::new();
        t.insert(1, b"one".to_vec());
        t.archive(&fs, "a").unwrap();
        t.insert(2, b"two".to_vec());
        t.archive(&fs, "a").unwrap();
        let back = VolatileTree::restore(&fs, "a").unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn corrupt_archive_detected() {
        let fs = fs();
        fs.create("bad").unwrap();
        fs.pwrite("bad", 0, b"NOTBOOST00000000").unwrap();
        assert!(VolatileTree::restore(&fs, "bad").is_err());
    }
}
