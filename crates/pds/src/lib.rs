//! Persistent data structures over Mnemosyne durable transactions.
//!
//! The paper's message (§8) is that "common in-memory data structures can
//! be made persistent using durable transactions" — no translation to an
//! update-optimized on-disk format. This crate provides the structures
//! the evaluation uses:
//!
//! * [`PHashTable`] — a chained hash table modelled on Christopher
//!   Clark's C hashtable, the §6.3 microbenchmark workload (Figures 4, 5
//!   and 7);
//! * [`PAvlTree`] — an AVL tree, the OpenLDAP entry-cache structure that
//!   `back-mnemosyne` persists (§6.2, Table 4);
//! * [`PBPlusTree`] — a B+ tree, Tokyo Cabinet's structure (§6.2,
//!   Table 4);
//! * [`PRbTree`] — a red-black tree with 128-byte nodes, the Table 5
//!   workload;
//! * [`serial`] — the Boost-serialization stand-in: a volatile ordered
//!   tree archived to a PCM-disk file (Table 5's baseline).
//!
//! Every structure stores plain pointers (`VAddr` words) in persistent
//! nodes allocated with `pmalloc`, and wraps each mutation in one durable
//! transaction, exactly as the converted applications in §6.2 do.

#![warn(missing_docs)]

pub mod avl;
pub mod bptree;
pub mod phash;
pub mod rbtree;
pub mod serial;

pub use avl::PAvlTree;
pub use bptree::PBPlusTree;
pub use phash::PHashTable;
pub use rbtree::PRbTree;
