//! A persistent AVL tree — the OpenLDAP entry-cache structure (§6.2).
//!
//! `back-mnemosyne` "is organized using an AVL tree, which we make
//! persistent by allocating nodes with pmalloc and placing atomic blocks
//! around updates". The SLAMD workload adds directory entries and
//! searches them, so the tree supports insert/replace and lookup; each
//! mutation is one durable transaction.
//!
//! Node layout (one `pmalloc` block):
//!
//! ```text
//! [left][right][height][klen][vlen][key bytes (8-aligned)][value bytes]
//! ```

use std::cmp::Ordering;

use mnemosyne::{Mnemosyne, Tx, TxAbort, TxError, TxThread, VAddr};

const OFF_LEFT: u64 = 0;
const OFF_RIGHT: u64 = 8;
const OFF_HEIGHT: u64 = 16;
const OFF_KLEN: u64 = 24;
const OFF_VLEN: u64 = 32;
const OFF_KEY: u64 = 40;

fn pad8(n: usize) -> u64 {
    (n as u64).div_ceil(8) * 8
}

/// Handle to a persistent AVL tree.
#[derive(Debug, Clone, Copy)]
pub struct PAvlTree {
    root_cell: VAddr,
}

fn node_key(tx: &mut Tx<'_>, node: VAddr) -> Result<Vec<u8>, TxAbort> {
    let klen = tx.read_u64(node.add(OFF_KLEN))? as usize;
    let mut k = vec![0u8; klen];
    tx.read_bytes(node.add(OFF_KEY), &mut k)?;
    Ok(k)
}

fn height(tx: &mut Tx<'_>, node: VAddr) -> Result<i64, TxAbort> {
    if node.is_null() {
        return Ok(0);
    }
    Ok(tx.read_u64(node.add(OFF_HEIGHT))? as i64)
}

fn fix_height(tx: &mut Tx<'_>, node: VAddr) -> Result<(), TxAbort> {
    let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
    let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
    let h = (1 + height(tx, l)?.max(height(tx, r)?)) as u64;
    // Only write when the height actually changes: most of the insert
    // path is unaffected, and avoiding the write keeps the transaction's
    // write set (and its lock footprint) proportional to the real change.
    if tx.read_u64(node.add(OFF_HEIGHT))? != h {
        tx.write_u64(node.add(OFF_HEIGHT), h)?;
    }
    Ok(())
}

fn balance_factor(tx: &mut Tx<'_>, node: VAddr) -> Result<i64, TxAbort> {
    let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
    let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
    Ok(height(tx, l)? - height(tx, r)?)
}

/// Right rotation around `y`; returns the new subtree root.
fn rotate_right(tx: &mut Tx<'_>, y: VAddr) -> Result<VAddr, TxAbort> {
    let x = VAddr(tx.read_u64(y.add(OFF_LEFT))?);
    let t2 = tx.read_u64(x.add(OFF_RIGHT))?;
    tx.write_u64(y.add(OFF_LEFT), t2)?;
    tx.write_u64(x.add(OFF_RIGHT), y.0)?;
    fix_height(tx, y)?;
    fix_height(tx, x)?;
    Ok(x)
}

/// Left rotation around `x`; returns the new subtree root.
fn rotate_left(tx: &mut Tx<'_>, x: VAddr) -> Result<VAddr, TxAbort> {
    let y = VAddr(tx.read_u64(x.add(OFF_RIGHT))?);
    let t2 = tx.read_u64(y.add(OFF_LEFT))?;
    tx.write_u64(x.add(OFF_RIGHT), t2)?;
    tx.write_u64(y.add(OFF_LEFT), x.0)?;
    fix_height(tx, x)?;
    fix_height(tx, y)?;
    Ok(y)
}

fn rebalance(tx: &mut Tx<'_>, node: VAddr) -> Result<VAddr, TxAbort> {
    fix_height(tx, node)?;
    let bf = balance_factor(tx, node)?;
    if bf > 1 {
        let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
        if balance_factor(tx, l)? < 0 {
            let nl = rotate_left(tx, l)?;
            tx.write_u64(node.add(OFF_LEFT), nl.0)?;
        }
        return rotate_right(tx, node);
    }
    if bf < -1 {
        let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
        if balance_factor(tx, r)? > 0 {
            let nr = rotate_right(tx, r)?;
            tx.write_u64(node.add(OFF_RIGHT), nr.0)?;
        }
        return rotate_left(tx, node);
    }
    Ok(node)
}

fn new_node(tx: &mut Tx<'_>, key: &[u8], value: &[u8]) -> Result<VAddr, TxAbort> {
    let node = tx.pmalloc(OFF_KEY + pad8(key.len()) + pad8(value.len()))?;
    tx.write_u64(node.add(OFF_LEFT), 0)?;
    tx.write_u64(node.add(OFF_RIGHT), 0)?;
    tx.write_u64(node.add(OFF_HEIGHT), 1)?;
    tx.write_u64(node.add(OFF_KLEN), key.len() as u64)?;
    tx.write_u64(node.add(OFF_VLEN), value.len() as u64)?;
    tx.write_bytes(node.add(OFF_KEY), key)?;
    tx.write_bytes(node.add(OFF_KEY + pad8(key.len())), value)?;
    Ok(node)
}

/// Recursive insert; returns the (possibly new) subtree root and whether
/// a node was added (false = replaced in place).
fn insert_rec(
    tx: &mut Tx<'_>,
    node: VAddr,
    key: &[u8],
    value: &[u8],
) -> Result<(VAddr, bool), TxAbort> {
    if node.is_null() {
        return Ok((new_node(tx, key, value)?, true));
    }
    let nk = node_key(tx, node)?;
    match key.cmp(nk.as_slice()) {
        Ordering::Less => {
            let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
            let (nl, added) = insert_rec(tx, l, key, value)?;
            if nl != l {
                tx.write_u64(node.add(OFF_LEFT), nl.0)?;
            }
            Ok((rebalance(tx, node)?, added))
        }
        Ordering::Greater => {
            let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
            let (nr, added) = insert_rec(tx, r, key, value)?;
            if nr != r {
                tx.write_u64(node.add(OFF_RIGHT), nr.0)?;
            }
            Ok((rebalance(tx, node)?, added))
        }
        Ordering::Equal => {
            // Replace: shadow the node with a fresh one carrying the new
            // value, preserving children and height.
            let repl = new_node(tx, key, value)?;
            let l = tx.read_u64(node.add(OFF_LEFT))?;
            let r = tx.read_u64(node.add(OFF_RIGHT))?;
            let h = tx.read_u64(node.add(OFF_HEIGHT))?;
            tx.write_u64(repl.add(OFF_LEFT), l)?;
            tx.write_u64(repl.add(OFF_RIGHT), r)?;
            tx.write_u64(repl.add(OFF_HEIGHT), h)?;
            tx.pfree(node);
            Ok((repl, false))
        }
    }
}

/// Detaches the minimum node of the subtree rooted at `node`, returning
/// `(new subtree root, detached min)` and rebalancing on the way up.
fn delete_min(tx: &mut Tx<'_>, node: VAddr) -> Result<(VAddr, VAddr), TxAbort> {
    let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
    if l.is_null() {
        let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
        return Ok((r, node));
    }
    let (nl, min) = delete_min(tx, l)?;
    if nl != l {
        tx.write_u64(node.add(OFF_LEFT), nl.0)?;
    }
    Ok((rebalance(tx, node)?, min))
}

/// Recursive delete; returns the new subtree root and whether a node was
/// removed.
fn delete_rec(tx: &mut Tx<'_>, node: VAddr, key: &[u8]) -> Result<(VAddr, bool), TxAbort> {
    if node.is_null() {
        return Ok((node, false));
    }
    let nk = node_key(tx, node)?;
    match key.cmp(nk.as_slice()) {
        Ordering::Less => {
            let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
            let (nl, removed) = delete_rec(tx, l, key)?;
            if nl != l {
                tx.write_u64(node.add(OFF_LEFT), nl.0)?;
            }
            Ok((rebalance(tx, node)?, removed))
        }
        Ordering::Greater => {
            let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
            let (nr, removed) = delete_rec(tx, r, key)?;
            if nr != r {
                tx.write_u64(node.add(OFF_RIGHT), nr.0)?;
            }
            Ok((rebalance(tx, node)?, removed))
        }
        Ordering::Equal => {
            let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
            let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
            tx.pfree(node); // freed only if the transaction commits
            if r.is_null() {
                return Ok((l, true));
            }
            // Relink the in-order successor in place of the victim —
            // pointer surgery, no payload copying (keys vary in size).
            let (nr, succ) = delete_min(tx, r)?;
            tx.write_u64(succ.add(OFF_LEFT), l.0)?;
            tx.write_u64(succ.add(OFF_RIGHT), nr.0)?;
            Ok((rebalance(tx, succ)?, true))
        }
    }
}

impl PAvlTree {
    /// Opens (or creates) the named tree.
    ///
    /// # Errors
    /// Propagates pstatic failures.
    pub fn open(m: &Mnemosyne, name: &str) -> Result<PAvlTree, mnemosyne::Error> {
        Ok(PAvlTree {
            root_cell: m.pstatic(name, 8)?,
        })
    }

    /// Inserts or replaces `key → value`; returns `true` if a new key was
    /// added.
    ///
    /// # Errors
    /// Propagates transaction/heap failures.
    pub fn insert(&self, th: &mut TxThread, key: &[u8], value: &[u8]) -> Result<bool, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let root = VAddr(tx.read_u64(root_cell)?);
            let (new_root, added) = insert_rec(tx, root, key, value)?;
            if new_root != root {
                tx.write_u64(root_cell, new_root.0)?;
            }
            Ok(added)
        })
    }

    /// Removes `key`, rebalancing and releasing the node; returns whether
    /// it was present.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn remove(&self, th: &mut TxThread, key: &[u8]) -> Result<bool, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let root = VAddr(tx.read_u64(root_cell)?);
            let (new_root, removed) = delete_rec(tx, root, key)?;
            if new_root != root {
                tx.write_u64(root_cell, new_root.0)?;
            }
            Ok(removed)
        })
    }

    /// Looks up `key`.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn get(&self, th: &mut TxThread, key: &[u8]) -> Result<Option<Vec<u8>>, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let mut node = VAddr(tx.read_u64(root_cell)?);
            while !node.is_null() {
                let nk = node_key(tx, node)?;
                match key.cmp(nk.as_slice()) {
                    Ordering::Less => node = VAddr(tx.read_u64(node.add(OFF_LEFT))?),
                    Ordering::Greater => node = VAddr(tx.read_u64(node.add(OFF_RIGHT))?),
                    Ordering::Equal => {
                        let klen = tx.read_u64(node.add(OFF_KLEN))? as usize;
                        let vlen = tx.read_u64(node.add(OFF_VLEN))? as usize;
                        let mut v = vec![0u8; vlen];
                        tx.read_bytes(node.add(OFF_KEY + pad8(klen)), &mut v)?;
                        return Ok(Some(v));
                    }
                }
            }
            Ok(None)
        })
    }

    /// Number of entries (full walk; diagnostics).
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn len(&self, th: &mut TxThread) -> Result<u64, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            fn count(tx: &mut Tx<'_>, node: VAddr) -> Result<u64, TxAbort> {
                if node.is_null() {
                    return Ok(0);
                }
                let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
                let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
                Ok(1 + count(tx, l)? + count(tx, r)?)
            }
            let root = VAddr(tx.read_u64(root_cell)?);
            count(tx, root)
        })
    }

    /// Whether the tree is empty.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn is_empty(&self, th: &mut TxThread) -> Result<bool, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| Ok(tx.read_u64(root_cell)? == 0))
    }

    /// Verifies the AVL invariants (balance factors in [-1, 1], ordered
    /// keys, consistent heights); returns the node count.
    ///
    /// # Errors
    /// Propagates transaction failures.
    ///
    /// # Panics
    /// Panics if an invariant is violated (test helper).
    pub fn check_invariants(&self, th: &mut TxThread) -> Result<u64, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            fn walk(
                tx: &mut Tx<'_>,
                node: VAddr,
                lo: Option<&[u8]>,
                hi: Option<&[u8]>,
            ) -> Result<(i64, u64), TxAbort> {
                if node.is_null() {
                    return Ok((0, 0));
                }
                let k = node_key(tx, node)?;
                if let Some(lo) = lo {
                    assert!(k.as_slice() > lo, "ordering violated");
                }
                if let Some(hi) = hi {
                    assert!(k.as_slice() < hi, "ordering violated");
                }
                let l = VAddr(tx.read_u64(node.add(OFF_LEFT))?);
                let r = VAddr(tx.read_u64(node.add(OFF_RIGHT))?);
                let (lh, ln) = walk(tx, l, lo, Some(&k))?;
                let (rh, rn) = walk(tx, r, Some(&k), hi)?;
                assert!((lh - rh).abs() <= 1, "balance violated at {node}");
                let h = tx.read_u64(node.add(OFF_HEIGHT))? as i64;
                assert_eq!(h, 1 + lh.max(rh), "height stale at {node}");
                Ok((h, 1 + ln + rn))
            }
            let root = VAddr(tx.read_u64(root_cell)?);
            let (_, n) = walk(tx, root, None, None)?;
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne::CrashPolicy;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pds-avl-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn insert_get_replace() {
        let d = dir("basic");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PAvlTree::open(&m, "tree").unwrap();
        assert!(t.insert(&mut th, b"m", b"1").unwrap());
        assert!(t.insert(&mut th, b"a", b"2").unwrap());
        assert!(t.insert(&mut th, b"z", b"3").unwrap());
        assert!(!t.insert(&mut th, b"a", b"two").unwrap());
        assert_eq!(t.get(&mut th, b"a").unwrap().unwrap(), b"two");
        assert_eq!(t.get(&mut th, b"zz").unwrap(), None);
        assert_eq!(t.len(&mut th).unwrap(), 3);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let d = dir("balance");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PAvlTree::open(&m, "tree").unwrap();
        // Sequential keys are the worst case for an unbalanced BST.
        for i in 0..500u32 {
            t.insert(&mut th, format!("key{i:06}").as_bytes(), b"v")
                .unwrap();
        }
        assert_eq!(t.check_invariants(&mut th).unwrap(), 500);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn survives_crash_mid_workload() {
        let d = dir("crash");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        {
            let mut th = m.register_thread().unwrap();
            let t = PAvlTree::open(&m, "tree").unwrap();
            for i in 0..200u32 {
                t.insert(&mut th, format!("dn={i}").as_bytes(), &[i as u8; 32])
                    .unwrap();
            }
        }
        let m2 = m.crash_reboot(CrashPolicy::random(17)).unwrap();
        let mut th = m2.register_thread().unwrap();
        let t = PAvlTree::open(&m2, "tree").unwrap();
        assert_eq!(t.check_invariants(&mut th).unwrap(), 200);
        for i in 0..200u32 {
            assert_eq!(
                t.get(&mut th, format!("dn={i}").as_bytes())
                    .unwrap()
                    .unwrap(),
                vec![i as u8; 32]
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn remove_rebalances_and_frees() {
        let d = dir("remove");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PAvlTree::open(&m, "tree").unwrap();
        for i in 0..200u32 {
            t.insert(&mut th, format!("k{i:04}").as_bytes(), &[i as u8; 16])
                .unwrap();
        }
        let frees_before = m.heap().stats().frees;
        // Remove every third key, including internal nodes.
        let mut removed = 0;
        for i in (0..200u32).step_by(3) {
            assert!(t.remove(&mut th, format!("k{i:04}").as_bytes()).unwrap());
            removed += 1;
        }
        assert!(!t.remove(&mut th, b"k0000").unwrap(), "double remove");
        assert_eq!(
            t.check_invariants(&mut th).unwrap(),
            200 - removed,
            "balance must hold after deletions"
        );
        assert_eq!(m.heap().stats().frees - frees_before, removed);
        // Remaining keys intact.
        for i in 0..200u32 {
            let present = t.get(&mut th, format!("k{i:04}").as_bytes()).unwrap();
            assert_eq!(present.is_some(), i % 3 != 0, "key {i}");
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn drain_entire_tree() {
        let d = dir("drain");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PAvlTree::open(&m, "tree").unwrap();
        for i in 0..100u32 {
            t.insert(&mut th, &i.to_le_bytes(), b"v").unwrap();
        }
        // Remove in an order that forces both leaf and two-child cases.
        let mut x = 5u32;
        let mut left = 100;
        let mut gone = std::collections::HashSet::new();
        while left > 0 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let k = x % 100;
            if gone.insert(k) {
                assert!(t.remove(&mut th, &k.to_le_bytes()).unwrap());
                left -= 1;
                if left % 25 == 0 {
                    t.check_invariants(&mut th).unwrap();
                }
            }
        }
        assert!(t.is_empty(&mut th).unwrap());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn removals_survive_crash() {
        let d = dir("rm-crash");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        {
            let mut th = m.register_thread().unwrap();
            let t = PAvlTree::open(&m, "tree").unwrap();
            for i in 0..100u32 {
                t.insert(&mut th, &i.to_le_bytes(), b"v").unwrap();
            }
            for i in 0..50u32 {
                t.remove(&mut th, &(i * 2).to_le_bytes()).unwrap();
            }
        }
        let m2 = m.crash_reboot(mnemosyne::CrashPolicy::random(3)).unwrap();
        let mut th = m2.register_thread().unwrap();
        let t = PAvlTree::open(&m2, "tree").unwrap();
        assert_eq!(t.check_invariants(&mut th).unwrap(), 50);
        for i in 0..100u32 {
            assert_eq!(
                t.get(&mut th, &i.to_le_bytes()).unwrap().is_some(),
                i % 2 == 1
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn random_order_inserts_hold_invariants() {
        let d = dir("random");
        let m = Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let t = PAvlTree::open(&m, "tree").unwrap();
        let mut x = 12345u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.insert(&mut th, &x.to_le_bytes(), b"v").unwrap();
        }
        t.check_invariants(&mut th).unwrap();
        std::fs::remove_dir_all(&d).ok();
    }
}
