//! A persistent chained hash table (the §6.3 microbenchmark structure).
//!
//! Modelled on the "simple hash table" of the paper's Figure 4/5
//! experiments (Christopher Clark's C hashtable): a bucket array of head
//! pointers plus singly linked nodes. Each node is one `pmalloc` block:
//!
//! ```text
//! [next ptr][klen][vlen][key bytes (8-aligned)][value bytes]
//! ```
//!
//! Every mutation runs in one durable transaction; a 64-byte insert
//! touches the bucket head, the node fields, and the payload — the ~15
//! updates to ~5 cache lines the paper counts for its 4.3 µs insert.

use mnemosyne::{Mnemosyne, TxAbort, TxError, TxThread, VAddr};

const HDR_BUCKETS: u64 = 0; // offset of bucket count in table header
const HDR_ARRAY: u64 = 8; // offset of bucket array

/// Key–value pairs returned by [`PHashTable::scan_prefix`], in bucket
/// order.
pub type ScanEntries = Vec<(Vec<u8>, Vec<u8>)>;

fn hash_key(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn pad8(n: usize) -> u64 {
    (n as u64).div_ceil(8) * 8
}

/// Handle to a persistent hash table (cheap to copy; all state is in
/// persistent memory).
#[derive(Debug, Clone, Copy)]
pub struct PHashTable {
    /// Persistent cell holding the table header address.
    root_cell: VAddr,
}

impl PHashTable {
    /// Opens (or creates, on first run) the named table with
    /// `buckets` chains.
    ///
    /// # Errors
    /// Propagates pstatic/transaction failures.
    pub fn open(
        m: &Mnemosyne,
        th: &mut TxThread,
        name: &str,
        buckets: u64,
    ) -> Result<PHashTable, mnemosyne::Error> {
        let root_cell = m.pstatic(name, 8)?;
        th.atomic(|tx| {
            if tx.read_u64(root_cell)? == 0 {
                let table = tx.pmalloc(HDR_ARRAY + buckets * 8)?;
                tx.write_u64(table.add(HDR_BUCKETS), buckets)?;
                for i in 0..buckets {
                    tx.write_u64(table.add(HDR_ARRAY + i * 8), 0)?;
                }
                tx.write_u64(root_cell, table.0)?;
            }
            Ok(())
        })?;
        Ok(PHashTable { root_cell })
    }

    fn bucket_addr(
        tx: &mut mnemosyne::Tx<'_>,
        root_cell: VAddr,
        key: &[u8],
    ) -> Result<VAddr, TxAbort> {
        let table = VAddr(tx.read_u64(root_cell)?);
        let buckets = tx.read_u64(table.add(HDR_BUCKETS))?;
        let b = hash_key(key) % buckets;
        Ok(table.add(HDR_ARRAY + b * 8))
    }

    /// Walks the chain for `key`; returns `(prev_link, node)` where
    /// `prev_link` is the pointer cell referencing `node`.
    fn find_in_chain(
        tx: &mut mnemosyne::Tx<'_>,
        bucket: VAddr,
        key: &[u8],
    ) -> Result<Option<(VAddr, VAddr)>, TxAbort> {
        let mut link = bucket;
        loop {
            let node = VAddr(tx.read_u64(link)?);
            if node.is_null() {
                return Ok(None);
            }
            let klen = tx.read_u64(node.add(8))? as usize;
            if klen == key.len() {
                let mut k = vec![0u8; klen];
                tx.read_bytes(node.add(24), &mut k)?;
                if k == key {
                    return Ok(Some((link, node)));
                }
            }
            link = node; // next pointer is the node's first word
        }
    }

    /// Inserts or replaces `key → value` in one durable transaction.
    ///
    /// # Errors
    /// Propagates transaction/heap failures.
    pub fn put(&self, th: &mut TxThread, key: &[u8], value: &[u8]) -> Result<(), TxError> {
        let this = *self;
        th.atomic(|tx| this.put_in(tx, key, value))
    }

    /// Inserts or replaces `key → value` inside an already-open
    /// transaction — the building block request batchers use to fold many
    /// mutations into a single durable commit.
    ///
    /// # Errors
    /// Propagates transaction/heap aborts to the enclosing `atomic`.
    pub fn put_in(
        &self,
        tx: &mut mnemosyne::Tx<'_>,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), TxAbort> {
        let bucket = Self::bucket_addr(tx, self.root_cell, key)?;
        if let Some((link, node)) = Self::find_in_chain(tx, bucket, key)? {
            let next = tx.read_u64(node)?;
            tx.write_u64(link, next)?;
            tx.pfree(node);
        }
        let node = tx.pmalloc(24 + pad8(key.len()) + pad8(value.len()))?;
        let head = tx.read_u64(bucket)?;
        tx.write_u64(node, head)?;
        tx.write_u64(node.add(8), key.len() as u64)?;
        tx.write_u64(node.add(16), value.len() as u64)?;
        tx.write_bytes(node.add(24), key)?;
        tx.write_bytes(node.add(24 + pad8(key.len())), value)?;
        tx.write_u64(bucket, node.0)?;
        Ok(())
    }

    /// Removes `key`, returning whether it was present.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn remove(&self, th: &mut TxThread, key: &[u8]) -> Result<bool, TxError> {
        let this = *self;
        th.atomic(|tx| this.remove_in(tx, key))
    }

    /// Removes `key` inside an already-open transaction, returning whether
    /// it was present.
    ///
    /// # Errors
    /// Propagates transaction aborts to the enclosing `atomic`.
    pub fn remove_in(&self, tx: &mut mnemosyne::Tx<'_>, key: &[u8]) -> Result<bool, TxAbort> {
        let bucket = Self::bucket_addr(tx, self.root_cell, key)?;
        match Self::find_in_chain(tx, bucket, key)? {
            Some((link, node)) => {
                let next = tx.read_u64(node)?;
                tx.write_u64(link, next)?;
                tx.pfree(node);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn get(&self, th: &mut TxThread, key: &[u8]) -> Result<Option<Vec<u8>>, TxError> {
        let this = *self;
        th.atomic(|tx| this.get_in(tx, key))
    }

    /// Looks up `key` inside an already-open transaction.
    ///
    /// # Errors
    /// Propagates transaction aborts to the enclosing `atomic`.
    pub fn get_in(
        &self,
        tx: &mut mnemosyne::Tx<'_>,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, TxAbort> {
        let bucket = Self::bucket_addr(tx, self.root_cell, key)?;
        match Self::find_in_chain(tx, bucket, key)? {
            Some((_, node)) => {
                let klen = tx.read_u64(node.add(8))? as usize;
                let vlen = tx.read_u64(node.add(16))? as usize;
                let mut v = vec![0u8; vlen];
                tx.read_bytes(node.add(24 + pad8(klen)), &mut v)?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Collects up to `limit` entries whose key starts with `prefix`
    /// (`limit == 0` means unlimited). Walks every chain, so the result
    /// order is bucket order, not key order.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn scan_prefix(
        &self,
        th: &mut TxThread,
        prefix: &[u8],
        limit: usize,
    ) -> Result<ScanEntries, TxError> {
        let this = *self;
        th.atomic(|tx| this.scan_prefix_in(tx, prefix, limit))
    }

    /// [`PHashTable::scan_prefix`] inside an already-open transaction.
    ///
    /// # Errors
    /// Propagates transaction aborts to the enclosing `atomic`.
    pub fn scan_prefix_in(
        &self,
        tx: &mut mnemosyne::Tx<'_>,
        prefix: &[u8],
        limit: usize,
    ) -> Result<ScanEntries, TxAbort> {
        let table = VAddr(tx.read_u64(self.root_cell)?);
        let buckets = tx.read_u64(table.add(HDR_BUCKETS))?;
        let mut out = Vec::new();
        for b in 0..buckets {
            let mut node = VAddr(tx.read_u64(table.add(HDR_ARRAY + b * 8))?);
            while !node.is_null() {
                if limit != 0 && out.len() >= limit {
                    return Ok(out);
                }
                let klen = tx.read_u64(node.add(8))? as usize;
                if klen >= prefix.len() {
                    let mut k = vec![0u8; klen];
                    tx.read_bytes(node.add(24), &mut k)?;
                    if k.starts_with(prefix) {
                        let vlen = tx.read_u64(node.add(16))? as usize;
                        let mut v = vec![0u8; vlen];
                        tx.read_bytes(node.add(24 + pad8(klen)), &mut v)?;
                        out.push((k, v));
                    }
                }
                node = VAddr(tx.read_u64(node)?);
            }
        }
        Ok(out)
    }

    /// Number of entries (walks every chain; diagnostics only).
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn len(&self, th: &mut TxThread) -> Result<u64, TxError> {
        let root_cell = self.root_cell;
        th.atomic(|tx| {
            let table = VAddr(tx.read_u64(root_cell)?);
            let buckets = tx.read_u64(table.add(HDR_BUCKETS))?;
            let mut n = 0;
            for b in 0..buckets {
                let mut node = VAddr(tx.read_u64(table.add(HDR_ARRAY + b * 8))?);
                while !node.is_null() {
                    n += 1;
                    node = VAddr(tx.read_u64(node)?);
                }
            }
            Ok(n)
        })
    }

    /// Whether the table is empty.
    ///
    /// # Errors
    /// Propagates transaction failures.
    pub fn is_empty(&self, th: &mut TxThread) -> Result<bool, TxError> {
        Ok(self.len(th)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne::CrashPolicy;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pds-hash-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn put_get_remove() {
        let d = dir("basic");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let h = PHashTable::open(&m, &mut th, "tbl", 64).unwrap();
        h.put(&mut th, b"one", b"1").unwrap();
        h.put(&mut th, b"two", b"22").unwrap();
        assert_eq!(h.get(&mut th, b"one").unwrap().unwrap(), b"1");
        h.put(&mut th, b"one", b"uno").unwrap();
        assert_eq!(h.get(&mut th, b"one").unwrap().unwrap(), b"uno");
        assert!(h.remove(&mut th, b"one").unwrap());
        assert!(!h.remove(&mut th, b"one").unwrap());
        assert_eq!(h.len(&mut th).unwrap(), 1);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn survives_random_crash() {
        let d = dir("crash");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        {
            let mut th = m.register_thread().unwrap();
            let h = PHashTable::open(&m, &mut th, "tbl", 64).unwrap();
            for i in 0..100u64 {
                h.put(&mut th, &i.to_le_bytes(), &[i as u8; 64]).unwrap();
            }
        }
        let m2 = m.crash_reboot(CrashPolicy::random(11)).unwrap();
        let mut th = m2.register_thread().unwrap();
        let h = PHashTable::open(&m2, &mut th, "tbl", 64).unwrap();
        for i in 0..100u64 {
            assert_eq!(
                h.get(&mut th, &i.to_le_bytes()).unwrap().unwrap(),
                vec![i as u8; 64],
                "key {i} corrupted by crash"
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let d = dir("conc");
        let m = std::sync::Arc::new(Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap());
        let h = {
            let mut th = m.register_thread().unwrap();
            PHashTable::open(&m, &mut th, "tbl", 256).unwrap()
        };
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let m = std::sync::Arc::clone(&m);
            joins.push(std::thread::spawn(move || {
                let mut th = m.register_thread().unwrap();
                for i in 0..100u64 {
                    let k = (t << 32 | i).to_le_bytes();
                    h.put(&mut th, &k, &k).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut th = m.register_thread().unwrap();
        assert_eq!(h.len(&mut th).unwrap(), 400);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn scan_prefix_filters_and_limits() {
        let d = dir("scan");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let h = PHashTable::open(&m, &mut th, "tbl", 16).unwrap();
        for i in 0..20u8 {
            h.put(&mut th, &[b'a', i], &[i]).unwrap();
        }
        h.put(&mut th, b"zzz", b"other").unwrap();
        let all = h.scan_prefix(&mut th, b"a", 0).unwrap();
        assert_eq!(all.len(), 20);
        assert!(all.iter().all(|(k, v)| k[0] == b'a' && v == &vec![k[1]]));
        let capped = h.scan_prefix(&mut th, b"a", 7).unwrap();
        assert_eq!(capped.len(), 7);
        let none = h.scan_prefix(&mut th, b"nope", 0).unwrap();
        assert!(none.is_empty());
        let everything = h.scan_prefix(&mut th, b"", 0).unwrap();
        assert_eq!(everything.len(), 21);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn batched_ops_in_one_transaction() {
        let d = dir("batch");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let h = PHashTable::open(&m, &mut th, "tbl", 16).unwrap();
        let commits_before = m.mtm().stats().commits;
        // Ten puts and a removal as ONE durable transaction.
        th.atomic(|tx| {
            for i in 0..10u64 {
                h.put_in(tx, &i.to_le_bytes(), &[i as u8; 16])?;
            }
            assert!(h.remove_in(tx, &3u64.to_le_bytes())?);
            assert_eq!(h.get_in(tx, &4u64.to_le_bytes())?, Some(vec![4u8; 16]));
            Ok(())
        })
        .unwrap();
        assert_eq!(m.mtm().stats().commits - commits_before, 1);
        assert_eq!(h.len(&mut th).unwrap(), 9);
        assert!(h.get(&mut th, &3u64.to_le_bytes()).unwrap().is_none());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn empty_and_missing() {
        let d = dir("empty");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let mut th = m.register_thread().unwrap();
        let h = PHashTable::open(&m, &mut th, "tbl", 8).unwrap();
        assert!(h.is_empty(&mut th).unwrap());
        assert!(h.get(&mut th, b"ghost").unwrap().is_none());
        std::fs::remove_dir_all(&d).ok();
    }
}
