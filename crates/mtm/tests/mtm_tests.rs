//! Behavioural tests for durable memory transactions (§5, §6.2).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mnemosyne_mtm::{MtmConfig, MtmRuntime, Truncation, TxError};
use mnemosyne_pheap::{HeapConfig, PHeap};
use mnemosyne_region::{RegionManager, Regions, VAddr};
use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};

struct Env {
    sim: ScmSim,
    dir: PathBuf,
}

impl Drop for Env {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.dir).ok();
    }
}

fn setup(tag: &str) -> (Env, Arc<Regions>) {
    let dir = std::env::temp_dir().join(format!(
        "mtm-{}-{}-{:?}",
        tag,
        std::process::id(),
        std::thread::current().id()
    ));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    let sim = ScmSim::new(ScmConfig::for_testing(64 << 20));
    let mgr = RegionManager::boot(&sim, &dir).unwrap();
    let (regions, _pmem) = Regions::open(&mgr, 1 << 16).unwrap();
    (Env { sim, dir }, Arc::new(regions))
}

fn reopen(env: &Env, dir: &Path) -> Arc<Regions> {
    reopen_from(env.sim.image(), dir)
}

/// Boots a fresh machine from a media image captured at crash time — the
/// moment the "machine died". Anything the old process does afterwards
/// (e.g. destructors) cannot affect this image, just as a real crash ends
/// the process.
fn reopen_from(img: Vec<u8>, dir: &Path) -> Arc<Regions> {
    let sim2 = ScmSim::from_image(&img, ScmConfig::for_testing(64 << 20));
    let mgr2 = RegionManager::boot(&sim2, dir).unwrap();
    let (regions, _pmem) = Regions::open(&mgr2, 1 << 16).unwrap();
    Arc::new(regions)
}

#[test]
fn committed_transaction_survives_crash_sync() {
    let (env, regions) = setup("sync");
    let (base, _) = regions.static_area();
    {
        let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
        let mut th = rt.register_thread().unwrap();
        th.atomic(|tx| {
            tx.write_u64(base, 1111)?;
            tx.write_u64(base.add(8), 2222)?;
            Ok(())
        })
        .unwrap();
    }
    env.sim.crash(CrashPolicy::DropAll);
    let regions2 = reopen(&env, &env.dir.clone());
    let rt2 = MtmRuntime::open(&regions2, MtmConfig::default()).unwrap();
    let pmem = regions2.pmem_handle();
    assert_eq!(pmem.read_u64(base), 1111);
    assert_eq!(pmem.read_u64(base.add(8)), 2222);
    drop(rt2);
}

#[test]
fn committed_transaction_replayed_after_crash_async() {
    let (env, regions) = setup("async");
    let (base, _) = regions.static_area();
    let img = {
        let rt = MtmRuntime::open(
            &regions,
            MtmConfig::default().with_truncation(Truncation::Async),
        )
        .unwrap();
        let mut th = rt.register_thread().unwrap();
        // Commit returns as soon as the LOG is durable; the data itself
        // may still be sitting in the cache.
        th.atomic(|tx| {
            for i in 0..20u64 {
                tx.write_u64(base.add(i * 8), i * 100)?;
            }
            Ok(())
        })
        .unwrap();
        // Kill the process (stop background threads at the failure
        // point), then crash: drop every cached line. The redo record is
        // in SCM (fenced), so recovery must replay it unless the manager
        // already forced the data out.
        rt.kill();
        env.sim.crash(CrashPolicy::DropAll);
        env.sim.image()
    };
    let regions2 = reopen_from(img, &env.dir.clone());
    let rt2 = MtmRuntime::open(&regions2, MtmConfig::default()).unwrap();
    let pmem = regions2.pmem_handle();
    for i in 0..20u64 {
        assert_eq!(pmem.read_u64(base.add(i * 8)), i * 100, "word {i}");
    }
    // At least one transaction (possibly replayed already by the manager
    // thread before the crash) should have been replayed or persisted.
    let _ = rt2.stats();
}

#[test]
fn cancelled_transaction_rolls_back() {
    let (_env, regions) = setup("cancel");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    let mut th = rt.register_thread().unwrap();
    th.atomic(|tx| tx.write_u64(base, 5)).unwrap();
    let r: Result<(), TxError> = th.atomic(|tx| {
        tx.write_u64(base, 999)?;
        Err(tx.cancel())
    });
    assert!(matches!(r, Err(TxError::Cancelled)));
    let v = th.atomic(|tx| tx.read_u64(base)).unwrap();
    assert_eq!(v, 5, "cancelled writes must not be visible");
    assert!(rt.stats().aborts >= 1);
}

#[test]
fn read_own_writes() {
    let (_env, regions) = setup("rot");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    let mut th = rt.register_thread().unwrap();
    th.atomic(|tx| {
        tx.write_u64(base, 42)?;
        assert_eq!(tx.read_u64(base)?, 42);
        tx.write_u64(base, 43)?;
        assert_eq!(tx.read_u64(base)?, 43);
        Ok(())
    })
    .unwrap();
}

#[test]
fn byte_granularity_accessors() {
    let (_env, regions) = setup("bytes");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    let mut th = rt.register_thread().unwrap();
    let data: Vec<u8> = (0..=255).collect();
    th.atomic(|tx| tx.write_bytes(base.add(3), &data)).unwrap();
    let out = th
        .atomic(|tx| {
            let mut buf = vec![0u8; 256];
            tx.read_bytes(base.add(3), &mut buf)?;
            Ok(buf)
        })
        .unwrap();
    assert_eq!(out, data);
}

#[test]
fn concurrent_counter_is_exact() {
    let (_env, regions) = setup("conc");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    const THREADS: usize = 4;
    const PER: u64 = 500;
    let mut joins = Vec::new();
    for _ in 0..THREADS {
        let mut th = rt.register_thread().unwrap();
        joins.push(std::thread::spawn(move || {
            for _ in 0..PER {
                th.atomic(|tx| {
                    let v = tx.read_u64(base)?;
                    tx.write_u64(base, v + 1)?;
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let mut th = rt.register_thread().unwrap();
    let v = th.atomic(|tx| tx.read_u64(base)).unwrap();
    assert_eq!(v, THREADS as u64 * PER, "lost updates under contention");
    assert_eq!(rt.stats().commits, THREADS as u64 * PER + 1);
}

#[test]
fn disjoint_threads_commit_in_parallel() {
    let (_env, regions) = setup("disj");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let mut th = rt.register_thread().unwrap();
        joins.push(std::thread::spawn(move || {
            for i in 0..200u64 {
                th.atomic(|tx| tx.write_u64(base.add((t * 200 + i) * 8), t))
                    .unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // Disjoint address ranges: aborts should be rare (only hash-collision
    // false conflicts).
    let stats = rt.stats();
    assert_eq!(stats.commits, 800);
}

#[test]
fn thread_slots_are_bounded_and_recycled() {
    let (_env, regions) = setup("slots");
    let rt = MtmRuntime::open(&regions, MtmConfig::default().with_max_threads(2)).unwrap();
    let a = rt.register_thread().unwrap();
    let _b = rt.register_thread().unwrap();
    assert!(matches!(rt.register_thread(), Err(TxError::NoThreadSlots)));
    drop(a);
    let _c = rt.register_thread().unwrap();
}

#[test]
fn tx_pmalloc_commit_and_abort() {
    let (_env, regions) = setup("heap");
    let heap = Arc::new(
        PHeap::open(&regions, HeapConfig::default().with_sizes(1 << 20, 1 << 20)).unwrap(),
    );
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    rt.attach_heap(Arc::clone(&heap));
    let (anchor, _) = regions.static_area();
    let mut th = rt.register_thread().unwrap();

    // Committed allocation, anchored transactionally (Figure 3 pattern).
    let addr = th
        .atomic(|tx| {
            let a = tx.pmalloc(64)?;
            tx.write_u64(a, 0xfeed)?;
            tx.write_u64(anchor, a.0)?;
            Ok(a)
        })
        .unwrap();
    assert_eq!(heap.usable_size(addr), Some(64));

    // Aborted allocation is released.
    let before = heap.stats();
    let r: Result<(), TxError> = th.atomic(|tx| {
        let _a = tx.pmalloc(64)?;
        Err(tx.cancel())
    });
    assert!(r.is_err());
    let after = heap.stats();
    assert_eq!(after.allocs - before.allocs, after.frees - before.frees);

    // Deferred free applies only on commit.
    th.atomic(|tx| {
        let a = VAddr(tx.read_u64(anchor)?);
        tx.pfree(a);
        tx.write_u64(anchor, 0)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(heap.usable_size(addr), None);
}

#[test]
fn isolation_no_dirty_reads() {
    let (_env, regions) = setup("iso");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    // Writer holds a transaction open by looping inside the closure once;
    // we emulate an interleaving by checking that a reader either sees the
    // pre-state or the post-state of a 2-word invariant (a == b).
    let mut w = rt.register_thread().unwrap();
    w.atomic(|tx| {
        tx.write_u64(base, 7)?;
        tx.write_u64(base.add(8), 7)?;
        Ok(())
    })
    .unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let mut r = rt.register_thread().unwrap();
    let reader = std::thread::spawn(move || {
        let mut checks = 0u64;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            let (a, b) = r
                .atomic(|tx| Ok((tx.read_u64(base)?, tx.read_u64(base.add(8))?)))
                .unwrap();
            assert_eq!(a, b, "isolation violated: {a} != {b}");
            checks += 1;
        }
        checks
    });
    for i in 8..200u64 {
        w.atomic(|tx| {
            tx.write_u64(base, i)?;
            tx.write_u64(base.add(8), i)?;
            Ok(())
        })
        .unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let checks = reader.join().unwrap();
    assert!(checks > 0);
}

#[test]
fn replay_respects_timestamp_order() {
    let (env, regions) = setup("order");
    let (base, _) = regions.static_area();
    let img = {
        let rt = MtmRuntime::open(
            &regions,
            MtmConfig::default().with_truncation(Truncation::Async),
        )
        .unwrap();
        // Two different thread slots write the same word in sequence; the
        // records land in *different* per-thread logs and only the global
        // timestamp orders them.
        let mut t1 = rt.register_thread().unwrap();
        let mut t2 = rt.register_thread().unwrap();
        t1.atomic(|tx| tx.write_u64(base, 1)).unwrap();
        t2.atomic(|tx| tx.write_u64(base, 2)).unwrap();
        t1.atomic(|tx| tx.write_u64(base, 3)).unwrap();
        rt.kill();
        env.sim.crash(CrashPolicy::DropAll);
        env.sim.image()
    };
    let regions2 = reopen_from(img, &env.dir.clone());
    let _rt2 = MtmRuntime::open(&regions2, MtmConfig::default()).unwrap();
    let pmem = regions2.pmem_handle();
    assert_eq!(pmem.read_u64(base), 3, "replay must apply ts order");
}

#[test]
fn large_write_sets_commit() {
    let (_env, regions) = setup("big");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    let mut th = rt.register_thread().unwrap();
    th.atomic(|tx| {
        for i in 0..512u64 {
            tx.write_u64(base.add(i * 8), i)?;
        }
        Ok(())
    })
    .unwrap();
    let sum = th
        .atomic(|tx| {
            let mut s = 0u64;
            for i in 0..512u64 {
                s += tx.read_u64(base.add(i * 8))?;
            }
            Ok(s)
        })
        .unwrap();
    assert_eq!(sum, (0..512).sum::<u64>());
}

#[test]
fn sync_mode_truncates_log_each_commit() {
    let (_env, regions) = setup("trunc");
    let (base, _) = regions.static_area();
    let rt = MtmRuntime::open(&regions, MtmConfig::default()).unwrap();
    let mut th = rt.register_thread().unwrap();
    // Far more commits than the log could hold without truncation.
    for i in 0..2000u64 {
        th.atomic(|tx| tx.write_u64(base, i)).unwrap();
    }
    assert_eq!(th.atomic(|tx| tx.read_u64(base)).unwrap(), 1999);
}
