//! The transaction descriptor: buffered writes, versioned reads,
//! encounter-time locking (§5).

use std::collections::{HashMap, HashSet};

use mnemosyne_region::VAddr;

use crate::error::TxAbort;
use crate::locks::LockState;
use crate::runtime::TxThread;

/// An in-flight durable memory transaction. All persistent reads and
/// writes inside an `atomic` closure must go through these accessors (the
/// paper's compiler instruments loads/stores to do the same).
pub struct Tx<'a> {
    pub(crate) th: &'a mut TxThread,
    /// Read validation horizon (TinySTM's `rv`).
    pub(crate) rv: u64,
    /// Buffered new values, word granularity (lazy version management).
    pub(crate) write_set: HashMap<u64, u64>,
    /// Reads: `(lock index, observed version)`.
    pub(crate) read_set: Vec<(usize, u64)>,
    /// Acquired locks: `(lock index, pre-acquire version)`.
    pub(crate) lock_set: Vec<(usize, u64)>,
    /// Fast membership test for `lock_set`.
    pub(crate) owned: HashSet<usize>,
    /// Blocks allocated inside this transaction (freed on abort).
    pub(crate) allocs: Vec<VAddr>,
    /// Frees deferred to commit success.
    pub(crate) frees: Vec<VAddr>,
}

impl std::fmt::Debug for Tx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tx")
            .field("rv", &self.rv)
            .field("writes", &self.write_set.len())
            .field("reads", &self.read_set.len())
            .finish()
    }
}

impl<'a> Tx<'a> {
    pub(crate) fn begin(th: &'a mut TxThread) -> Tx<'a> {
        th.rt().metrics().tx_begins.inc();
        let rv = th.rt().clock().now();
        Tx {
            th,
            rv,
            write_set: HashMap::new(),
            read_set: Vec::new(),
            lock_set: Vec::new(),
            owned: HashSet::new(),
            allocs: Vec::new(),
            frees: Vec::new(),
        }
    }

    /// Bounded adaptive backoff on a lock found foreign-owned — the
    /// contention manager for encounter-time conflicts. Instead of
    /// aborting on the first owned probe (raw spin/abort), the thread
    /// waits a randomised, exponentially growing number of spins — the
    /// exponent raised further by the site's contention level, so hot
    /// sites wait longer — and re-probes, up to `max_lock_waits` rounds.
    ///
    /// Returns `Ok(())` to re-probe; `Err(TxAbort::Conflict)` once
    /// patience is exhausted (livelock/deadlock escape: two transactions
    /// waiting on each other's locks must eventually abort one).
    fn backoff_on_owned(&mut self, idx: usize, waits: &mut u32) -> Result<(), TxAbort> {
        if *waits == 0 {
            self.th.rt().metrics().lock_conflicts.inc();
            self.th.rt().locks().note_conflict(idx);
        }
        if *waits >= self.th.rt().max_lock_waits() {
            self.th.rt().metrics().conflict_aborts.inc();
            return Err(TxAbort::Conflict);
        }
        let shift = (*waits as u64 + 1 + self.th.rt().locks().contention(idx)).min(14);
        let spins = self.th.next_rand() % (1u64 << shift);
        self.th.rt().metrics().backoff_spins.record(spins);
        // The wait issues no durability primitives, so under fault
        // injection poll explicitly: if the lock owner died at a crash
        // point, this waiter must die here too rather than spin out its
        // patience against a corpse.
        self.th.pmem().poll_crash();
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        *waits += 1;
        Ok(())
    }

    /// Bookkeeping for a conflict episode that resolved without an abort:
    /// decay the site's contention hint.
    fn note_wait_resolved(&mut self, idx: usize, waits: &mut u32) {
        if *waits > 0 {
            self.th.rt().locks().note_resolved(idx);
            *waits = 0;
        }
    }

    /// Validates every recorded read against the lock table; on success
    /// advances the horizon (TinySTM's timestamp extension).
    fn extend(&mut self) -> Result<(), TxAbort> {
        let now = self.th.rt().clock().now();
        let locks = self.th.rt().locks();
        for &(idx, version) in &self.read_set {
            match locks.probe(idx) {
                LockState::Version(v) if v == version => {}
                LockState::Owned(s) if s == self.th.slot() => {}
                _ => return Err(TxAbort::Conflict),
            }
        }
        self.rv = now;
        Ok(())
    }

    /// Transactional load of the 64-bit word at `addr` (8-byte aligned).
    ///
    /// # Errors
    /// [`TxAbort::Conflict`] on a lost conflict — propagate with `?`.
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or not persistent.
    pub fn read_u64(&mut self, addr: VAddr) -> Result<u64, TxAbort> {
        assert!(
            addr.is_persistent(),
            "transactional read of volatile address {addr}"
        );
        assert!(
            addr.is_word_aligned(),
            "unaligned transactional read at {addr}"
        );
        if let Some(&v) = self.write_set.get(&addr.0) {
            return Ok(v);
        }
        let idx = self.th.rt().locks().index_of(addr);
        if self.owned.contains(&idx) {
            // We hold the covering lock; memory cannot change under us.
            return Ok(self.th.pmem().read_u64(addr));
        }
        let mut waits = 0u32;
        loop {
            match self.th.rt().locks().probe(idx) {
                LockState::Owned(_) => self.backoff_on_owned(idx, &mut waits)?,
                LockState::Version(v1) => {
                    self.note_wait_resolved(idx, &mut waits);
                    let val = self.th.pmem().read_u64(addr);
                    match self.th.rt().locks().probe(idx) {
                        LockState::Version(v2) if v2 == v1 => {
                            if v1 > self.rv {
                                self.extend()?;
                            }
                            self.read_set.push((idx, v1));
                            return Ok(val);
                        }
                        _ => continue, // raced with a writer; re-probe
                    }
                }
            }
        }
    }

    /// Transactional store of a 64-bit word (8-byte aligned). The value is
    /// buffered; memory is updated at commit, after the redo log is
    /// durable.
    ///
    /// # Errors
    /// [`TxAbort::Conflict`] if the covering lock is held by another
    /// transaction.
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or not persistent.
    pub fn write_u64(&mut self, addr: VAddr, value: u64) -> Result<(), TxAbort> {
        assert!(
            addr.is_persistent(),
            "transactional write of volatile address {addr}"
        );
        assert!(
            addr.is_word_aligned(),
            "unaligned transactional write at {addr}"
        );
        let idx = self.th.rt().locks().index_of(addr);
        if !self.owned.contains(&idx) {
            let mut waits = 0u32;
            loop {
                match self.th.rt().locks().probe(idx) {
                    LockState::Owned(_) => self.backoff_on_owned(idx, &mut waits)?,
                    LockState::Version(v) => {
                        self.note_wait_resolved(idx, &mut waits);
                        if v > self.rv {
                            // Someone committed to this slot after our
                            // snapshot horizon. Validate-and-extend *before*
                            // acquiring: a stale read of this very word is
                            // still visible as a version mismatch now, but
                            // would be masked once we own the lock.
                            self.extend()?;
                            continue;
                        }
                        if self.th.rt().locks().try_acquire(idx, self.th.slot(), v) {
                            self.lock_set.push((idx, v));
                            self.owned.insert(idx);
                            break;
                        }
                        // CAS raced; re-probe.
                    }
                }
            }
        }
        self.write_set.insert(addr.0, value);
        Ok(())
    }

    /// Transactional load of `buf.len()` bytes at any alignment.
    ///
    /// # Errors
    /// [`TxAbort::Conflict`] on a lost conflict.
    pub fn read_bytes(&mut self, addr: VAddr, buf: &mut [u8]) -> Result<(), TxAbort> {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr.add(off as u64);
            let word_base = VAddr(a.0 & !7);
            let start = (a.0 % 8) as usize;
            let n = (8 - start).min(buf.len() - off);
            let w = self.read_u64(word_base)?;
            buf[off..off + n].copy_from_slice(&w.to_le_bytes()[start..start + n]);
            off += n;
        }
        Ok(())
    }

    /// Transactional store of `data` at any alignment (read-modify-write
    /// on partially covered words).
    ///
    /// # Errors
    /// [`TxAbort::Conflict`] on a lost conflict.
    pub fn write_bytes(&mut self, addr: VAddr, data: &[u8]) -> Result<(), TxAbort> {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr.add(off as u64);
            let word_base = VAddr(a.0 & !7);
            let start = (a.0 % 8) as usize;
            let n = (8 - start).min(data.len() - off);
            let w = if n == 8 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&data[off..off + 8]);
                u64::from_le_bytes(b)
            } else {
                let mut b = self.read_u64(word_base)?.to_le_bytes();
                b[start..start + n].copy_from_slice(&data[off..off + n]);
                u64::from_le_bytes(b)
            };
            self.write_u64(word_base, w)?;
            off += n;
        }
        Ok(())
    }

    /// Allocates persistent memory inside the transaction. The block is
    /// released again if the transaction aborts; the caller must store the
    /// returned address into persistent memory *transactionally* (that
    /// write is what anchors it, cf. Figure 3's `pmalloc(&bucket, …)`).
    ///
    /// # Errors
    /// [`TxAbort::Heap`] if the heap is exhausted or absent.
    pub fn pmalloc(&mut self, size: u64) -> Result<VAddr, TxAbort> {
        let heap = self
            .th
            .rt()
            .heap()
            .ok_or_else(|| TxAbort::Heap("no heap attached to runtime".into()))?;
        let addr = heap.pmalloc_unanchored(size)?;
        self.allocs.push(addr);
        Ok(addr)
    }

    /// Frees a heap block when (and only when) this transaction commits.
    pub fn pfree(&mut self, addr: VAddr) {
        self.frees.push(addr);
    }

    /// Explicitly cancels the transaction: return
    /// `Err(tx.cancel())` from the closure; the runtime rolls back and
    /// does not retry.
    pub fn cancel(&self) -> TxAbort {
        TxAbort::Cancelled
    }

    /// Number of buffered word writes (diagnostics; drives the write-set
    /// costs analysed in §6.3).
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }
}
