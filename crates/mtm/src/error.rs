//! Transaction error types.

use std::fmt;

use mnemosyne_pheap::HeapError;
use mnemosyne_rawl::LogError;
use mnemosyne_region::RegionError;

/// Why a transaction attempt could not proceed. Returned by [`crate::Tx`]
/// accessors; propagate it with `?` — the retry loop in
/// [`crate::TxThread::atomic`] handles conflicts.
#[derive(Debug, Clone, PartialEq)]
pub enum TxAbort {
    /// Lost a conflict (lock held by another transaction or a version
    /// moved). The runtime retries the transaction.
    Conflict,
    /// The program explicitly cancelled the transaction; no retry.
    Cancelled,
    /// A heap operation inside the transaction failed; no retry.
    Heap(String),
    /// The thread's redo log failed permanently (oversized transaction or
    /// a poisoned/corrupt log); no retry — the same append would fail
    /// again.
    Log(LogError),
}

impl fmt::Display for TxAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxAbort::Conflict => write!(f, "transaction conflict"),
            TxAbort::Cancelled => write!(f, "transaction cancelled"),
            TxAbort::Heap(e) => write!(f, "heap failure in transaction: {e}"),
            TxAbort::Log(e) => write!(f, "redo log failure in transaction: {e}"),
        }
    }
}

impl std::error::Error for TxAbort {}

impl From<HeapError> for TxAbort {
    fn from(e: HeapError) -> Self {
        TxAbort::Heap(e.to_string())
    }
}

/// Errors surfaced by the transaction runtime itself.
#[derive(Debug)]
pub enum TxError {
    /// The program cancelled the transaction via [`crate::Tx::cancel`].
    Cancelled,
    /// A heap operation inside the transaction failed.
    Heap(String),
    /// Setting up logs/regions failed.
    Region(RegionError),
    /// The per-thread redo log failed (e.g. a single transaction larger
    /// than the whole log).
    Log(LogError),
    /// All transaction-thread slots are in use.
    NoThreadSlots,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Cancelled => write!(f, "transaction cancelled"),
            TxError::Heap(e) => write!(f, "heap failure in transaction: {e}"),
            TxError::Region(e) => write!(f, "region error: {e}"),
            TxError::Log(e) => write!(f, "redo log error: {e}"),
            TxError::NoThreadSlots => write!(f, "no free transaction-thread slots"),
        }
    }
}

impl std::error::Error for TxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxError::Region(e) => Some(e),
            TxError::Log(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegionError> for TxError {
    fn from(e: RegionError) -> Self {
        TxError::Region(e)
    }
}

impl From<LogError> for TxError {
    fn from(e: LogError) -> Self {
        TxError::Log(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(TxAbort::Conflict.to_string(), "transaction conflict");
        assert_eq!(
            TxError::NoThreadSlots.to_string(),
            "no free transaction-thread slots"
        );
    }
}
