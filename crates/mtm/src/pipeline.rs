//! Commit pipelining: cross-thread fence batching for the synchronous
//! commit path.
//!
//! A synchronous commit forces its modified cache lines to SCM with
//! `flush` (which writes each dirty line to media immediately in the
//! emulator's model, as CLWB does architecturally once the line reaches
//! the memory controller) and then issues one `fence` for ordering. The
//! fence is the expensive part — it serialises on the modelled write
//! latency — and, crucially, commits with **disjoint working sets** do
//! not need one fence *each*: a single fence issued after all of their
//! flushes covers every one of them.
//!
//! [`GroupFence`] exploits that. A committing thread takes a ticket
//! *after* its flushes are done, then either becomes the **leader**
//! (issues one fence covering every ticket taken so far) or
//! **piggybacks** on a fence some other leader is about to issue. Under
//! contention-free multiprogramming this collapses N fences into ~1 per
//! commit group; a single thread degenerates to exactly one fence per
//! commit, same as before.
//!
//! What this must NOT be used for: the redo-log append fence. Log
//! appends go through the per-thread write-combining buffer, and a fence
//! only drains the **issuing** handle's buffer — another thread's fence
//! would not make our log records durable. The log fence therefore stays
//! per-thread ([`TornbitLog::flush_unpublished`]); only the post-
//! writeback data fence — whose lines were already pushed to media by
//! `flush` — is group-batched.
//!
//! [`TornbitLog::flush_unpublished`]: mnemosyne_rawl::TornbitLog::flush_unpublished

use std::sync::atomic::Ordering;

use mnemosyne_obs::PaddedAtomicU64;
use mnemosyne_region::PMem;
use parking_lot::Mutex;

/// Outcome of [`GroupFence::cover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Covered {
    /// This thread issued the fence (and covered any concurrent tickets).
    Leader,
    /// Another thread's fence covered this ticket.
    Piggybacked,
}

/// A ticket-based fence combiner.
///
/// `requested` counts tickets ever taken; `covered` is the highest ticket
/// known to be ordered behind an issued fence. A caller whose ticket is
/// ≤ `covered` is done; otherwise it races for the leader lock and fences
/// on behalf of everyone whose ticket it observed.
pub(crate) struct GroupFence {
    requested: PaddedAtomicU64,
    covered: PaddedAtomicU64,
    leader: Mutex<()>,
}

impl GroupFence {
    pub(crate) fn new() -> GroupFence {
        GroupFence {
            requested: PaddedAtomicU64::new(0),
            covered: PaddedAtomicU64::new(0),
            leader: Mutex::new(()),
        }
    }

    /// Orders every flush this thread has issued behind a fence — its own
    /// or a concurrent leader's. Returns whether this call issued the
    /// fence.
    ///
    /// The caller must have completed all `flush` calls it wants covered
    /// *before* taking this ticket; the leader reads `requested` before
    /// fencing, so any ticket it observes has its flushes already on
    /// media.
    pub(crate) fn cover(&self, pmem: &PMem) -> Covered {
        let ticket = self.requested.fetch_add(1, Ordering::AcqRel) + 1;
        loop {
            if self.covered.load(Ordering::Acquire) >= ticket {
                return Covered::Piggybacked;
            }
            if let Some(_leader) = self.leader.try_lock() {
                if self.covered.load(Ordering::Acquire) >= ticket {
                    return Covered::Piggybacked;
                }
                // Cover every ticket taken up to now, not just our own:
                // those threads' flushes happened before their ticket, so
                // one fence orders all of them.
                let target = self.requested.load(Ordering::Acquire);
                pmem.fence();
                self.covered.fetch_max(target, Ordering::AcqRel);
                return Covered::Leader;
            }
            // A leader is fencing; in crash tests it may die at that
            // fence, so poll for the injected crash rather than spin
            // forever.
            pmem.poll_crash();
            std::hint::spin_loop();
        }
    }
}

impl std::fmt::Debug for GroupFence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupFence")
            .field("requested", &self.requested.load(Ordering::Relaxed))
            .field("covered", &self.covered.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::{Arc, Barrier};

    use mnemosyne_region::{RegionManager, Regions};
    use mnemosyne_scm::{ScmConfig, ScmSim};

    use super::*;

    fn boot() -> (ScmSim, Regions, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("mtm-gf-{}-{:x}", std::process::id(), dir_nonce()));
        std::fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(8 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let (regions, _) = Regions::open(&mgr, 4096).unwrap();
        (sim, regions, dir)
    }

    fn dir_nonce() -> u64 {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0x5eed);
        N.fetch_add(0x9E37_79B9, Ordering::Relaxed)
    }

    #[test]
    fn single_thread_is_one_fence_per_cover() {
        let (sim, regions, dir) = boot();
        let gf = GroupFence::new();
        let pmem = regions.pmem_handle();
        let before = sim.stats().fences;
        assert_eq!(gf.cover(&pmem), Covered::Leader);
        assert_eq!(gf.cover(&pmem), Covered::Leader);
        assert_eq!(sim.stats().fences - before, 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn concurrent_covers_never_outnumber_fences_or_lose_tickets() {
        let (sim, regions, dir) = boot();
        let gf = Arc::new(GroupFence::new());
        let threads = 8;
        let rounds = 50;
        let barrier = Arc::new(Barrier::new(threads));
        let before = sim.stats().fences;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let gf = Arc::clone(&gf);
                let barrier = Arc::clone(&barrier);
                let pmem = regions.pmem_handle();
                std::thread::spawn(move || {
                    let mut led = 0u64;
                    for _ in 0..rounds {
                        barrier.wait();
                        if gf.cover(&pmem) == Covered::Leader {
                            led += 1;
                        }
                    }
                    led
                })
            })
            .collect();
        let led: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let fences = sim.stats().fences - before;
        let covers = (threads * rounds) as u64;
        assert_eq!(fences, led, "every fence has exactly one leader");
        assert!(fences <= covers, "never more fences than covers");
        assert!(
            gf.covered.load(Ordering::Relaxed) >= gf.requested.load(Ordering::Relaxed),
            "every ticket ends up covered"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    /// Deterministic piggybacking (a single-core scheduler may never
    /// overlap covers naturally): hold the leader lock so waiters pile
    /// up, cover them all with one fence, and check every one of them
    /// reports piggybacked.
    #[test]
    fn pending_tickets_are_covered_by_one_fence() {
        let (sim, regions, dir) = boot();
        let gf = Arc::new(GroupFence::new());
        let guard = gf.leader.lock();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gf = Arc::clone(&gf);
                let pmem = regions.pmem_handle();
                std::thread::spawn(move || gf.cover(&pmem))
            })
            .collect();
        while gf.requested.load(Ordering::Acquire) < 4 {
            std::thread::yield_now();
        }
        // Act as the commit-group leader on the waiters' behalf.
        let before = sim.stats().fences;
        let target = gf.requested.load(Ordering::Acquire);
        regions.pmem_handle().fence();
        gf.covered.fetch_max(target, Ordering::AcqRel);
        drop(guard);
        for h in handles {
            assert_eq!(h.join().unwrap(), Covered::Piggybacked);
        }
        assert_eq!(sim.stats().fences - before, 1, "one fence covered all four");
        std::fs::remove_dir_all(dir).ok();
    }
}
