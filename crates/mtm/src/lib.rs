//! libmtm — durable memory transactions (§5 of the Mnemosyne paper).
//!
//! Durable transactions make **in-place updates** of arbitrary persistent
//! data structures atomic, durable and isolated. The design follows the
//! paper exactly:
//!
//! * a word-based software transactional memory derived from TinySTM with
//!   **lazy version management**: new values are buffered volatile-side
//!   during the transaction and published at commit;
//! * **write-ahead redo logging**: at commit, `(address, value)` pairs are
//!   appended to a per-thread tornbit RAWL and made durable with a single
//!   fence — the only ordering requirement redo logging leaves is
//!   *log-before-data* (§5 "Discussion");
//! * **eager conflict detection** with encounter-time locking over a
//!   global array of volatile versioned locks;
//! * a **global timestamp counter** captures a total commit order that
//!   recovery uses to replay committed-but-unflushed transactions from all
//!   per-thread logs in the right order;
//! * **synchronous** or **asynchronous** log truncation: either the
//!   committing thread flushes modified lines and truncates immediately,
//!   or a log-manager thread drains logs off the critical path (§5,
//!   Figure 6).
//!
//! The paper uses Intel's STM compiler to instrument `atomic { … }`
//! blocks; the Rust analogue is a closure receiving a [`Tx`] through which
//! all persistent reads and writes flow:
//!
//! ```
//! # use mnemosyne_scm::{ScmSim, ScmConfig};
//! # use mnemosyne_region::{RegionManager, Regions};
//! # use mnemosyne_mtm::{MtmRuntime, MtmConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("mtm-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir)?;
//! # let sim = ScmSim::new(ScmConfig::for_testing(16 << 20));
//! # let mgr = RegionManager::boot(&sim, &dir)?;
//! # let (regions, pmem) = Regions::open(&mgr, 1 << 16)?;
//! # let regions = std::sync::Arc::new(regions);
//! let rt = MtmRuntime::open(&regions, MtmConfig::default())?;
//! let mut thread = rt.register_thread()?;
//! let (counter, _) = regions.static_area();
//!
//! thread.atomic(|tx| {
//!     let v = tx.read_u64(counter)?;
//!     tx.write_u64(counter, v + 1)?;
//!     Ok(())
//! })?;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod gclock;
pub mod locks;
mod pipeline;
pub mod runtime;
pub mod tx;

pub use error::{TxAbort, TxError};
pub use runtime::{
    CkptStats, MtmConfig, MtmRuntime, MtmStats, RecoveryStats, Truncation, TxThread,
};
pub use tx::Tx;
