//! The transaction runtime: per-thread redo logs, commit/abort, recovery,
//! and synchronous or asynchronous log truncation (§5).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use mnemosyne_obs::{Counter, Histogram, MaxGauge, Telemetry, Unit};
use mnemosyne_pheap::PHeap;
use mnemosyne_rawl::{LogError, LogTruncator, TornbitLog, LOG_HEADER_BYTES};
use mnemosyne_region::{PMem, Regions, VAddr};
use mnemosyne_scm::EmulationMode;

use crate::error::{TxAbort, TxError};
use crate::gclock::GlobalClock;
use crate::locks::LockTable;
use crate::pipeline::{Covered, GroupFence};
use crate::tx::Tx;

/// When the redo log of a committed transaction is truncated (§5
/// "Transaction log").
///
/// ```
/// # use mnemosyne_scm::{ScmSim, ScmConfig};
/// # use mnemosyne_region::{RegionManager, Regions};
/// # use mnemosyne_mtm::{MtmRuntime, MtmConfig, Truncation};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let dir = std::env::temp_dir().join(format!("mtm-doc-trunc-{}", std::process::id()));
/// # std::fs::create_dir_all(&dir)?;
/// # let sim = ScmSim::new(ScmConfig::for_testing(16 << 20));
/// # let mgr = RegionManager::boot(&sim, &dir)?;
/// # let (regions, _pmem) = Regions::open(&mgr, 1 << 16)?;
/// # let regions = std::sync::Arc::new(regions);
/// // Async mode starts a log-manager thread that drains commit records
/// // off the critical path; Sync (the default) truncates inline.
/// let rt = MtmRuntime::open(&regions, MtmConfig::default().with_truncation(Truncation::Async))?;
/// let (cell, _) = regions.static_area();
/// let mut th = rt.register_thread()?;
/// th.atomic(|tx| tx.write_u64(cell, 7))?;
/// drop(th);
/// drop(rt); // stops the manager after a final graceful drain
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Truncation {
    /// Commit flushes every modified cache line and truncates immediately:
    /// bounded log, longer commit latency.
    #[default]
    Sync,
    /// A log-manager thread drains logs off the critical path: shorter
    /// commits, but threads stall when the log fills faster than the
    /// manager drains it (Figure 6 measures both regimes).
    Async,
}

/// Configuration for [`MtmRuntime::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtmConfig {
    /// Maximum concurrently registered transaction threads (one redo log
    /// each).
    pub max_threads: usize,
    /// Capacity of each per-thread redo log, in words.
    pub log_words: u64,
    /// Slots in the global versioned-lock table.
    pub lock_table_size: usize,
    /// Truncation regime.
    pub truncation: Truncation,
    /// Region-name prefix for the logs.
    pub name_prefix: String,
    /// Batch the post-writeback data fence across concurrently committing
    /// threads (commit pipelining). A single thread still issues exactly
    /// one fence per commit; disabling this forces a private fence even
    /// under concurrency (useful for A/B measurements).
    pub group_commit: bool,
    /// Synchronous-mode log occupancy (percent of capacity) above which a
    /// commit truncates its log to the durable watermark. `0` truncates
    /// every commit (the pre-pipelining behaviour); higher values
    /// amortise the truncation fence over many commits, leaving committed
    /// records in the log — harmless, since recovery replay is
    /// idempotent.
    pub sync_truncate_pct: u8,
    /// Bounded-backoff patience: how many escalating waits a transaction
    /// spends on a foreign-owned lock before aborting. `0` restores raw
    /// abort-on-conflict.
    pub max_lock_waits: u32,
    /// Worker threads for parallel log replay at open. `0` (the default)
    /// resolves to `MNEMOSYNE_RECOVERY_THREADS` or the host parallelism,
    /// clamped to `[1, max_threads]`.
    pub recovery_threads: usize,
}

impl Default for MtmConfig {
    fn default() -> Self {
        MtmConfig {
            max_threads: 8,
            log_words: 1 << 15,
            lock_table_size: 1 << 20,
            truncation: Truncation::Sync,
            name_prefix: "mtm".to_string(),
            group_commit: true,
            sync_truncate_pct: 50,
            max_lock_waits: 6,
            recovery_threads: 0,
        }
    }
}

impl MtmConfig {
    /// Overrides the truncation regime.
    pub fn with_truncation(mut self, t: Truncation) -> Self {
        self.truncation = t;
        self
    }

    /// Overrides the thread-slot count.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Enables or disables cross-thread commit-fence batching.
    pub fn with_group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    /// Overrides the synchronous watermark-truncation threshold (percent
    /// of log capacity; `0` = truncate every commit).
    pub fn with_sync_truncate_pct(mut self, pct: u8) -> Self {
        self.sync_truncate_pct = pct.min(90);
        self
    }

    /// Overrides the bounded-backoff patience on contended locks.
    pub fn with_max_lock_waits(mut self, waits: u32) -> Self {
        self.max_lock_waits = waits;
        self
    }

    /// Overrides the parallel-recovery worker count (`0` = auto).
    pub fn with_recovery_threads(mut self, n: usize) -> Self {
        self.recovery_threads = n;
        self
    }

    /// The effective recovery worker count: the explicit setting, else the
    /// `MNEMOSYNE_RECOVERY_THREADS` environment variable, else the host
    /// parallelism — always clamped to `[1, max_threads]` (there is one
    /// log per thread slot, so more workers than slots cannot help).
    pub fn resolve_recovery_threads(&self) -> usize {
        let n = if self.recovery_threads > 0 {
            self.recovery_threads
        } else {
            std::env::var("MNEMOSYNE_RECOVERY_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        };
        n.clamp(1, self.max_threads.max(1))
    }
}

/// Counters describing runtime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtmStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts (conflicts).
    pub aborts: u64,
    /// Transactions replayed from the logs at the last open.
    pub replayed: u64,
    /// Commits that stalled waiting for the asynchronous truncator to
    /// free log space (§5: "program threads may stall").
    pub stalls: u64,
}

/// What the last [`MtmRuntime::open`] had to do to restore the machine:
/// the measured side of the recovery SLO (the `recovery` bench reports
/// these figures per outstanding-log size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed-but-unflushed transactions replayed from the redo logs.
    pub replayed: u64,
    /// Live log words scanned across all thread slots (the outstanding
    /// log the previous incarnation left behind).
    pub scanned_words: u64,
    /// Critical-path time of the scan + replay phases: the max over the
    /// parallel workers, in the emulator's virtual time domain when the
    /// virtual clock is on, wall time otherwise.
    pub replay_ns: u64,
    /// Worker threads the replay actually used.
    pub threads: usize,
}

/// Result of one [`MtmRuntime::checkpoint`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptStats {
    /// Log words durably reclaimed (redo logs plus allocator logs).
    pub reclaimed_words: u64,
    /// Outstanding redo-log words when the checkpoint started.
    pub outstanding_before: u64,
    /// Outstanding redo-log words when it finished (bounded by whatever
    /// commits raced the pass).
    pub outstanding_after: u64,
}

/// `mtm.*` telemetry registered in the machine's registry. The runtime
/// keeps its own [`MtmStats`] atomics for instance-local queries; these
/// registry handles carry the same events into the machine-wide
/// snapshot, plus the per-phase commit-latency attribution the paper's
/// Figures 4–6 are about.
pub(crate) struct MtmMetrics {
    /// Transaction attempts ([`Tx::begin`] calls, including conflict
    /// retries). Identity: `tx_begins == commits + aborts`.
    pub(crate) tx_begins: Counter,
    pub(crate) commits: Counter,
    pub(crate) aborts: Counter,
    pub(crate) replayed: Counter,
    pub(crate) truncation_stalls: Counter,
    /// Time a committing thread spent waiting for log space (async mode).
    pub(crate) stall_ns: Histogram,
    /// End-to-end commit latency (update transactions only).
    pub(crate) commit_ns: Histogram,
    /// Commit phase: read-set validation.
    pub(crate) validate_ns: Histogram,
    /// Commit phase: building + appending + fencing the redo record.
    pub(crate) log_ns: Histogram,
    /// Commit phase: writing buffered values back to their home locations.
    pub(crate) writeback_ns: Histogram,
    /// Commit phase: synchronous flush + fence + truncate (sync mode).
    pub(crate) truncate_ns: Histogram,
    /// Encounter-time probes that found the lock foreign-owned (one per
    /// conflict episode, not per backoff round).
    pub(crate) lock_conflicts: Counter,
    /// Conflict episodes that exhausted bounded backoff and aborted.
    /// Identity: `lock_conflicts - conflict_aborts` = episodes resolved
    /// by waiting.
    pub(crate) conflict_aborts: Counter,
    /// Spin counts chosen by adaptive backoff (per wait round; also
    /// records the inter-attempt backoff of the `atomic` retry loop).
    pub(crate) backoff_spins: Histogram,
    /// Group data fences issued by commit-group leaders (sync mode).
    pub(crate) group_fences: Counter,
    /// Commits whose data fence was covered by another thread's group
    /// fence. Identity: `group_fences + piggybacked_commits` = sync
    /// update commits when group commit is enabled.
    pub(crate) piggybacked_commits: Counter,
    /// Watermark (incremental) truncations: sync commits that truncated
    /// their log up to the durable watermark instead of every commit
    /// dropping the whole log.
    pub(crate) wm_truncations: Counter,
    /// Checkpoints completed ([`MtmRuntime::checkpoint`]).
    pub(crate) ckpt_runs: Counter,
    /// Log words reclaimed by checkpoints (redo + allocator logs).
    pub(crate) ckpt_words: Counter,
    /// High-water mark of outstanding redo-log words observed at
    /// checkpoint entry — flat under a healthy checkpoint cadence.
    pub(crate) ckpt_outstanding_hwm: MaxGauge,
    /// Per-checkpoint duration (virtual ns when the clock is emulated).
    pub(crate) ckpt_ns: Histogram,
    /// Worst log-replay time measured at open, in milliseconds — the
    /// recovery SLO gauge the `recovery` bench drills into.
    pub(crate) replay_ms: MaxGauge,
}

impl MtmMetrics {
    fn new(telemetry: &Telemetry) -> MtmMetrics {
        MtmMetrics {
            tx_begins: telemetry.counter("mtm.tx_begins", Unit::Count),
            commits: telemetry.counter("mtm.commits", Unit::Count),
            aborts: telemetry.counter("mtm.aborts", Unit::Count),
            replayed: telemetry.counter("mtm.replayed", Unit::Count),
            truncation_stalls: telemetry.counter("mtm.truncation_stalls", Unit::Count),
            stall_ns: telemetry.histogram("mtm.stall_ns", Unit::Nanoseconds),
            commit_ns: telemetry.histogram("mtm.commit_ns", Unit::Nanoseconds),
            validate_ns: telemetry.histogram("mtm.commit.validate_ns", Unit::Nanoseconds),
            log_ns: telemetry.histogram("mtm.commit.log_ns", Unit::Nanoseconds),
            writeback_ns: telemetry.histogram("mtm.commit.writeback_ns", Unit::Nanoseconds),
            truncate_ns: telemetry.histogram("mtm.commit.truncate_ns", Unit::Nanoseconds),
            lock_conflicts: telemetry.counter("mtm.lock_conflicts", Unit::Count),
            conflict_aborts: telemetry.counter("mtm.conflict_aborts", Unit::Count),
            backoff_spins: telemetry.histogram("mtm.backoff_spins", Unit::Count),
            group_fences: telemetry.counter("mtm.group_fences", Unit::Count),
            piggybacked_commits: telemetry.counter("mtm.piggybacked_commits", Unit::Count),
            wm_truncations: telemetry.counter("mtm.wm_truncations", Unit::Count),
            ckpt_runs: telemetry.counter("mtm.ckpt.runs", Unit::Count),
            ckpt_words: telemetry.counter("mtm.ckpt.words", Unit::Words),
            ckpt_outstanding_hwm: telemetry.max_gauge("mtm.ckpt.outstanding_hwm", Unit::Words),
            ckpt_ns: telemetry.histogram("mtm.ckpt.run_ns", Unit::Nanoseconds),
            replay_ms: telemetry.max_gauge("recovery.replay_ms", Unit::Milliseconds),
        }
    }
}

/// Measures one commit phase in the handle's time domain: the SCM
/// emulator's virtual clock under [`EmulationMode::Virtual`] (so the
/// attribution matches the modelled latencies, not host noise), the wall
/// clock otherwise.
struct PhaseTimer {
    wall: Instant,
    accounted: u64,
}

impl PhaseTimer {
    fn start(pmem: &PMem) -> PhaseTimer {
        PhaseTimer {
            wall: Instant::now(),
            accounted: pmem.accounted_ns(),
        }
    }

    fn stop(&self, pmem: &PMem) -> u64 {
        if pmem.mode() == EmulationMode::Virtual {
            pmem.accounted_ns().saturating_sub(self.accounted)
        } else {
            self.wall.elapsed().as_nanos() as u64
        }
    }
}

struct ManagerHandle {
    stop: Arc<AtomicBool>,
    /// When set, the manager exits without its final drain sweep — used by
    /// [`MtmRuntime::kill`] to model abrupt process death in crash tests.
    hard: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

/// Consumer-side state shared by everything that truncates logs from
/// outside the owning transaction thread: the async log manager and
/// [`MtmRuntime::checkpoint`]. The mutex is the serialization point — a
/// checkpoint and a manager pass never interleave on the same log.
struct CkptShared {
    truncators: Mutex<Vec<LogTruncator>>,
}

/// The durable-transaction runtime. Create once per process with
/// [`MtmRuntime::open`]; hand each worker a [`TxThread`] via
/// [`MtmRuntime::register_thread`].
///
/// Opening replays any committed-but-unwritten-back transactions left in
/// the per-thread redo logs, so a value committed before a crash is
/// visible after reopening:
///
/// ```
/// # use mnemosyne_scm::{ScmSim, ScmConfig};
/// # use mnemosyne_region::{RegionManager, Regions};
/// # use mnemosyne_mtm::{MtmRuntime, MtmConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let dir = std::env::temp_dir().join(format!("mtm-doc-rt-{}", std::process::id()));
/// # std::fs::create_dir_all(&dir)?;
/// # let sim = ScmSim::new(ScmConfig::for_testing(16 << 20));
/// # let mgr = RegionManager::boot(&sim, &dir)?;
/// # let (regions, _pmem) = Regions::open(&mgr, 1 << 16)?;
/// # let regions = std::sync::Arc::new(regions);
/// let rt = MtmRuntime::open(&regions, MtmConfig::default())?;
/// let (cell, _) = regions.static_area();
///
/// let mut th = rt.register_thread()?;
/// th.atomic(|tx| tx.write_u64(cell, 42))?;
/// assert_eq!(rt.stats().commits, 1);
/// drop(th);
/// drop(rt);
///
/// // Reopen over the same regions: recovery runs, committed state holds.
/// let rt = MtmRuntime::open(&regions, MtmConfig::default())?;
/// let mut th = rt.register_thread()?;
/// let v = th.atomic(|tx| tx.read_u64(cell))?;
/// assert_eq!(v, 42);
/// # drop(th);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
pub struct MtmRuntime {
    clock: GlobalClock,
    locks: LockTable,
    regions: Arc<Regions>,
    heap: RwLock<Option<Arc<PHeap>>>,
    slots: Mutex<Vec<Option<TornbitLog>>>,
    truncation: Truncation,
    group_commit: bool,
    sync_truncate_pct: u8,
    max_lock_waits: u32,
    group_fence: GroupFence,
    commits: AtomicU64,
    aborts: AtomicU64,
    replayed: AtomicU64,
    stalls: AtomicU64,
    metrics: MtmMetrics,
    manager: Mutex<Option<ManagerHandle>>,
    ckpt: Arc<CkptShared>,
    recovery: RecoveryStats,
}

impl std::fmt::Debug for MtmRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MtmRuntime")
            .field("truncation", &self.truncation)
            .field("stats", &self.stats())
            .finish()
    }
}

impl MtmRuntime {
    /// Opens the runtime: maps (or creates) one redo-log region per thread
    /// slot, **replays** committed-but-unflushed transactions from all
    /// logs in global-timestamp order, truncates the logs, and (in async
    /// mode) starts the log-manager thread.
    ///
    /// # Errors
    /// Fails on region exhaustion or corrupt logs.
    pub fn open(regions: &Arc<Regions>, config: MtmConfig) -> Result<Arc<MtmRuntime>, TxError> {
        let pmem = regions.pmem_handle();
        let threads = config.resolve_recovery_threads();

        // Map every slot's log region first (the region table is one
        // shared structure); the per-log scans below then touch disjoint
        // regions and can run in parallel.
        let mut bases = Vec::with_capacity(config.max_threads);
        for i in 0..config.max_threads {
            let name = format!("{}.log{}", config.name_prefix, i);
            let r = regions.pmap(&name, LOG_HEADER_BYTES + config.log_words * 8, &pmem)?;
            bases.push(r.addr);
        }

        let wall = Instant::now();
        let log_words = config.log_words;

        // Phase 1 — parallel scan: torn-bit scan, record decode, and tail
        // sanitisation of each slot's log, round-robin over the workers so
        // populated logs spread evenly. Joined explicitly: a simulated
        // crash fired inside a worker must resurface with its payload
        // intact (the crash-sweep harness matches on it).
        let nscan = threads.min(bases.len().max(1));
        let mut work: Vec<Vec<(usize, VAddr, PMem)>> = (0..nscan).map(|_| Vec::new()).collect();
        for (i, &base) in bases.iter().enumerate() {
            work[i % nscan].push((i, base, regions.pmem_handle()));
        }
        type Scanned = (Vec<(usize, TornbitLog, Vec<Vec<u64>>)>, u64);
        let joined: Vec<std::thread::Result<Result<Scanned, LogError>>> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|batch| {
                    s.spawn(move || -> Result<Scanned, LogError> {
                        let mut out = Vec::with_capacity(batch.len());
                        let mut busy = 0u64;
                        for (i, base, hp) in batch {
                            let timer = PhaseTimer::start(&hp);
                            let (log, records) = if TornbitLog::exists(&hp, base) {
                                TornbitLog::recover(hp, base)?
                            } else {
                                (TornbitLog::create(hp, base, log_words)?, Vec::new())
                            };
                            busy += timer.stop(log.pmem());
                            out.push((i, log, records));
                        }
                        Ok((out, busy))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut per_slot: Vec<Option<(TornbitLog, Vec<Vec<u64>>)>> =
            (0..bases.len()).map(|_| None).collect();
        let mut scan_ns = 0u64;
        let mut first_panic = None;
        let mut first_err = None;
        for j in joined {
            match j {
                Ok(Ok((out, busy))) => {
                    scan_ns = scan_ns.max(busy);
                    for (i, log, records) in out {
                        per_slot[i] = Some((log, records));
                    }
                }
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(payload) => first_panic = first_panic.or(Some(payload)),
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        if let Some(e) = first_err {
            return Err(TxError::Log(e));
        }

        // Merge in slot order (deterministic), validating each record.
        let mut logs = Vec::with_capacity(bases.len());
        let mut pending: Vec<(u64, Vec<(VAddr, u64)>)> = Vec::new();
        let mut scanned_words = 0u64;
        for entry in per_slot {
            let (log, records) = entry.expect("every slot scanned");
            scanned_words += log.len_words();
            for rec in records {
                // Redo records are [ts, (addr,val)*]. Every record is
                // checksum-verified by recovery, so a structurally
                // malformed one means corruption slipped past the
                // media-level checks — refuse to replay it.
                if rec.is_empty() || rec.len() % 2 == 0 {
                    return Err(TxError::Log(LogError::Corrupt {
                        position: 0,
                        detail: "malformed redo record in recovered log",
                    }));
                }
                let ts = rec[0];
                let writes = rec[1..]
                    .chunks_exact(2)
                    .map(|c| (VAddr(c[0]), c[1]))
                    .collect();
                pending.push((ts, writes));
            }
            logs.push(log);
        }

        // Phase 2 — parallel replay of committed transactions (§5
        // recovery). The flattened write stream is walked in global
        // timestamp order and partitioned by target *cache line*: writes
        // to one address always land in one partition in timestamp
        // order, so the parallel apply is write-for-write equivalent to
        // the serial one — and the line granularity keeps each flushed
        // line owned by exactly one worker, so the flush traffic
        // actually divides instead of every worker touching every line.
        // Each worker stores its partition, flushes the lines, and
        // fences once.
        pending.sort_by_key(|&(ts, _)| ts);
        let replayed = pending.len() as u64;
        let mut parts: Vec<Vec<(VAddr, u64)>> = (0..threads).map(|_| Vec::new()).collect();
        for (_, writes) in &pending {
            for &(addr, val) in writes {
                parts[(addr.0 >> 6) as usize % threads].push((addr, val));
            }
        }
        let mut replay_ns = 0u64;
        if replayed > 0 {
            let joined: Vec<std::thread::Result<Result<u64, LogError>>> = std::thread::scope(|s| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .map(|part| {
                        let hp = regions.pmem_handle();
                        s.spawn(move || -> Result<u64, LogError> {
                            let timer = PhaseTimer::start(&hp);
                            for &(addr, _) in &part {
                                // A redo address outside every mapped
                                // region would be a segfault-analogue
                                // panic; surface it as typed corruption
                                // instead (the checksum passed, so the
                                // region table itself regressed —
                                // either way, don't crash).
                                if hp.try_translate(addr).is_err() {
                                    return Err(LogError::Corrupt {
                                        position: 0,
                                        detail: "redo record targets an unmapped address",
                                    });
                                }
                            }
                            for &(addr, val) in &part {
                                hp.store_u64(addr, val);
                            }
                            for &(addr, _) in &part {
                                hp.flush(addr);
                            }
                            hp.fence();
                            Ok(timer.stop(&hp))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            let mut first_panic = None;
            let mut first_err = None;
            for j in joined {
                match j {
                    Ok(Ok(busy)) => replay_ns = replay_ns.max(busy),
                    Ok(Err(e)) => first_err = first_err.or(Some(e)),
                    Err(payload) => first_panic = first_panic.or(Some(payload)),
                }
            }
            if let Some(p) = first_panic {
                std::panic::resume_unwind(p);
            }
            if let Some(e) = first_err {
                return Err(TxError::Log(e));
            }
        }
        for log in &mut logs {
            log.truncate_all();
        }

        // Critical-path recovery time: max over the parallel workers per
        // phase under the virtual clock, wall time otherwise.
        let total_ns = if pmem.mode() == EmulationMode::Virtual {
            scan_ns + replay_ns
        } else {
            wall.elapsed().as_nanos() as u64
        };
        let recovery = RecoveryStats {
            replayed,
            scanned_words,
            replay_ns: total_ns,
            threads,
        };

        let metrics = MtmMetrics::new(regions.telemetry());
        metrics.replayed.add(replayed);
        if replayed > 0 {
            metrics.replay_ms.record(total_ns.div_ceil(1_000_000));
        }
        // Every log gets a consumer handle up front: the checkpoint entry
        // point uses them in both regimes, and the async manager shares
        // the same set (the mutex serializes the two).
        let ckpt = Arc::new(CkptShared {
            truncators: Mutex::new(
                logs.iter()
                    .map(|log| log.truncator(regions.pmem_handle()))
                    .collect(),
            ),
        });

        let rt = Arc::new(MtmRuntime {
            clock: GlobalClock::new(),
            locks: LockTable::new(config.lock_table_size),
            regions: Arc::clone(regions),
            heap: RwLock::new(None),
            truncation: config.truncation,
            group_commit: config.group_commit,
            sync_truncate_pct: config.sync_truncate_pct.min(90),
            max_lock_waits: config.max_lock_waits,
            group_fence: GroupFence::new(),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            replayed: AtomicU64::new(replayed),
            stalls: AtomicU64::new(0),
            metrics,
            manager: Mutex::new(None),
            ckpt: Arc::clone(&ckpt),
            recovery,
            slots: Mutex::new(Vec::new()),
        });

        if config.truncation == Truncation::Async {
            let stop = Arc::new(AtomicBool::new(false));
            let hard = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let hard2 = Arc::clone(&hard);
            let join = std::thread::Builder::new()
                .name("mtm-log-manager".into())
                .spawn(move || log_manager(&ckpt, stop2, hard2))
                .expect("spawn log manager");
            *rt.manager.lock() = Some(ManagerHandle {
                stop,
                hard,
                join: Some(join),
            });
        }

        *rt.slots.lock() = logs.into_iter().map(Some).collect();
        Ok(rt)
    }

    /// Attaches a persistent heap so transactions can use
    /// [`Tx::pmalloc`]/[`Tx::pfree`].
    pub fn attach_heap(&self, heap: Arc<PHeap>) {
        *self.heap.write() = Some(heap);
    }

    /// The attached heap, if any.
    pub fn heap(&self) -> Option<Arc<PHeap>> {
        self.heap.read().clone()
    }

    /// Grows the attached heap's large-object area online (no restart) —
    /// the admin `GROW` verb's backend. See
    /// [`PHeap::grow`] for the crash-atomicity
    /// protocol.
    ///
    /// # Errors
    /// [`TxError::Heap`] if no heap is attached or the grow itself fails.
    pub fn grow_heap(&self, bytes: u64) -> Result<mnemosyne_pheap::GrowStats, TxError> {
        let heap = self
            .heap()
            .ok_or_else(|| TxError::Heap("no heap attached to this runtime".to_string()))?;
        heap.grow(&self.regions, bytes)
            .map_err(|e| TxError::Heap(e.to_string()))
    }

    /// Checks out a transaction-thread context (one per worker thread).
    /// The slot is returned when the [`TxThread`] drops.
    ///
    /// # Errors
    /// [`TxError::NoThreadSlots`] when `max_threads` contexts are live.
    pub fn register_thread(self: &Arc<Self>) -> Result<TxThread, TxError> {
        let mut slots = self.slots.lock();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_some() {
                return Ok(TxThread {
                    rt: Arc::clone(self),
                    slot: i,
                    log: slot.take(),
                    rng: 0x9E37_79B9 ^ (i as u64 + 1),
                });
            }
        }
        Err(TxError::NoThreadSlots)
    }

    /// Activity counters.
    pub fn stats(&self) -> MtmStats {
        MtmStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }

    /// The machine's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        self.regions.telemetry()
    }

    pub(crate) fn metrics(&self) -> &MtmMetrics {
        &self.metrics
    }

    /// The global commit clock.
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// The global versioned-lock table.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// The region registry this runtime operates on.
    pub fn regions(&self) -> &Arc<Regions> {
        &self.regions
    }

    /// The configured truncation regime.
    pub fn truncation(&self) -> Truncation {
        self.truncation
    }

    pub(crate) fn group_commit(&self) -> bool {
        self.group_commit
    }

    pub(crate) fn sync_truncate_pct(&self) -> u8 {
        self.sync_truncate_pct
    }

    pub(crate) fn max_lock_waits(&self) -> u32 {
        self.max_lock_waits
    }

    pub(crate) fn group_fence(&self) -> &GroupFence {
        &self.group_fence
    }

    /// Accounted busy time (ns) of each thread slot's log handle — the
    /// per-slot serial-resource time under the SCM emulator's virtual
    /// clock, mirroring [`PHeap::shard_busy_ns`]. Slots whose
    /// [`TxThread`] is currently checked out report 0; call this after
    /// workers have dropped their threads (as `txscale` does) for
    /// complete figures.
    ///
    /// [`PHeap::shard_busy_ns`]: mnemosyne_pheap::PHeap::shard_busy_ns
    pub fn slot_busy_ns(&self) -> Vec<u64> {
        self.slots
            .lock()
            .iter()
            .map(|s| s.as_ref().map_or(0, |log| log.pmem().accounted_ns()))
            .collect()
    }

    /// Parallel-recovery figures from the last [`MtmRuntime::open`].
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Redo-log words appended, fenced, and not yet truncated across all
    /// thread slots — what a crash right now would have to replay. The
    /// checkpointer's job is to keep this bounded.
    pub fn outstanding_log_words(&self) -> u64 {
        self.ckpt
            .truncators
            .lock()
            .iter()
            .map(|t| t.backlog_words())
            .sum()
    }

    /// Runs one checkpoint pass: quiesces each slot's durable watermark
    /// and truncates the redo logs down to it, then sweeps the attached
    /// heap's allocator logs. Safe to call from any thread, concurrently
    /// with committing transactions (truncation is serialized against the
    /// producers' own inline truncation and against the async manager).
    ///
    /// In the synchronous regime every commit publishes its data-durable
    /// watermark after the commit fence, so the pass is one word write
    /// plus one fence per non-empty log — no scanning. In the
    /// asynchronous regime the pass drains the logs exactly as the
    /// manager would (forcing each record's data lines out first).
    pub fn checkpoint(&self) -> CkptStats {
        let wall = Instant::now();
        let truncators = self.ckpt.truncators.lock();
        let virt = self.regions.pmem_handle().mode() == EmulationMode::Virtual;
        let busy_before: u64 = truncators.iter().map(|t| t.pmem().accounted_ns()).sum();
        let before: u64 = truncators.iter().map(|t| t.backlog_words()).sum();
        self.metrics.ckpt_outstanding_hwm.record(before);
        let mut words = 0u64;
        for t in truncators.iter() {
            if t.poisoned() {
                continue;
            }
            match self.truncation {
                Truncation::Sync => words += t.truncate_to_durable_watermark(),
                Truncation::Async => {
                    let head = t.head_pos();
                    let _ = t.drain_incremental(MANAGER_DRAIN_STEP, |rec| {
                        for pair in rec[1..].chunks_exact(2) {
                            t.pmem().flush(VAddr(pair[0]));
                        }
                    });
                    words += t.head_pos() - head;
                }
            }
        }
        let after: u64 = truncators.iter().map(|t| t.backlog_words()).sum();
        let busy_after: u64 = truncators.iter().map(|t| t.pmem().accounted_ns()).sum();
        drop(truncators);
        // Allocator logs truncate per-op and are almost always empty
        // already; the sweep turns "almost always" into a bound.
        if let Some(heap) = self.heap() {
            words += heap.checkpoint();
        }
        self.metrics.ckpt_runs.inc();
        self.metrics.ckpt_words.add(words);
        let ns = if virt {
            busy_after.saturating_sub(busy_before)
        } else {
            wall.elapsed().as_nanos() as u64
        };
        self.metrics.ckpt_ns.record(ns);
        CkptStats {
            reclaimed_words: words,
            outstanding_before: before,
            outstanding_after: after,
        }
    }

    /// Models abrupt process death for crash testing: stops the
    /// asynchronous log manager *without* its final drain sweep, so the
    /// runtime stops touching SCM from background threads. Call this
    /// before injecting a crash with
    /// [`mnemosyne_scm::ScmSim::crash`]; otherwise the "dead" process's
    /// manager thread may keep truncating logs after the failure point.
    pub fn kill(&self) {
        if let Some(mut m) = self.manager.lock().take() {
            m.hard.store(true, Ordering::Relaxed);
            m.stop.store(true, Ordering::Relaxed);
            if let Some(j) = m.join.take() {
                let _ = j.join();
            }
        }
    }
}

impl Drop for MtmRuntime {
    fn drop(&mut self) {
        if let Some(mut m) = self.manager.lock().take() {
            m.stop.store(true, Ordering::Relaxed);
            if let Some(j) = m.join.take() {
                let _ = j.join();
            }
        }
    }
}

/// Records consumed between intermediate truncations of one log-manager
/// drain pass. Small enough that a producer stalled on a full log sees
/// freed space after a bounded amount of manager work (instead of only
/// when the whole backlog has drained), large enough that the truncation
/// fence stays amortised.
const MANAGER_DRAIN_STEP: usize = 16;

/// The asynchronous log manager: drains every per-thread log, forcing the
/// values named by each record out to SCM before truncating (§5).
/// Truncation is incremental — every [`MANAGER_DRAIN_STEP`] records the
/// durable watermark advances, so producers stall for bounded time even
/// when a pass has a deep backlog.
fn log_manager(ckpt: &CkptShared, stop: Arc<AtomicBool>, hard: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        let mut drained = 0usize;
        {
            // The lock is shared with `MtmRuntime::checkpoint`; holding
            // it per pass (not across the idle sleep) lets a checkpoint
            // slot in between manager sweeps.
            let truncators = ckpt.truncators.lock();
            for t in truncators.iter() {
                if t.poisoned() {
                    continue; // corrupt log: producer gets the typed error
                }
                drained += t
                    .drain_incremental(MANAGER_DRAIN_STEP, |rec| {
                        // rec = [ts, (addr, val)*]; flush each written line.
                        for pair in rec[1..].chunks_exact(2) {
                            t.pmem().flush(VAddr(pair[0]));
                        }
                    })
                    .unwrap_or(0);
            }
        }
        if drained == 0 {
            std::thread::sleep(std::time::Duration::from_micros(20));
        }
    }
    if hard.load(Ordering::Relaxed) {
        return; // killed: model abrupt process death, no final sweep
    }
    // Graceful shutdown: final sweep so nothing is stranded.
    let truncators = ckpt.truncators.lock();
    for t in truncators.iter() {
        if t.poisoned() {
            continue;
        }
        let _ = t.drain(|rec| {
            for pair in rec[1..].chunks_exact(2) {
                t.pmem().flush(VAddr(pair[0]));
            }
        });
    }
}

/// A worker thread's transaction context: owns one per-thread redo log.
pub struct TxThread {
    rt: Arc<MtmRuntime>,
    slot: usize,
    log: Option<TornbitLog>,
    rng: u64,
}

impl std::fmt::Debug for TxThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxThread")
            .field("slot", &self.slot)
            .finish()
    }
}

impl Drop for TxThread {
    fn drop(&mut self) {
        if let Some(log) = self.log.take() {
            self.rt.slots.lock()[self.slot] = Some(log);
        }
    }
}

impl TxThread {
    pub(crate) fn rt(&self) -> &MtmRuntime {
        &self.rt
    }

    pub(crate) fn slot(&self) -> usize {
        self.slot
    }

    /// Next value of the thread-local xorshift-free LCG (used for
    /// randomised backoff).
    pub(crate) fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.rng
    }

    /// This thread's persistent-memory handle (shared with its log).
    pub fn pmem(&self) -> &PMem {
        self.log.as_ref().expect("log present").pmem()
    }

    fn log_mut(&mut self) -> &mut TornbitLog {
        self.log.as_mut().expect("log present")
    }

    /// Runs `body` as a durable memory transaction — the `atomic { … }`
    /// block of Table 3. The closure may run several times (conflict
    /// retry); all persistent access must go through the provided [`Tx`].
    ///
    /// Begin, read/write, and commit are all implicit: the transaction
    /// begins when the closure is entered and commits (redo append, one
    /// fence, write-back, data force) when it returns `Ok`. Returning
    /// [`Tx::cancel`] aborts with no visible effect:
    ///
    /// ```
    /// # use mnemosyne_scm::{ScmSim, ScmConfig};
    /// # use mnemosyne_region::{RegionManager, Regions};
    /// # use mnemosyne_mtm::{MtmRuntime, MtmConfig, TxError};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let dir = std::env::temp_dir().join(format!("mtm-doc-atomic-{}", std::process::id()));
    /// # std::fs::create_dir_all(&dir)?;
    /// # let sim = ScmSim::new(ScmConfig::for_testing(16 << 20));
    /// # let mgr = RegionManager::boot(&sim, &dir)?;
    /// # let (regions, _pmem) = Regions::open(&mgr, 1 << 16)?;
    /// # let regions = std::sync::Arc::new(regions);
    /// # let rt = MtmRuntime::open(&regions, MtmConfig::default())?;
    /// # let (cell, _) = regions.static_area();
    /// let mut th = rt.register_thread()?;
    ///
    /// // Read-modify-write, atomic and durable at the closure's Ok.
    /// let before = th.atomic(|tx| {
    ///     let v = tx.read_u64(cell)?;
    ///     tx.write_u64(cell, v + 1)?;
    ///     Ok(v)
    /// })?;
    /// assert_eq!(before, 0);
    ///
    /// // A cancelled transaction leaves no trace.
    /// let r: Result<(), TxError> = th.atomic(|tx| {
    ///     tx.write_u64(cell, 999)?;
    ///     Err(tx.cancel())
    /// });
    /// assert!(matches!(r, Err(TxError::Cancelled)));
    /// assert_eq!(th.atomic(|tx| tx.read_u64(cell))?, 1);
    /// # drop(th);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// [`TxError::Cancelled`] if the closure returned [`Tx::cancel`], or
    /// [`TxError::Heap`] if a heap operation inside the transaction
    /// failed. Conflicts are retried internally with randomised backoff.
    pub fn atomic<T>(
        &mut self,
        mut body: impl FnMut(&mut Tx<'_>) -> Result<T, TxAbort>,
    ) -> Result<T, TxError> {
        let mut attempt = 0u32;
        loop {
            let mut tx = Tx::begin(self);
            match body(&mut tx) {
                Ok(value) => match tx.commit() {
                    Ok(()) => return Ok(value),
                    Err(TxAbort::Conflict) => {}
                    Err(TxAbort::Cancelled) => return Err(TxError::Cancelled),
                    Err(TxAbort::Heap(e)) => return Err(TxError::Heap(e)),
                    Err(TxAbort::Log(e)) => return Err(TxError::Log(e)),
                },
                Err(TxAbort::Conflict) => tx.abort(),
                Err(TxAbort::Cancelled) => {
                    tx.abort();
                    return Err(TxError::Cancelled);
                }
                Err(TxAbort::Heap(e)) => {
                    tx.abort();
                    return Err(TxError::Heap(e));
                }
                Err(TxAbort::Log(e)) => {
                    tx.abort();
                    return Err(TxError::Log(e));
                }
            }
            // Conflict: randomised exponential backoff.
            attempt = (attempt + 1).min(10);
            let spins = self.next_rand() % (1u64 << attempt);
            self.rt.metrics().backoff_spins.record(spins);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            if attempt > 2 {
                // A conflict that survives two backoffs usually means the
                // lock owner lost the CPU mid-commit. When threads
                // outnumber cores, spinning harder starves the owner and
                // every retry aborts again — the whole pool livelocks
                // until the scheduler happens to run the owner. Donate
                // the timeslice instead so it can finish and release.
                std::thread::yield_now();
            }
        }
    }
}

impl Tx<'_> {
    /// Commit: validate reads, take a timestamp, make the redo record
    /// durable (one fence), write back, truncate per the configured
    /// regime, release locks.
    pub(crate) fn commit(mut self) -> Result<(), TxAbort> {
        if self.write_set.is_empty() && self.allocs.is_empty() && self.frees.is_empty() {
            // Read-only: reads were validated incrementally.
            self.release_locks_restoring();
            self.th.rt().commits.fetch_add(1, Ordering::Relaxed);
            self.th.rt().metrics().commits.inc();
            return Ok(());
        }
        let commit_timer = PhaseTimer::start(self.th.pmem());

        // Validate the read set.
        let validate_timer = PhaseTimer::start(self.th.pmem());
        for &(idx, version) in &self.read_set {
            match self.th.rt().locks().probe(idx) {
                crate::locks::LockState::Version(v) if v == version => {}
                crate::locks::LockState::Owned(s) if s == self.th.slot() => {}
                _ => {
                    self.release_locks_restoring();
                    self.rollback_allocs();
                    self.th.rt().aborts.fetch_add(1, Ordering::Relaxed);
                    self.th.rt().metrics().aborts.inc();
                    return Err(TxAbort::Conflict);
                }
            }
        }
        self.th
            .rt()
            .metrics()
            .validate_ns
            .record(validate_timer.stop(self.th.pmem()));

        let ts = self.th.rt().clock().tick();

        // Build and persist the redo record: [ts, (addr, val)*].
        let mut record = Vec::with_capacity(1 + self.write_set.len() * 2);
        record.push(ts);
        for (&addr, &val) in &self.write_set {
            record.push(addr);
            record.push(val);
        }
        let truncation = self.th.rt().truncation();
        let log_timer = PhaseTimer::start(self.th.pmem());
        let mut stall_timer: Option<PhaseTimer> = None;
        loop {
            match self.th.log_mut().append(&record) {
                Ok(()) => break,
                Err(LogError::Full { .. }) => match truncation {
                    // Synchronous regime: every prior commit in this log
                    // forced its data (flush + fence) before releasing
                    // its locks, so the entire backlog sits below the
                    // durable watermark — drop it with a single fence
                    // rather than truncate_all's flush + truncate pair.
                    Truncation::Sync => {
                        let wm = self.th.log_mut().tail_pos();
                        self.th.log_mut().truncate_to_watermark(wm);
                        self.th.rt().metrics().wm_truncations.inc();
                    }
                    // Asynchronous: wait for the log manager (§5: "program
                    // threads may stall until there is free log space").
                    // This loop issues no durability primitives, so under
                    // fault injection it must poll explicitly — if the
                    // log-manager thread died at a crash point, this is
                    // the only place the stalled thread can die too.
                    Truncation::Async => {
                        if stall_timer.is_none() {
                            stall_timer = Some(PhaseTimer::start(self.th.pmem()));
                            self.th.rt().stalls.fetch_add(1, Ordering::Relaxed);
                            self.th.rt().metrics().truncation_stalls.inc();
                        }
                        self.th.pmem().poll_crash();
                        std::thread::yield_now();
                    }
                },
                // RecordTooLarge or a poisoned/corrupt log: retrying the
                // same append can never succeed. Release everything and
                // surface the typed error.
                Err(e) => {
                    self.release_locks_restoring();
                    self.rollback_allocs();
                    self.th.rt().aborts.fetch_add(1, Ordering::Relaxed);
                    self.th.rt().metrics().aborts.inc();
                    return Err(TxAbort::Log(e));
                }
            }
        }
        if let Some(t) = stall_timer {
            self.th
                .rt()
                .metrics()
                .stall_ns
                .record(t.stop(self.th.pmem()));
        }
        // The single commit fence: the record is durable, but not yet
        // visible to the async truncator (write-back hasn't happened).
        self.th.log_mut().flush_unpublished();
        self.th
            .rt()
            .metrics()
            .log_ns
            .record(log_timer.stop(self.th.pmem()));

        // Write back buffered values (lazy version management).
        let writeback_timer = PhaseTimer::start(self.th.pmem());
        for (&addr, &val) in &self.write_set {
            self.th.pmem().store_u64(VAddr(addr), val);
        }
        // Now the truncator may consume (flush + truncate) the record.
        self.th.log_mut().publish();
        self.th
            .rt()
            .metrics()
            .writeback_ns
            .record(writeback_timer.stop(self.th.pmem()));

        if truncation == Truncation::Sync {
            // Force data: walk distinct cache lines, then order them
            // behind one fence — our own, or a concurrent commit-group
            // leader's (`flush` pushed the lines to media already, so any
            // thread's fence covers them; see `pipeline`).
            let truncate_timer = PhaseTimer::start(self.th.pmem());
            let lines: HashSet<u64> = self.write_set.keys().map(|a| a & !63).collect();
            for line in lines {
                self.th.pmem().flush(VAddr(line));
            }
            if self.th.rt().group_commit() {
                match self.th.rt().group_fence().cover(self.th.pmem()) {
                    Covered::Leader => self.th.rt().metrics().group_fences.inc(),
                    Covered::Piggybacked => self.th.rt().metrics().piggybacked_commits.inc(),
                }
            } else {
                self.th.pmem().fence();
            }
            // Data fence retired: everything in this log up to the tail
            // is now doubly durable (records fenced, data fenced).
            // Publish that watermark so a background checkpointer can
            // reclaim the space without scanning — publishing `fenced`
            // instead would be wrong, since between `publish()` above and
            // this fence the record is visible but its data is not yet
            // durable.
            self.th.log_mut().publish_durable_watermark();
            self.th
                .rt()
                .metrics()
                .truncate_ns
                .record(truncate_timer.stop(self.th.pmem()));
        }

        // Publish the new version and release ownership.
        for &(idx, _) in &self.lock_set {
            self.th.rt().locks().release(idx, ts);
        }
        self.lock_set.clear();

        if truncation == Truncation::Sync {
            // Amortised truncation: drop the log only once it passes the
            // occupancy threshold. Everything below the watermark is
            // doubly durable (record fenced, data fenced), and leaving
            // committed records in the log is safe because recovery
            // replay is idempotent. This happens strictly AFTER the lock
            // release above: truncation serializes against the background
            // checkpointer on the log's truncate lock, and spinning there
            // with write locks still held would stall every concurrent
            // commit touching the same words into aborting.
            let pct = self.th.rt().sync_truncate_pct() as u64;
            let log = self.th.log_mut();
            let used = log.capacity() - log.free_words();
            if pct == 0 || used * 100 >= log.capacity() * pct {
                let wm = log.tail_pos();
                log.truncate_to_watermark(wm);
                self.th.rt().metrics().wm_truncations.inc();
            }
        }

        // Deferred frees happen after the commit point.
        if !self.frees.is_empty() {
            if let Some(heap) = self.th.rt().heap() {
                for &addr in &self.frees {
                    let freed = heap.pfree_addr(addr);
                    debug_assert!(freed.is_ok(), "deferred pfree failed: {freed:?}");
                }
            }
        }
        self.th.rt().commits.fetch_add(1, Ordering::Relaxed);
        self.th.rt().metrics().commits.inc();
        self.th
            .rt()
            .metrics()
            .commit_ns
            .record(commit_timer.stop(self.th.pmem()));
        Ok(())
    }

    /// Abort: restore lock versions, release transaction-local
    /// allocations, forget buffered writes.
    pub(crate) fn abort(mut self) {
        self.release_locks_restoring();
        self.rollback_allocs();
        self.th.rt().aborts.fetch_add(1, Ordering::Relaxed);
        self.th.rt().metrics().aborts.inc();
    }

    fn release_locks_restoring(&mut self) {
        for &(idx, old_version) in &self.lock_set {
            self.th.rt().locks().release(idx, old_version);
        }
        self.lock_set.clear();
        self.owned.clear();
    }

    fn rollback_allocs(&mut self) {
        if self.allocs.is_empty() {
            return;
        }
        if let Some(heap) = self.th.rt().heap() {
            for &addr in &self.allocs {
                let _ = heap.pfree_addr(addr);
            }
        }
        self.allocs.clear();
    }
}
