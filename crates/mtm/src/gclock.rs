//! Global timestamp counter (§5).
//!
//! "Mnemosyne relies on TinySTM's existing global timestamp counter, which
//! is incremented at every transaction completion. Mnemosyne captures a
//! total order over transactions by storing this global counter along with
//! each transaction in the log." The counter is volatile: recovery derives
//! replay order from the logged timestamps, not from the counter itself.
//!
//! The counter is cache-line padded ([`PaddedAtomicU64`]): every commit
//! ticks it, so whatever the `GlobalClock` is embedded next to would
//! otherwise false-share the hottest line in the system.

use std::sync::atomic::Ordering;

use mnemosyne_obs::PaddedAtomicU64;

/// The global transaction clock.
#[derive(Debug, Default)]
pub struct GlobalClock {
    now: PaddedAtomicU64,
}

impl GlobalClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current timestamp (the read validation horizon for new
    /// transactions).
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advances the clock and returns this commit's unique timestamp.
    /// This is the serialisation point of a committing transaction.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_unique() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn unique_across_threads() {
        let c = std::sync::Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "timestamps must be unique");
    }
}
