//! The global array of volatile versioned locks (§5).
//!
//! "For encounter-time locking, we use a global array of volatile locks,
//! with each lock covering a portion of the address space." Each slot is
//! one `AtomicU64`:
//!
//! * even value `v` — unlocked; `v >> 1` is the version (commit timestamp
//!   of the last writer);
//! * odd value — locked; `v >> 1` is the owning thread slot.
//!
//! The table is volatile: it is rebuilt empty at program start, which is
//! correct because recovery replays committed transactions before any new
//! transaction runs.
//!
//! Slots are cache-line padded ([`PaddedAtomicU64`]): the commit hot path
//! CASes a handful of slots per transaction, and with bare `AtomicU64`s
//! eight neighbouring (unrelated) locks would false-share one line, so
//! independent commits on different words still bounced a line between
//! cores.

use std::sync::atomic::Ordering;

use mnemosyne_obs::PaddedAtomicU64;
use mnemosyne_region::VAddr;

/// Outcome of probing a lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockState {
    /// Unlocked; carries the version.
    Version(u64),
    /// Locked by the given thread slot.
    Owned(usize),
}

/// Conflict-site hint table size. Coarser than the lock table on purpose:
/// hints only need to distinguish "hot neighbourhood" from "cold", and a
/// small table keeps the whole thing resident in a few cache lines' worth
/// of padded slots.
const HINT_SITES: usize = 256;

/// Saturation cap for a site's contention level. Levels feed exponential
/// backoff shifts, so 8 already means "wait up to 256× the base spin".
const HINT_CAP: u64 = 8;

/// The global versioned-lock table, plus the per-site contention hints
/// that drive adaptive backoff on encounter-time conflicts.
#[derive(Debug)]
pub struct LockTable {
    slots: Vec<PaddedAtomicU64>,
    mask: u64,
    /// Conflict-site contention levels, indexed by `idx % HINT_SITES`.
    /// Raised when a thread finds a lock foreign-owned, lowered when a
    /// wait resolves without an abort; saturating both ways.
    hints: Vec<PaddedAtomicU64>,
}

impl LockTable {
    /// Creates a table with `size` slots (rounded up to a power of two).
    pub fn new(size: usize) -> Self {
        let n = size.next_power_of_two().max(64);
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, PaddedAtomicU64::default);
        let mut hints = Vec::with_capacity(HINT_SITES);
        hints.resize_with(HINT_SITES, PaddedAtomicU64::default);
        LockTable {
            slots,
            mask: n as u64 - 1,
            hints,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lock index covering a persistent address. Word-granularity hashing
    /// with a Fibonacci multiplier spreads neighbouring words over the
    /// table.
    #[inline]
    pub fn index_of(&self, addr: VAddr) -> usize {
        let h = (addr.0 >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 20) & self.mask) as usize
    }

    /// Probes slot `idx`.
    #[inline]
    pub fn probe(&self, idx: usize) -> LockState {
        let v = self.slots[idx].load(Ordering::Acquire);
        if v & 1 == 1 {
            LockState::Owned((v >> 1) as usize)
        } else {
            LockState::Version(v >> 1)
        }
    }

    /// Attempts to acquire slot `idx` for thread `slot`, expecting the
    /// current word to be the unlocked version `expected_version`. Returns
    /// `true` on success.
    #[inline]
    pub fn try_acquire(&self, idx: usize, slot: usize, expected_version: u64) -> bool {
        let expected = expected_version << 1;
        let owned = ((slot as u64) << 1) | 1;
        self.slots[idx]
            .compare_exchange(expected, owned, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases slot `idx`, publishing version `version` (the committing
    /// transaction's timestamp, or the restored pre-lock version on
    /// abort).
    #[inline]
    pub fn release(&self, idx: usize, version: u64) {
        self.slots[idx].store(version << 1, Ordering::Release);
    }

    #[inline]
    fn hint(&self, idx: usize) -> &PaddedAtomicU64 {
        &self.hints[idx & (HINT_SITES - 1)]
    }

    /// Records that a thread found lock `idx` foreign-owned: raises the
    /// covering site's contention level (saturating at a small cap).
    #[inline]
    pub fn note_conflict(&self, idx: usize) {
        let h = self.hint(idx);
        let _ = h.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            (v < HINT_CAP).then(|| v + 1)
        });
    }

    /// Records that a wait on lock `idx` resolved without an abort:
    /// lowers the site's contention level (saturating at zero).
    #[inline]
    pub fn note_resolved(&self, idx: usize) {
        let h = self.hint(idx);
        let _ = h.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Current contention level of the site covering lock `idx`, in
    /// `0..=8`. Adaptive backoff adds this to its exponential shift, so
    /// hot sites wait longer before re-probing (and give the owner time
    /// to finish) while cold sites retry almost immediately.
    #[inline]
    pub fn contention(&self, idx: usize) -> u64 {
        self.hint(idx).load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let t = LockTable::new(64);
        let idx = t.index_of(VAddr(0x1000_0000_0000));
        assert_eq!(t.probe(idx), LockState::Version(0));
        assert!(t.try_acquire(idx, 3, 0));
        assert_eq!(t.probe(idx), LockState::Owned(3));
        assert!(!t.try_acquire(idx, 4, 0), "second acquire must fail");
        t.release(idx, 9);
        assert_eq!(t.probe(idx), LockState::Version(9));
    }

    #[test]
    fn acquire_with_stale_version_fails() {
        let t = LockTable::new(64);
        let idx = 5;
        t.release(idx, 7);
        assert!(!t.try_acquire(idx, 0, 6));
        assert!(t.try_acquire(idx, 0, 7));
    }

    #[test]
    fn index_spreads_neighbouring_words() {
        let t = LockTable::new(1 << 16);
        let base = VAddr(0x1000_0000_0000);
        let idxs: std::collections::HashSet<usize> =
            (0..64u64).map(|i| t.index_of(base.add(i * 8))).collect();
        assert!(idxs.len() > 48, "hash should spread words: {}", idxs.len());
    }

    #[test]
    fn size_rounds_to_power_of_two() {
        assert_eq!(LockTable::new(1000).len(), 1024);
        assert_eq!(LockTable::new(1).len(), 64);
    }

    #[test]
    fn contention_hints_saturate_both_ways() {
        let t = LockTable::new(64);
        let idx = 17;
        assert_eq!(t.contention(idx), 0);
        t.note_resolved(idx); // below zero: saturates
        assert_eq!(t.contention(idx), 0);
        for _ in 0..20 {
            t.note_conflict(idx);
        }
        assert_eq!(t.contention(idx), 8, "level caps at 8");
        t.note_resolved(idx);
        t.note_resolved(idx);
        assert_eq!(t.contention(idx), 6);
    }

    #[test]
    fn contention_hints_cover_sites_not_individual_locks() {
        let t = LockTable::new(1 << 12);
        // Locks 256 apart share a hint site.
        t.note_conflict(3);
        assert_eq!(t.contention(3 + 256), 1);
        // Neighbouring locks do not.
        assert_eq!(t.contention(4), 0);
    }
}
