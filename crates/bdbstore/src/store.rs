//! The storage manager: a page-based hash database with WAL-backed
//! auto-commit updates (Berkeley DB stand-in) and an ldbm mode.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};
use pcmdisk::SimpleFs;

use crate::error::StoreError;
use crate::page::{Page, Value, PAGE_SIZE, SPILL_THRESHOLD, VALUE_MAX};
use crate::wal::{Wal, WalRecord};

const META_MAGIC: u64 = u64::from_le_bytes(*b"BDBSTORE");

/// Durability regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Every update commits through the WAL before returning — the
    /// default transactional Berkeley DB configuration (`back-bdb`).
    Transactional,
    /// No log; dirty pages are flushed every `flush_every` updates — the
    /// `back-ldbm` configuration, trading a window of vulnerability for
    /// speed (§6.2).
    Ldbm {
        /// Updates between flushes.
        flush_every: u64,
    },
}

/// Configuration for [`BdbStore::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of hash buckets (fixed at creation).
    pub buckets: u32,
    /// Durability regime.
    pub durability: Durability,
    /// WAL size that triggers a checkpoint, in bytes.
    pub checkpoint_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            buckets: 1024,
            durability: Durability::Transactional,
            checkpoint_bytes: 4 << 20,
        }
    }
}

struct Meta {
    next_free_page: u32,
    /// Reusable spill runs `(start, pages)`.
    free_spills: Vec<(u32, u32)>,
}

/// The storage manager.
pub struct BdbStore {
    fs: SimpleFs,
    data_file: String,
    wal: Option<Wal>,
    config: StoreConfig,
    bucket_locks: Vec<Mutex<()>>,
    meta: Mutex<Meta>,
    /// Readers of this lock are normal operations; a checkpoint takes it
    /// exclusively.
    checkpoint_gate: RwLock<()>,
    ops: AtomicU64,
    puts: AtomicU64,
    gets: AtomicU64,
    dels: AtomicU64,
}

impl std::fmt::Debug for BdbStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BdbStore")
            .field("file", &self.data_file)
            .field("buckets", &self.config.buckets)
            .finish()
    }
}

fn fnv1a(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl BdbStore {
    /// Opens (creating or recovering) the database `name` on `fs`.
    /// Recovery replays the WAL's logical records onto the last
    /// checkpointed data file, then checkpoints.
    ///
    /// # Errors
    /// Propagates file-system errors; fails on a corrupt meta page.
    pub fn open(fs: SimpleFs, name: &str, config: StoreConfig) -> Result<BdbStore, StoreError> {
        let data_file = format!("{name}.db");
        let wal_file = format!("{name}.wal");
        let fresh = !fs.exists(&data_file);
        if fresh {
            fs.create(&data_file)?;
        }
        let wal = match config.durability {
            Durability::Transactional => Some(Wal::open(fs.clone(), &wal_file)?),
            Durability::Ldbm { .. } => None,
        };
        let store = BdbStore {
            bucket_locks: (0..config.buckets).map(|_| Mutex::new(())).collect(),
            meta: Mutex::new(Meta {
                next_free_page: config.buckets + 1,
                free_spills: Vec::new(),
            }),
            checkpoint_gate: RwLock::new(()),
            ops: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            dels: AtomicU64::new(0),
            fs,
            data_file,
            wal,
            config,
        };
        if fresh {
            store.write_meta()?;
            store.fs.sync();
        } else {
            // Read the checkpointed meta page.
            let meta_page = store.read_page(0)?;
            let magic = u64::from_le_bytes(meta_page.0[0..8].try_into().unwrap());
            if magic != META_MAGIC {
                return Err(StoreError::Corrupt("bad meta magic"));
            }
            let buckets = u32::from_le_bytes(meta_page.0[8..12].try_into().unwrap());
            if buckets != store.config.buckets {
                return Err(StoreError::Corrupt("bucket count mismatch"));
            }
            store.meta.lock().next_free_page =
                u32::from_le_bytes(meta_page.0[12..16].try_into().unwrap());
            // Replay the WAL (logical redo), then checkpoint.
            if let Some(wal) = &store.wal {
                let records = wal.read_all()?;
                for rec in records {
                    match rec {
                        WalRecord::Put { key, value } => store.apply_put(&key, &value)?,
                        WalRecord::Delete { key } => {
                            store.apply_delete(&key)?;
                        }
                    }
                }
                store.checkpoint()?;
            }
        }
        Ok(store)
    }

    fn write_meta(&self) -> Result<(), StoreError> {
        let meta = self.meta.lock();
        let mut page = Page::default();
        page.0[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        page.0[8..12].copy_from_slice(&self.config.buckets.to_le_bytes());
        page.0[12..16].copy_from_slice(&meta.next_free_page.to_le_bytes());
        drop(meta);
        self.write_page(0, &page)
    }

    fn read_page(&self, id: u32) -> Result<Page, StoreError> {
        let mut buf = vec![0u8; PAGE_SIZE];
        let n = self
            .fs
            .pread(&self.data_file, id as u64 * PAGE_SIZE as u64, &mut buf)?;
        buf[n..].fill(0);
        Ok(Page::from_bytes(buf))
    }

    fn write_page(&self, id: u32, page: &Page) -> Result<(), StoreError> {
        self.fs
            .pwrite(&self.data_file, id as u64 * PAGE_SIZE as u64, &page.0)?;
        Ok(())
    }

    fn alloc_pages(&self, n: u32) -> u32 {
        let mut meta = self.meta.lock();
        if let Some(pos) = meta.free_spills.iter().position(|&(_, len)| len == n) {
            return meta.free_spills.swap_remove(pos).0;
        }
        let start = meta.next_free_page;
        meta.next_free_page += n;
        start
    }

    fn free_pages(&self, start: u32, n: u32) {
        self.meta.lock().free_spills.push((start, n));
    }

    fn write_spill(&self, value: &[u8]) -> Result<Value, StoreError> {
        let pages = value.len().div_ceil(PAGE_SIZE) as u32;
        let start = self.alloc_pages(pages);
        self.fs
            .pwrite(&self.data_file, start as u64 * PAGE_SIZE as u64, value)?;
        Ok(Value::Spilled(start, value.len()))
    }

    fn read_value(&self, v: &Value) -> Result<Vec<u8>, StoreError> {
        match v {
            Value::Inline(b) => Ok(b.clone()),
            Value::Spilled(start, len) => {
                let mut buf = vec![0u8; *len];
                let n =
                    self.fs
                        .pread(&self.data_file, *start as u64 * PAGE_SIZE as u64, &mut buf)?;
                buf[n..].fill(0);
                Ok(buf)
            }
        }
    }

    fn drop_value(&self, v: &Value) {
        if let Value::Spilled(start, len) = v {
            self.free_pages(*start, len.div_ceil(PAGE_SIZE) as u32);
        }
    }

    /// Physically inserts/replaces a key (no logging, no durability).
    fn apply_put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        if value.len() > VALUE_MAX {
            return Err(StoreError::TooLarge {
                len: value.len(),
                max: VALUE_MAX,
            });
        }
        let bucket = (fnv1a(key) % self.config.buckets as u64) as u32;
        let _guard = self.bucket_locks[bucket as usize].lock();
        // Remove an existing entry first.
        self.remove_locked(bucket, key)?;
        let stored = if value.len() > SPILL_THRESHOLD {
            self.write_spill(value)?
        } else {
            Value::Inline(value.to_vec())
        };
        // Find a chain page with room.
        let need = Page::entry_size(key.len(), value.len(), matches!(stored, Value::Spilled(..)));
        let mut id = bucket + 1;
        loop {
            let mut page = self.read_page(id)?;
            if page.free_space() >= need {
                page.push(key, &stored)?;
                self.write_page(id, &page)?;
                return Ok(());
            }
            let next = page.next_overflow();
            if next == 0 {
                let new_id = self.alloc_pages(1);
                let mut fresh = Page::default();
                fresh.push(key, &stored)?;
                self.write_page(new_id, &fresh)?;
                page.set_next_overflow(new_id);
                self.write_page(id, &page)?;
                return Ok(());
            }
            id = next;
        }
    }

    /// Physically removes a key; returns whether it existed.
    fn apply_delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        let bucket = (fnv1a(key) % self.config.buckets as u64) as u32;
        let _guard = self.bucket_locks[bucket as usize].lock();
        self.remove_locked(bucket, key)
    }

    fn remove_locked(&self, bucket: u32, key: &[u8]) -> Result<bool, StoreError> {
        let mut id = bucket + 1;
        loop {
            let mut page = self.read_page(id)?;
            if let Some((off, _)) = page.find(key) {
                let old = page.remove_at(off);
                self.drop_value(&old);
                self.write_page(id, &page)?;
                return Ok(true);
            }
            let next = page.next_overflow();
            if next == 0 {
                return Ok(false);
            }
            id = next;
        }
    }

    fn after_update(&self, rec: Option<WalRecord>) -> Result<(), StoreError> {
        match self.config.durability {
            Durability::Transactional => {
                let wal = self.wal.as_ref().expect("transactional store has a wal");
                let rec = rec.expect("transactional update produces a record");
                let lsn = wal.append(&rec);
                wal.commit(lsn)?;
                if wal.size() > self.config.checkpoint_bytes {
                    self.checkpoint()?;
                }
            }
            Durability::Ldbm { flush_every } => {
                let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
                if flush_every > 0 && n.is_multiple_of(flush_every) {
                    self.fs.sync();
                }
            }
        }
        Ok(())
    }

    /// Inserts or replaces `key → value`, committing per the durability
    /// regime before returning (auto-commit, the paper's workload shape:
    /// "data is committed to storage on every update").
    ///
    /// # Errors
    /// Propagates file-system errors; fails on oversized items.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let _gate = self.checkpoint_gate.read();
        self.apply_put(key, value)?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        drop(_gate);
        self.after_update(Some(WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }))
    }

    /// Removes `key`, returning whether it existed.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        let _gate = self.checkpoint_gate.read();
        let existed = self.apply_delete(key)?;
        self.dels.fetch_add(1, Ordering::Relaxed);
        drop(_gate);
        if existed {
            self.after_update(Some(WalRecord::Delete { key: key.to_vec() }))?;
        }
        Ok(existed)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let _gate = self.checkpoint_gate.read();
        self.gets.fetch_add(1, Ordering::Relaxed);
        let bucket = (fnv1a(key) % self.config.buckets as u64) as u32;
        let _guard = self.bucket_locks[bucket as usize].lock();
        let mut id = bucket + 1;
        loop {
            let page = self.read_page(id)?;
            if let Some((_, v)) = page.find(key) {
                return Ok(Some(self.read_value(&v)?));
            }
            let next = page.next_overflow();
            if next == 0 {
                return Ok(None);
            }
            id = next;
        }
    }

    /// Checkpoint: force all dirty pages to PCM, persist the allocator
    /// meta, and truncate the WAL.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let _gate = self.checkpoint_gate.write();
        self.write_meta()?;
        self.fs.sync();
        if let Some(wal) = &self.wal {
            wal.reset()?;
        }
        Ok(())
    }

    /// Flushes dirty pages (the ldbm periodic flush; also usable as a
    /// manual sync in any mode).
    pub fn flush(&self) {
        self.fs.sync();
    }

    /// `(puts, gets, deletes)` since open.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
            self.dels.load(Ordering::Relaxed),
        )
    }

    /// The underlying file system (for device statistics).
    pub fn fs(&self) -> &SimpleFs {
        &self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmdisk::{DiskConfig, PcmDisk};
    use std::sync::Arc;

    fn store(cfg: StoreConfig) -> BdbStore {
        let fs = SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(32768)))).unwrap();
        BdbStore::open(fs, "test", cfg).unwrap()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let s = store(StoreConfig::default());
        s.put(b"alpha", b"one").unwrap();
        s.put(b"beta", b"two").unwrap();
        assert_eq!(s.get(b"alpha").unwrap().unwrap(), b"one");
        s.put(b"alpha", b"uno").unwrap();
        assert_eq!(s.get(b"alpha").unwrap().unwrap(), b"uno");
        assert!(s.delete(b"alpha").unwrap());
        assert!(!s.delete(b"alpha").unwrap());
        assert!(s.get(b"alpha").unwrap().is_none());
        assert_eq!(s.get(b"beta").unwrap().unwrap(), b"two");
    }

    #[test]
    fn large_values_spill_and_return_intact() {
        let s = store(StoreConfig::default());
        let big: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        s.put(b"big", &big).unwrap();
        assert_eq!(s.get(b"big").unwrap().unwrap(), big);
        s.put(b"big", b"small now").unwrap();
        assert_eq!(s.get(b"big").unwrap().unwrap(), b"small now");
    }

    #[test]
    fn overflow_chains_grow() {
        let s = store(StoreConfig {
            buckets: 2,
            ..StoreConfig::default()
        });
        for i in 0..500u32 {
            s.put(format!("key-{i}").as_bytes(), &[0xab; 64]).unwrap();
        }
        for i in 0..500u32 {
            assert_eq!(
                s.get(format!("key-{i}").as_bytes()).unwrap().unwrap(),
                vec![0xab; 64],
                "key-{i}"
            );
        }
    }

    #[test]
    fn committed_updates_survive_crash() {
        let fs = SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(32768)))).unwrap();
        let disk = Arc::clone(fs.disk());
        {
            let s = BdbStore::open(fs.clone(), "db", StoreConfig::default()).unwrap();
            s.put(b"durable", b"yes").unwrap();
        }
        disk.crash(); // drop everything unsynced (data pages!)
        let fs2 = SimpleFs::open(disk).unwrap();
        let s2 = BdbStore::open(fs2, "db", StoreConfig::default()).unwrap();
        assert_eq!(
            s2.get(b"durable").unwrap().unwrap(),
            b"yes",
            "WAL replay must recover the committed put"
        );
    }

    #[test]
    fn ldbm_mode_loses_recent_updates_on_crash() {
        let fs = SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(32768)))).unwrap();
        let disk = Arc::clone(fs.disk());
        let cfg = StoreConfig {
            durability: Durability::Ldbm { flush_every: 1000 },
            ..StoreConfig::default()
        };
        {
            let s = BdbStore::open(fs.clone(), "db", cfg.clone()).unwrap();
            s.put(b"gone", b"poof").unwrap();
        }
        disk.crash();
        let fs2 = SimpleFs::open(disk).unwrap();
        let s2 = BdbStore::open(fs2, "db", cfg).unwrap();
        assert!(
            s2.get(b"gone").unwrap().is_none(),
            "ldbm offers only a window of durability"
        );
    }

    #[test]
    fn checkpoint_truncates_wal_and_preserves_data() {
        let s = store(StoreConfig::default());
        for i in 0..100u32 {
            s.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        s.checkpoint().unwrap();
        for i in 0..100u32 {
            assert!(s.get(format!("k{i}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn concurrent_distinct_keys() {
        let s = Arc::new(store(StoreConfig::default()));
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let k = format!("t{t}-k{i}");
                    s.put(k.as_bytes(), k.as_bytes()).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for t in 0..4u32 {
            for i in 0..100u32 {
                let k = format!("t{t}-k{i}");
                assert_eq!(s.get(k.as_bytes()).unwrap().unwrap(), k.as_bytes());
            }
        }
    }

    #[test]
    fn oversized_value_rejected() {
        let s = store(StoreConfig::default());
        assert!(matches!(
            s.put(b"k", &vec![0u8; VALUE_MAX + 1]),
            Err(StoreError::TooLarge { .. })
        ));
    }
}
