//! Bucket-page codec: fixed 4 KB pages holding variable-length entries.
//!
//! Layout:
//!
//! ```text
//! [count u16][used u16][next_overflow u32]      8-byte header
//! entry*: [klen u16][vword u16][key][value or spill ref]
//! ```
//!
//! `vword`'s high bit marks a **spilled** value: the in-page payload is
//! then an 8-byte `(start_page u32, reserved u32)` reference and the low
//! 15 bits give the true value length (whole pages follow at
//! `start_page`). Values above [`SPILL_THRESHOLD`] spill, mirroring
//! Berkeley DB's overflow records for large items.

use crate::error::StoreError;

/// Page size (matches the device block size).
pub const PAGE_SIZE: usize = 4096;

/// Header bytes at the start of each bucket page.
pub const HEADER: usize = 8;

/// Values longer than this are stored in dedicated spill pages.
pub const SPILL_THRESHOLD: usize = 1024;

/// Maximum key length.
pub const KEY_MAX: usize = 1024;

/// Maximum value length (15-bit length field).
pub const VALUE_MAX: usize = 32 * 1024;

const SPILL_FLAG: u16 = 0x8000;

/// A parsed entry reference inside a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Value stored inline.
    Inline(Vec<u8>),
    /// Value spilled: `(first spill page, value length)`.
    Spilled(u32, usize),
}

/// In-memory wrapper over one bucket page image.
#[derive(Debug, Clone)]
pub struct Page(pub Vec<u8>);

impl Default for Page {
    fn default() -> Self {
        Page(vec![0; PAGE_SIZE])
    }
}

impl Page {
    /// Wraps an existing page image.
    ///
    /// # Panics
    /// Panics if the image is not exactly one page.
    pub fn from_bytes(data: Vec<u8>) -> Page {
        assert_eq!(data.len(), PAGE_SIZE);
        Page(data)
    }

    /// Number of entries.
    pub fn count(&self) -> u16 {
        u16::from_le_bytes([self.0[0], self.0[1]])
    }

    /// Bytes used by entries (after the header).
    pub fn used(&self) -> u16 {
        u16::from_le_bytes([self.0[2], self.0[3]])
    }

    /// Next overflow page id (0 = none).
    pub fn next_overflow(&self) -> u32 {
        u32::from_le_bytes([self.0[4], self.0[5], self.0[6], self.0[7]])
    }

    /// Sets the overflow link.
    pub fn set_next_overflow(&mut self, page: u32) {
        self.0[4..8].copy_from_slice(&page.to_le_bytes());
    }

    fn set_count(&mut self, c: u16) {
        self.0[0..2].copy_from_slice(&c.to_le_bytes());
    }

    fn set_used(&mut self, u: u16) {
        self.0[2..4].copy_from_slice(&u.to_le_bytes());
    }

    /// Free bytes available for a new entry.
    pub fn free_space(&self) -> usize {
        PAGE_SIZE - HEADER - self.used() as usize
    }

    /// Bytes an entry occupies in-page.
    pub fn entry_size(klen: usize, vlen: usize, spilled: bool) -> usize {
        4 + klen + if spilled { 8 } else { vlen }
    }

    /// Iterates entries as `(offset, key, value)`.
    pub fn iter(&self) -> PageIter<'_> {
        PageIter {
            page: self,
            off: HEADER,
            remaining: self.count(),
        }
    }

    /// Finds the entry for `key`, returning `(offset, value)`.
    pub fn find(&self, key: &[u8]) -> Option<(usize, Value)> {
        self.iter()
            .find(|(_, k, _)| k.as_slice() == key)
            .map(|(off, _, v)| (off, v))
    }

    /// Appends an entry; the caller has checked `free_space`.
    ///
    /// # Errors
    /// Fails if key/value exceed the format limits.
    pub fn push(&mut self, key: &[u8], value: &Value) -> Result<(), StoreError> {
        if key.len() > KEY_MAX {
            return Err(StoreError::TooLarge {
                len: key.len(),
                max: KEY_MAX,
            });
        }
        let (vword, payload): (u16, Vec<u8>) = match value {
            Value::Inline(v) => {
                if v.len() >= SPILL_FLAG as usize {
                    return Err(StoreError::TooLarge {
                        len: v.len(),
                        max: SPILL_FLAG as usize - 1,
                    });
                }
                (v.len() as u16, v.clone())
            }
            Value::Spilled(start, len) => {
                if *len > VALUE_MAX {
                    return Err(StoreError::TooLarge {
                        len: *len,
                        max: VALUE_MAX,
                    });
                }
                let mut p = Vec::with_capacity(8);
                p.extend_from_slice(&start.to_le_bytes());
                p.extend_from_slice(&(*len as u32).to_le_bytes());
                (SPILL_FLAG, p)
            }
        };
        let need = 4 + key.len() + payload.len();
        assert!(
            need <= self.free_space(),
            "page overflow: caller must check"
        );
        let off = HEADER + self.used() as usize;
        self.0[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        self.0[off + 2..off + 4].copy_from_slice(&vword.to_le_bytes());
        self.0[off + 4..off + 4 + key.len()].copy_from_slice(key);
        self.0[off + 4 + key.len()..off + need].copy_from_slice(&payload);
        self.set_count(self.count() + 1);
        self.set_used(self.used() + need as u16);
        Ok(())
    }

    /// Removes the entry at `off` (from [`Page::find`]), compacting the
    /// page. Returns the removed value.
    pub fn remove_at(&mut self, off: usize) -> Value {
        let (key_len, value, total) = self.decode_at(off);
        let _ = key_len;
        let used = HEADER + self.used() as usize;
        self.0.copy_within(off + total..used, off);
        self.0[used - total..used].fill(0);
        self.set_count(self.count() - 1);
        self.set_used(self.used() - total as u16);
        value
    }

    fn decode_at(&self, off: usize) -> (usize, Value, usize) {
        let klen = u16::from_le_bytes([self.0[off], self.0[off + 1]]) as usize;
        let vword = u16::from_le_bytes([self.0[off + 2], self.0[off + 3]]);
        if vword & SPILL_FLAG != 0 {
            let p = off + 4 + klen;
            let start = u32::from_le_bytes(self.0[p..p + 4].try_into().unwrap());
            let len = u32::from_le_bytes(self.0[p + 4..p + 8].try_into().unwrap()) as usize;
            (klen, Value::Spilled(start, len), 4 + klen + 8)
        } else {
            let vlen = vword as usize;
            let p = off + 4 + klen;
            (
                klen,
                Value::Inline(self.0[p..p + vlen].to_vec()),
                4 + klen + vlen,
            )
        }
    }
}

/// Iterator over a page's entries.
#[derive(Debug)]
pub struct PageIter<'a> {
    page: &'a Page,
    off: usize,
    remaining: u16,
}

impl Iterator for PageIter<'_> {
    type Item = (usize, Vec<u8>, Value);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let off = self.off;
        let (klen, value, total) = self.page.decode_at(off);
        let key = self.page.0[off + 4..off + 4 + klen].to_vec();
        self.off += total;
        self.remaining -= 1;
        Some((off, key, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_find_remove() {
        let mut p = Page::default();
        p.push(b"alpha", &Value::Inline(b"one".to_vec())).unwrap();
        p.push(b"beta", &Value::Inline(b"two".to_vec())).unwrap();
        assert_eq!(p.count(), 2);
        let (off, v) = p.find(b"alpha").unwrap();
        assert_eq!(v, Value::Inline(b"one".to_vec()));
        p.remove_at(off);
        assert_eq!(p.count(), 1);
        assert!(p.find(b"alpha").is_none());
        let (_, v) = p.find(b"beta").unwrap();
        assert_eq!(v, Value::Inline(b"two".to_vec()));
    }

    #[test]
    fn spill_reference_roundtrip() {
        let mut p = Page::default();
        p.push(b"big", &Value::Spilled(42, 5000)).unwrap();
        let (_, v) = p.find(b"big").unwrap();
        assert_eq!(v, Value::Spilled(42, 5000));
    }

    #[test]
    fn free_space_accounting() {
        let mut p = Page::default();
        let before = p.free_space();
        p.push(b"k", &Value::Inline(vec![0; 10])).unwrap();
        assert_eq!(p.free_space(), before - Page::entry_size(1, 10, false));
    }

    #[test]
    fn fills_until_capacity() {
        let mut p = Page::default();
        let mut n = 0;
        loop {
            let key = format!("key-{n:05}");
            if p.free_space() < Page::entry_size(key.len(), 20, false) {
                break;
            }
            p.push(key.as_bytes(), &Value::Inline(vec![7; 20])).unwrap();
            n += 1;
        }
        assert!(n > 100);
        assert_eq!(p.count() as usize, n);
        // All still findable after the fill.
        assert!(p.find(b"key-00000").is_some());
        assert!(p.find(format!("key-{:05}", n - 1).as_bytes()).is_some());
    }

    #[test]
    fn overflow_link() {
        let mut p = Page::default();
        assert_eq!(p.next_overflow(), 0);
        p.set_next_overflow(99);
        assert_eq!(p.next_overflow(), 99);
    }

    #[test]
    fn oversize_key_rejected() {
        let mut p = Page::default();
        assert!(p
            .push(&vec![0u8; KEY_MAX + 1], &Value::Inline(vec![]))
            .is_err());
    }
}
