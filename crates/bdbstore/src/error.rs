//! Storage-manager error type.

use std::fmt;

use pcmdisk::FsError;

/// Errors from the storage manager.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file-system failure.
    Fs(FsError),
    /// Key or value exceeds the supported maximum.
    TooLarge {
        /// Offending length in bytes.
        len: usize,
        /// Supported maximum.
        max: usize,
    },
    /// The data file is corrupt.
    Corrupt(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Fs(e) => write!(f, "file system error: {e}"),
            StoreError::TooLarge { len, max } => {
                write!(f, "item of {len} bytes exceeds maximum {max}")
            }
            StoreError::Corrupt(w) => write!(f, "corrupt store: {w}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for StoreError {
    fn from(e: FsError) -> Self {
        StoreError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StoreError::TooLarge { len: 10, max: 4 };
        assert!(e.to_string().contains("10"));
    }
}
