//! Centralized write-ahead log with group commit.
//!
//! All committers funnel through one log buffer protected by a single
//! mutex, and share `fsync`s via group commit: a committer whose records
//! are already covered by an in-flight flush waits for it instead of
//! issuing its own. This reproduces the behaviour the paper observed in
//! Berkeley DB (§6.3): throughput roughly doubles from one to two
//! threads (shared flushes) and then plateaus, because "the centralized
//! log buffer ... becomes the serialization bottleneck as I/O latency
//! becomes shorter"; the shared flush also *increases* per-commit
//! latency, the group-commit cost visible in Figure 4.

use parking_lot::{Condvar, Mutex};
use pcmdisk::SimpleFs;

use crate::error::StoreError;

/// A logical redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert or replace `key` with `value`.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Put { key, value } => {
                out.push(1);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(value);
            }
            WalRecord::Delete { key } => {
                out.push(2);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                out.extend_from_slice(key);
            }
        }
    }

    /// Decodes one record at `data[off..]`, returning it and the next
    /// offset, or `None` at a clean end / torn tail.
    pub fn decode(data: &[u8], off: usize) -> Option<(WalRecord, usize)> {
        if off + 9 > data.len() {
            return None;
        }
        let tag = data[off];
        let klen = u32::from_le_bytes(data[off + 1..off + 5].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(data[off + 5..off + 9].try_into().unwrap()) as usize;
        let body = off + 9;
        match tag {
            1 if body + klen + vlen <= data.len() => Some((
                WalRecord::Put {
                    key: data[body..body + klen].to_vec(),
                    value: data[body + klen..body + klen + vlen].to_vec(),
                },
                body + klen + vlen,
            )),
            2 if body + klen <= data.len() => Some((
                WalRecord::Delete {
                    key: data[body..body + klen].to_vec(),
                },
                body + klen,
            )),
            _ => None,
        }
    }
}

struct WalBuffer {
    /// Records appended but not yet written to the file.
    pending: Vec<u8>,
    /// Byte offset in the log file where `pending` begins.
    file_end: u64,
}

struct FlushState {
    /// LSN (file offset) up to which the log is durable.
    durable: u64,
    /// Whether a leader is currently flushing.
    flushing: bool,
}

/// The central WAL.
pub struct Wal {
    fs: SimpleFs,
    file: String,
    buffer: Mutex<WalBuffer>,
    flush: Mutex<FlushState>,
    cond: Condvar,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("file", &self.file).finish()
    }
}

impl Wal {
    /// Opens (creating if needed) the log file `file`.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn open(fs: SimpleFs, file: &str) -> Result<Wal, StoreError> {
        if !fs.exists(file) {
            fs.create(file)?;
        }
        let size = fs.size(file)?;
        Ok(Wal {
            fs,
            file: file.to_string(),
            buffer: Mutex::new(WalBuffer {
                pending: Vec::new(),
                file_end: size,
            }),
            flush: Mutex::new(FlushState {
                durable: size,
                flushing: false,
            }),
            cond: Condvar::new(),
        })
    }

    /// Appends a record and returns its commit LSN (not yet durable).
    pub fn append(&self, rec: &WalRecord) -> u64 {
        let mut buf = self.buffer.lock();
        rec.encode(&mut buf.pending);
        buf.file_end + buf.pending.len() as u64
    }

    /// Makes the log durable up to at least `lsn` — the group-commit
    /// point. One leader writes and fsyncs on behalf of every waiter
    /// whose records are covered.
    ///
    /// # Errors
    /// Propagates file-system errors from the leader's flush.
    pub fn commit(&self, lsn: u64) -> Result<(), StoreError> {
        let mut st = self.flush.lock();
        loop {
            if st.durable >= lsn {
                return Ok(());
            }
            if st.flushing {
                // Ride an in-flight group commit.
                self.cond.wait(&mut st);
                continue;
            }
            st.flushing = true;
            drop(st);

            // Leader: steal the buffered records and write them out.
            let (data, start) = {
                let mut buf = self.buffer.lock();
                let data = std::mem::take(&mut buf.pending);
                let start = buf.file_end;
                buf.file_end += data.len() as u64;
                (data, start)
            };
            let result: Result<(), StoreError> = (|| {
                if !data.is_empty() {
                    self.fs.pwrite(&self.file, start, &data)?;
                }
                self.fs.fsync(&self.file)?;
                Ok(())
            })();

            st = self.flush.lock();
            st.flushing = false;
            if result.is_ok() {
                st.durable = start + data.len() as u64;
            }
            self.cond.notify_all();
            result?;
        }
    }

    /// Current durable LSN.
    pub fn durable_lsn(&self) -> u64 {
        self.flush.lock().durable
    }

    /// Total log bytes (durable + pending), used to trigger checkpoints.
    pub fn size(&self) -> u64 {
        let buf = self.buffer.lock();
        buf.file_end + buf.pending.len() as u64
    }

    /// Reads every durable record for recovery.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn read_all(&self) -> Result<Vec<WalRecord>, StoreError> {
        let size = self.fs.size(&self.file)?;
        let mut data = vec![0u8; size as usize];
        let n = self.fs.pread(&self.file, 0, &mut data)?;
        data.truncate(n);
        let mut out = Vec::new();
        let mut off = 0usize;
        while let Some((rec, next)) = WalRecord::decode(&data, off) {
            out.push(rec);
            off = next;
        }
        Ok(out)
    }

    /// Truncates the log after a checkpoint.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn reset(&self) -> Result<(), StoreError> {
        let mut buf = self.buffer.lock();
        let mut st = self.flush.lock();
        self.fs.truncate(&self.file, 0)?;
        buf.pending.clear();
        buf.file_end = 0;
        st.durable = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmdisk::{DiskConfig, PcmDisk};
    use std::sync::Arc;

    fn wal() -> Wal {
        let fs = SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(4096)))).unwrap();
        Wal::open(fs, "wal.log").unwrap()
    }

    #[test]
    fn append_commit_read_roundtrip() {
        let w = wal();
        let r1 = WalRecord::Put {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        };
        let r2 = WalRecord::Delete { key: b"k".to_vec() };
        let lsn1 = w.append(&r1);
        let lsn2 = w.append(&r2);
        assert!(lsn2 > lsn1);
        w.commit(lsn2).unwrap();
        assert_eq!(w.read_all().unwrap(), vec![r1, r2]);
    }

    #[test]
    fn commit_is_idempotent_past_durable() {
        let w = wal();
        let lsn = w.append(&WalRecord::Delete { key: b"x".to_vec() });
        w.commit(lsn).unwrap();
        w.commit(lsn).unwrap();
        assert_eq!(w.durable_lsn(), lsn);
    }

    #[test]
    fn group_commit_shares_fsyncs() {
        // Give fsync a real (spin-emulated) cost so concurrent committers
        // overlap a flush in progress and ride it — group commit only
        // shows with non-zero I/O latency, as in the paper.
        let config = DiskConfig::paper_default(4096).with_write_latency_ns(50_000);
        let fs = SimpleFs::format(Arc::new(PcmDisk::new(config))).unwrap();
        let disk = Arc::clone(fs.disk());
        let w = Arc::new(Wal::open(fs, "wal.log").unwrap());
        let mut joins = Vec::new();
        for t in 0..4 {
            let w = Arc::clone(&w);
            joins.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let lsn = w.append(&WalRecord::Put {
                        key: format!("{t}-{i}").into_bytes(),
                        value: vec![0; 32],
                    });
                    w.commit(lsn).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (_, _, syncs, _, _) = disk.stats();
        assert!(
            syncs < 201,
            "group commit should batch some of the 200 commits, saw {syncs} syncs"
        );
        assert_eq!(w.read_all().unwrap().len(), 200);
    }

    #[test]
    fn reset_truncates() {
        let w = wal();
        let lsn = w.append(&WalRecord::Delete { key: b"x".to_vec() });
        w.commit(lsn).unwrap();
        w.reset().unwrap();
        assert!(w.read_all().unwrap().is_empty());
        assert_eq!(w.size(), 0);
    }

    #[test]
    fn torn_tail_ignored() {
        let fs = SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(4096)))).unwrap();
        let w = Wal::open(fs.clone(), "wal.log").unwrap();
        let lsn = w.append(&WalRecord::Put {
            key: b"good".to_vec(),
            value: b"v".to_vec(),
        });
        w.commit(lsn).unwrap();
        // Simulate a torn append: header claiming more bytes than exist.
        fs.pwrite("wal.log", lsn, &[1u8, 255, 0, 0, 0, 9, 9, 0, 0])
            .unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 1);
    }
}
