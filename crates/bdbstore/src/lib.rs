//! bdbstore — a Berkeley-DB-like transactional storage manager.
//!
//! The Mnemosyne paper compares durable memory transactions against
//! "Berkeley DB's optimized storage" running on the PCM-disk emulator
//! (§6.3): a disk-era design with page-granularity I/O, a central
//! write-ahead log with **group commit**, and a buffer cache. This crate
//! reproduces the performance-relevant structure of that baseline:
//!
//! * a **page-based hash table** (4 KB bucket pages, overflow chains,
//!   whole-page spill for large values) stored in a [`pcmdisk::SimpleFs`]
//!   file ([`page`], [`store`]);
//! * a **centralized log buffer** protected by one mutex, flushed with
//!   `fsync` and shared across committers via group commit ([`wal`]) —
//!   the very structure the paper identifies as Berkeley DB's >2-thread
//!   serialization bottleneck;
//! * logical redo recovery: the data file is checkpointed periodically,
//!   and on open the WAL's records are re-executed;
//! * an **ldbm mode** (no transactions, periodic dirty-page flushes) that
//!   models OpenLDAP's `back-ldbm` configuration (§6.2).

#![warn(missing_docs)]

pub mod error;
pub mod page;
pub mod store;
pub mod wal;

pub use error::StoreError;
pub use store::{BdbStore, Durability, StoreConfig};
