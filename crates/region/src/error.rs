//! Error type for region operations.

use std::fmt;
use std::io;

/// Errors from the region manager and libmnemosyne layers.
#[derive(Debug)]
pub enum RegionError {
    /// The SCM device is too small for the requested format.
    DeviceTooSmall {
        /// Bytes required.
        required: u64,
        /// Bytes available.
        available: u64,
    },
    /// Physical SCM frames are exhausted and nothing can be evicted.
    OutOfFrames,
    /// No free slot in the persistent region table.
    RegionTableFull,
    /// No free slot in the persistent inode table.
    InodeTableFull,
    /// A region with this name already exists (and creation was requested
    /// exclusively), or the existing region's length differs.
    RegionExists(String),
    /// The named region does not exist.
    NoSuchRegion(String),
    /// Virtual address space in the persistent range is exhausted.
    OutOfAddressSpace,
    /// Access to a virtual address with no region mapped.
    Unmapped(crate::VAddr),
    /// The persistent superblock is corrupt or from an incompatible version.
    BadSuperblock,
    /// A region or file name exceeds the stored-name limit or is empty.
    BadName(String),
    /// Underlying backing-file I/O failed.
    Io(io::Error),
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::DeviceTooSmall {
                required,
                available,
            } => write!(
                f,
                "SCM device too small: need {required} bytes, have {available}"
            ),
            RegionError::OutOfFrames => write!(f, "out of physical SCM frames"),
            RegionError::RegionTableFull => write!(f, "persistent region table is full"),
            RegionError::InodeTableFull => write!(f, "persistent inode table is full"),
            RegionError::RegionExists(n) => write!(f, "region '{n}' already exists"),
            RegionError::NoSuchRegion(n) => write!(f, "no region named '{n}'"),
            RegionError::OutOfAddressSpace => write!(f, "persistent address space exhausted"),
            RegionError::Unmapped(a) => write!(f, "access to unmapped address {a}"),
            RegionError::BadSuperblock => write!(f, "corrupt or incompatible SCM superblock"),
            RegionError::BadName(n) => write!(f, "invalid region name '{n}'"),
            RegionError::Io(e) => write!(f, "backing file I/O error: {e}"),
        }
    }
}

impl std::error::Error for RegionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegionError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RegionError {
    fn from(e: io::Error) -> Self {
        RegionError::Io(e)
    }
}

/// Result alias for region operations.
pub type Result<T> = std::result::Result<T, RegionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = RegionError::NoSuchRegion("heap".into());
        assert_eq!(e.to_string(), "no region named 'heap'");
        let e = RegionError::DeviceTooSmall {
            required: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let e = RegionError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
