//! The kernel region manager (§4.2).
//!
//! The real system extends the Linux virtual memory system with an SCM
//! zone, a `MAP_PERSIST` mmap flag and a *persistent mapping table* at the
//! base of physical SCM that records which file page each SCM frame holds.
//! At boot it scans the table, rebuilds kernel state, and places unclaimed
//! frames on a free list; under memory pressure it swaps persistent pages
//! out to their backing files.
//!
//! This module reproduces that machinery in-process. Kernel metadata
//! updates go through the simulated DMA path: the kernel is assumed to
//! order its own table writes correctly (write-through + fence), so they
//! are durable as issued.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use mnemosyne_obs::{Counter, Telemetry, Unit};
use mnemosyne_scm::{DmaHandle, PAddr, ScmSim};

use crate::aspace::AspaceInner;
use crate::error::Result;
use crate::files::FileStore;
use crate::layout::{Layout, INODE_CAP, MAGIC, NAME_BYTES, VERSION};
use crate::{RegionError, PAGE_SIZE};

/// Identifier of a backing file in the persistent inode table. Zero means
/// "no file" (a free slot).
pub type FileId = u64;

struct ManagerState {
    free_frames: Vec<u64>,
    /// `(file, page) → frame` for pages currently resident in SCM. Survives
    /// reboot via the persistent mapping table; accesses to these pages at
    /// process start are *soft faults* that only update the page table.
    resident: HashMap<(FileId, u64), u64>,
    /// Volatile mirror of the persistent inode table.
    inodes: HashMap<FileId, String>,
    next_file_id: FileId,
}

struct ManagerInner {
    sim: ScmSim,
    dma: DmaHandle,
    layout: Layout,
    files: FileStore,
    state: Mutex<ManagerState>,
    aspaces: Mutex<Vec<Weak<AspaceInner>>>,
    metrics: ManagerMetrics,
}

/// Kernel-side region telemetry (registered under `region.*`).
struct ManagerMetrics {
    /// Hard page faults: pages brought in from a backing file.
    page_ins: Counter,
    /// Resident pages written back and released under memory pressure.
    evictions: Counter,
}

impl ManagerMetrics {
    fn new(telemetry: &Telemetry) -> ManagerMetrics {
        ManagerMetrics {
            page_ins: telemetry.counter("region.page_ins", Unit::Count),
            evictions: telemetry.counter("region.evictions", Unit::Count),
        }
    }
}

/// Shared handle to the region manager. Cloning is cheap.
#[derive(Clone)]
pub struct RegionManager {
    inner: Arc<ManagerInner>,
}

impl std::fmt::Debug for RegionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("RegionManager")
            .field("frames", &self.inner.layout.frame_count)
            .field("free", &st.free_frames.len())
            .field("resident", &st.resident.len())
            .finish()
    }
}

impl RegionManager {
    /// Boots the region manager on `sim`, with backing files stored under
    /// `dir`. Fresh media is formatted; otherwise the persistent mapping
    /// and inode tables are scanned to reconstruct frame ownership — the
    /// OS-boot reincarnation step measured in §6.3.2.
    ///
    /// # Errors
    /// Fails if the device is too small, the superblock is corrupt, or the
    /// directory is unusable.
    pub fn boot(sim: &ScmSim, dir: &Path) -> Result<RegionManager> {
        let layout = Layout::for_device(sim.size())?;
        let dma = sim.dma();
        let files = FileStore::new(dir);

        let mut sb = [0u8; 32];
        dma.read(PAddr(0), &mut sb);
        let magic = u64::from_le_bytes(sb[0..8].try_into().unwrap());
        let mut state = ManagerState {
            free_frames: Vec::new(),
            resident: HashMap::new(),
            inodes: HashMap::new(),
            next_file_id: 1,
        };

        if magic != MAGIC {
            // Fresh device: format.
            let zero_map = vec![0u8; (layout.inode_base.0 - layout.map_base.0) as usize];
            dma.write(layout.map_base, &zero_map);
            let zero_inodes = vec![0u8; (INODE_CAP * crate::layout::INODE_ENTRY_BYTES) as usize];
            dma.write(layout.inode_base, &zero_inodes);
            let mut header = [0u8; 32];
            header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
            header[8..16].copy_from_slice(&VERSION.to_le_bytes());
            header[16..24].copy_from_slice(&layout.frame_count.to_le_bytes());
            header[24..32].copy_from_slice(&INODE_CAP.to_le_bytes());
            dma.write(PAddr(0), &header);
            state.free_frames = (0..layout.frame_count).rev().collect();
        } else {
            let version = u64::from_le_bytes(sb[8..16].try_into().unwrap());
            let frames = u64::from_le_bytes(sb[16..24].try_into().unwrap());
            if version != VERSION || frames != layout.frame_count {
                return Err(RegionError::BadSuperblock);
            }
            // Scan the persistent mapping table: claimed frames become
            // resident pages, the rest go on the free list.
            for frame in 0..layout.frame_count {
                let mut e = [0u8; 16];
                dma.read(layout.map_entry(frame), &mut e);
                let fid = u64::from_le_bytes(e[0..8].try_into().unwrap());
                let off = u64::from_le_bytes(e[8..16].try_into().unwrap());
                if fid == 0 {
                    state.free_frames.push(frame);
                } else {
                    state.resident.insert((fid, off), frame);
                }
            }
            // Scan the inode table to recover file names.
            for slot in 0..INODE_CAP {
                let mut e = [0u8; 16];
                dma.read(layout.inode_entry(slot), &mut e);
                let fid = u64::from_le_bytes(e[0..8].try_into().unwrap());
                if fid == 0 {
                    continue;
                }
                let name_len = u64::from_le_bytes(e[8..16].try_into().unwrap()) as usize;
                let mut name = vec![0u8; name_len.min(NAME_BYTES)];
                dma.read(layout.inode_entry(slot).add(16), &mut name);
                let name = String::from_utf8_lossy(&name).into_owned();
                state.next_file_id = state.next_file_id.max(fid + 1);
                state.inodes.insert(fid, name);
            }
        }

        let metrics = ManagerMetrics::new(sim.telemetry());
        Ok(RegionManager {
            inner: Arc::new(ManagerInner {
                sim: sim.clone(),
                dma,
                layout,
                files,
                state: Mutex::new(state),
                aspaces: Mutex::new(Vec::new()),
                metrics,
            }),
        })
    }

    /// The underlying simulated machine.
    pub fn sim(&self) -> &ScmSim {
        &self.inner.sim
    }

    /// The machine's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        self.inner.sim.telemetry()
    }

    /// The backing-file store (region directory).
    pub fn files(&self) -> &FileStore {
        &self.inner.files
    }

    /// Total SCM frames managed.
    pub fn frame_count(&self) -> u64 {
        self.inner.layout.frame_count
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> usize {
        self.inner.state.lock().free_frames.len()
    }

    /// Registers an address space for page-table invalidation on eviction.
    pub(crate) fn register_aspace(&self, a: &Arc<AspaceInner>) {
        self.inner.aspaces.lock().push(Arc::downgrade(a));
    }

    /// Returns the id of the backing file `name`, registering it in the
    /// persistent inode table (and creating it on disk) if new.
    ///
    /// # Errors
    /// Fails if the name is invalid or the inode table is full.
    pub fn register_file(&self, name: &str) -> Result<FileId> {
        FileStore::validate_name(name)?;
        let mut st = self.inner.state.lock();
        if let Some((&fid, _)) = st.inodes.iter().find(|(_, n)| n.as_str() == name) {
            return Ok(fid);
        }
        // Find a free inode slot.
        let used: Vec<FileId> = st.inodes.keys().copied().collect();
        if used.len() as u64 >= INODE_CAP {
            return Err(RegionError::InodeTableFull);
        }
        let slot = (0..INODE_CAP)
            .find(|s| {
                let mut e = [0u8; 8];
                self.inner
                    .dma
                    .read(self.inner.layout.inode_entry(*s), &mut e);
                u64::from_le_bytes(e) == 0
            })
            .ok_or(RegionError::InodeTableFull)?;
        let fid = st.next_file_id;
        st.next_file_id += 1;
        self.inner.files.create(name)?;
        let addr = self.inner.layout.inode_entry(slot);
        // Write name first, id last: a torn create leaves id==0 (free).
        self.inner
            .dma
            .write(addr.add(8), &(name.len() as u64).to_le_bytes());
        self.inner.dma.write(addr.add(16), name.as_bytes());
        self.inner.dma.write(addr, &fid.to_le_bytes());
        st.inodes.insert(fid, name.to_string());
        Ok(fid)
    }

    /// Looks up a registered backing file by name.
    pub fn lookup_file(&self, name: &str) -> Option<FileId> {
        let st = self.inner.state.lock();
        st.inodes
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(&fid, _)| fid)
    }

    /// Name of a registered file.
    pub fn file_name(&self, fid: FileId) -> Option<String> {
        self.inner.state.lock().inodes.get(&fid).cloned()
    }

    /// Ensures page `page_off` of file `fid` is resident in an SCM frame
    /// and returns the frame's physical base address.
    ///
    /// A page already resident (e.g. left over from before a reboot) is a
    /// *soft fault*: no data is copied. Otherwise a frame is allocated
    /// (evicting another page if necessary), the page is read from the
    /// backing file, and the persistent mapping table is updated.
    ///
    /// # Errors
    /// Fails if no frame can be freed or on backing-file I/O errors.
    pub fn page_in(&self, fid: FileId, page_off: u64) -> Result<PAddr> {
        let mut st = self.inner.state.lock();
        if let Some(&frame) = st.resident.get(&(fid, page_off)) {
            return Ok(self.inner.layout.frame_addr(frame));
        }
        let frame = match st.free_frames.pop() {
            Some(f) => f,
            None => self.evict_locked(&mut st)?,
        };
        let name = st
            .inodes
            .get(&fid)
            .cloned()
            .ok_or_else(|| RegionError::NoSuchRegion(format!("file #{fid}")))?;
        let mut page = [0u8; PAGE_SIZE as usize];
        self.inner.files.read_page(&name, page_off, &mut page)?;
        self.inner.metrics.page_ins.inc();
        let frame_addr = self.inner.layout.frame_addr(frame);
        self.inner.dma.write(frame_addr, &page);
        // Publish the mapping: <file, offset> first, so a torn update can
        // only lose the claim (data remains in the file), never fabricate
        // one pointing at garbage... the entry is two words; write offset
        // then id, as id != 0 is what claims the frame.
        let entry = self.inner.layout.map_entry(frame);
        self.inner.dma.write(entry.add(8), &page_off.to_le_bytes());
        self.inner.dma.write(entry, &fid.to_le_bytes());
        st.resident.insert((fid, page_off), frame);
        Ok(frame_addr)
    }

    /// Evicts one resident page to its backing file and returns the freed
    /// frame. Caller holds the state lock.
    fn evict_locked(&self, st: &mut ManagerState) -> Result<u64> {
        let (&(fid, off), &frame) = st.resident.iter().next().ok_or(RegionError::OutOfFrames)?;
        let name = st
            .inodes
            .get(&fid)
            .cloned()
            .ok_or(RegionError::OutOfFrames)?;
        let frame_addr = self.inner.layout.frame_addr(frame);
        // Make sure everything the program wrote is in media before copying.
        self.inner.sim.drain_wc_all();
        self.inner.dma.flush_range(frame_addr, PAGE_SIZE);
        let mut page = [0u8; PAGE_SIZE as usize];
        self.inner.dma.read(frame_addr, &mut page);
        self.inner.files.write_page(&name, off, &page)?;
        // Release the claim (id word to zero) only after the file is synced.
        self.inner
            .dma
            .write(self.inner.layout.map_entry(frame), &0u64.to_le_bytes());
        st.resident.remove(&(fid, off));
        self.inner.metrics.evictions.inc();
        // Shoot down any page-table entries referring to this page.
        let aspaces = self.inner.aspaces.lock();
        for w in aspaces.iter() {
            if let Some(a) = w.upgrade() {
                a.invalidate(fid, off);
            }
        }
        Ok(frame)
    }

    /// Forces eviction of `n` resident pages (used by tests and the
    /// reincarnation experiment to create memory pressure).
    ///
    /// # Errors
    /// Fails if fewer than `n` pages are resident.
    pub fn reclaim(&self, n: usize) -> Result<()> {
        let mut st = self.inner.state.lock();
        for _ in 0..n {
            let frame = self.evict_locked(&mut st)?;
            st.free_frames.push(frame);
        }
        Ok(())
    }

    /// Discards all resident pages of `fid` (without write-back) and
    /// removes the file from the inode table and the disk. Used by
    /// `punmap` when a region is destroyed.
    ///
    /// # Errors
    /// Propagates backing-file I/O errors.
    pub fn drop_file(&self, fid: FileId) -> Result<()> {
        let mut st = self.inner.state.lock();
        let pages: Vec<(FileId, u64)> = st
            .resident
            .keys()
            .filter(|(f, _)| *f == fid)
            .copied()
            .collect();
        for key in pages {
            let frame = st.resident.remove(&key).unwrap();
            self.inner
                .dma
                .write(self.inner.layout.map_entry(frame), &0u64.to_le_bytes());
            st.free_frames.push(frame);
            let aspaces = self.inner.aspaces.lock();
            for w in aspaces.iter() {
                if let Some(a) = w.upgrade() {
                    a.invalidate(key.0, key.1);
                }
            }
        }
        if let Some(name) = st.inodes.remove(&fid) {
            // Clear the inode slot.
            for slot in 0..INODE_CAP {
                let mut e = [0u8; 8];
                self.inner
                    .dma
                    .read(self.inner.layout.inode_entry(slot), &mut e);
                if u64::from_le_bytes(e) == fid {
                    self.inner
                        .dma
                        .write(self.inner.layout.inode_entry(slot), &0u64.to_le_bytes());
                    break;
                }
            }
            self.inner.files.remove(&name)?;
        }
        Ok(())
    }

    /// Writes every resident page back to its backing file without
    /// releasing frames — an orderly checkpoint used at graceful shutdown.
    ///
    /// # Errors
    /// Propagates backing-file I/O errors.
    pub fn checkpoint(&self) -> Result<()> {
        let st = self.inner.state.lock();
        self.inner.sim.drain_wc_all();
        for (&(fid, off), &frame) in st.resident.iter() {
            let name = match st.inodes.get(&fid) {
                Some(n) => n.clone(),
                None => continue,
            };
            let frame_addr = self.inner.layout.frame_addr(frame);
            self.inner.dma.flush_range(frame_addr, PAGE_SIZE);
            let mut page = [0u8; PAGE_SIZE as usize];
            self.inner.dma.read(frame_addr, &mut page);
            self.inner.files.write_page(&name, off, &page)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne_scm::{CrashPolicy, ScmConfig};
    use std::fs;
    use std::path::PathBuf;

    fn setup(size: u64) -> (ScmSim, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "mnemo-mgr-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        (ScmSim::new(ScmConfig::for_testing(size)), dir)
    }

    #[test]
    fn fresh_boot_formats_and_frees_all_frames() {
        let (sim, dir) = setup(4 << 20);
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        assert_eq!(mgr.free_frames() as u64, mgr.frame_count());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn page_in_and_soft_fault() {
        let (sim, dir) = setup(4 << 20);
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let fid = mgr.register_file("t.region").unwrap();
        let a1 = mgr.page_in(fid, 0).unwrap();
        let a2 = mgr.page_in(fid, 0).unwrap();
        assert_eq!(a1, a2, "second fault must be soft");
        assert_eq!(mgr.free_frames() as u64, mgr.frame_count() - 1);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mapping_survives_crash_and_reboot() {
        let (sim, dir) = setup(4 << 20);
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let fid = mgr.register_file("t.region").unwrap();
        let frame = mgr.page_in(fid, 3).unwrap();
        sim.dma().write(frame, b"persisted");
        // Crash the machine; kernel DMA writes are already durable.
        sim.crash(CrashPolicy::DropAll);
        let img = sim.image();
        let sim2 = ScmSim::from_image(&img, ScmConfig::for_testing(4 << 20));
        let mgr2 = RegionManager::boot(&sim2, &dir).unwrap();
        let fid2 = mgr2.lookup_file("t.region").unwrap();
        assert_eq!(fid2, fid);
        let frame2 = mgr2.page_in(fid2, 3).unwrap();
        let mut buf = [0u8; 9];
        sim2.dma().read(frame2, &mut buf);
        assert_eq!(&buf, b"persisted");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn eviction_round_trips_through_backing_file() {
        let (sim, dir) = setup(4 << 20);
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let fid = mgr.register_file("t.region").unwrap();
        let frame = mgr.page_in(fid, 7).unwrap();
        sim.dma().write(frame, &[0xabu8; 64]);
        mgr.reclaim(1).unwrap();
        assert_eq!(mgr.free_frames() as u64, mgr.frame_count());
        // Fault it back: data must come back from the file.
        let frame2 = mgr.page_in(fid, 7).unwrap();
        let mut buf = [0u8; 64];
        sim.dma().read(frame2, &mut buf);
        assert_eq!(buf, [0xabu8; 64]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pressure_evicts_automatically() {
        let (sim, dir) = setup(1 << 20); // ~200 frames
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let fid = mgr.register_file("big.region").unwrap();
        let total = mgr.frame_count() + 10;
        for off in 0..total {
            let frame = mgr.page_in(fid, off).unwrap();
            sim.dma().write(frame, &off.to_le_bytes());
        }
        // All pages readable, including evicted ones.
        for off in (0..total).rev() {
            let frame = mgr.page_in(fid, off).unwrap();
            let mut b = [0u8; 8];
            sim.dma().read(frame, &mut b);
            assert_eq!(u64::from_le_bytes(b), off, "page {off} corrupted by swap");
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn register_file_is_idempotent() {
        let (sim, dir) = setup(4 << 20);
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let a = mgr.register_file("same.region").unwrap();
        let b = mgr.register_file("same.region").unwrap();
        assert_eq!(a, b);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn drop_file_frees_frames_and_deletes() {
        let (sim, dir) = setup(4 << 20);
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let fid = mgr.register_file("gone.region").unwrap();
        mgr.page_in(fid, 0).unwrap();
        mgr.page_in(fid, 1).unwrap();
        mgr.drop_file(fid).unwrap();
        assert_eq!(mgr.free_frames() as u64, mgr.frame_count());
        assert!(mgr.lookup_file("gone.region").is_none());
        assert!(!mgr.files().exists("gone.region"));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bad_name_rejected() {
        let (sim, dir) = setup(4 << 20);
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        assert!(matches!(
            mgr.register_file("a/b"),
            Err(RegionError::BadName(_))
        ));
        fs::remove_dir_all(dir).ok();
    }
}
