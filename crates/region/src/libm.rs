//! The `libmnemosyne` region layer (§4.2).
//!
//! `libmnemosyne` "creates and records the persistent regions for a
//! process": it reserves the first 16 KB of the static region for a
//! **region table** whose entries record `<address, length, backing file,
//! metadata>`, recreates previously allocated regions when the process
//! starts, and destroys partially created ones. The table doubles as an
//! **intention log**: an entry is first written uncommitted, the backing
//! file is created, and only then is the committed flag set with a durable
//! single-word update — so a crash at any point either yields a fully
//! usable region or one that startup can garbage-collect.

use mnemosyne_obs::{Counter, MaxGauge, Telemetry, Unit};
use parking_lot::Mutex;

use crate::aspace::AddressSpace;
use crate::error::Result;
use crate::files::FileStore;
use crate::manager::RegionManager;
use crate::pmem::PMem;
use crate::{RegionError, VAddr, PAGE_SIZE, PERSISTENT_BASE};

/// Magic word identifying an initialised region table ("MNEMORGT").
const TABLE_MAGIC: u64 = u64::from_le_bytes(*b"MNEMORGT");

/// Bytes reserved for the region table at the base of the static region.
pub const REGION_TABLE_BYTES: u64 = 16 * 1024;

/// Bytes per region-table slot.
const SLOT_BYTES: u64 = 64;

/// Maximum region-name length storable in a slot.
pub const REGION_NAME_MAX: usize = 32;

/// Number of region-table slots.
pub const REGION_SLOTS: u64 = REGION_TABLE_BYTES / SLOT_BYTES - 1;

/// Name of the static region's backing file.
pub const STATIC_REGION_NAME: &str = "static.region";

/// Committed flag in a slot's `flags` word.
const FLAG_COMMITTED: u64 = 1;

/// A mapped persistent region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name (also the backing file name).
    pub name: String,
    /// First virtual address.
    pub addr: VAddr,
    /// Length in bytes (whole pages).
    pub len: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    index: u64,
    region: Region,
    committed: bool,
}

/// The process's region registry: static region + `pmap`/`punmap`.
pub struct Regions {
    aspace: AddressSpace,
    static_len: u64,
    /// Volatile mirror of committed table entries.
    table: Mutex<Vec<Slot>>,
    metrics: RegionsMetrics,
}

/// `libmnemosyne`-side region telemetry (registered under `region.*`).
struct RegionsMetrics {
    /// Successful `pmap` calls that created a new region (reopens of an
    /// existing region are not counted).
    pmaps: Counter,
    /// Successful `punmap` calls.
    punmaps: Counter,
    /// High-water mark of pages committed across all dynamic regions.
    mapped_pages: MaxGauge,
    /// Successful in-place `pgrow` calls that actually widened a region.
    grows: Counter,
    /// Bytes added by those grows.
    grow_bytes: Counter,
}

impl RegionsMetrics {
    fn new(telemetry: &Telemetry) -> RegionsMetrics {
        RegionsMetrics {
            pmaps: telemetry.counter("region.pmaps", Unit::Count),
            punmaps: telemetry.counter("region.punmaps", Unit::Count),
            mapped_pages: telemetry.max_gauge("region.mapped_pages", Unit::Count),
            grows: telemetry.counter("region.grow.calls", Unit::Count),
            grow_bytes: telemetry.counter("region.grow.bytes", Unit::Bytes),
        }
    }
}

impl std::fmt::Debug for Regions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Regions")
            .field("static_len", &self.static_len)
            .field("regions", &self.table.lock().len())
            .finish()
    }
}

impl Regions {
    /// Opens (or initialises) the process's persistent regions:
    ///
    /// 1. maps the static region (`static.region`, `static_len` bytes) at
    ///    the base of the persistent range;
    /// 2. initialises the region table on first run;
    /// 3. remaps every committed dynamic region recorded in the table;
    /// 4. destroys partially created regions (intention-log recovery).
    ///
    /// Returns the registry plus a [`PMem`] handle for the calling thread.
    ///
    /// # Errors
    /// Fails on I/O errors, exhausted tables, or a corrupt static region.
    pub fn open(mgr: &RegionManager, static_len: u64) -> Result<(Regions, PMem)> {
        let static_len = static_len
            .max(REGION_TABLE_BYTES + PAGE_SIZE)
            .div_ceil(PAGE_SIZE)
            * PAGE_SIZE;
        let aspace = AddressSpace::new(mgr);
        let static_fid = mgr.register_file(STATIC_REGION_NAME)?;
        let base = VAddr(PERSISTENT_BASE);
        aspace.map(base, static_len / PAGE_SIZE, static_fid)?;
        let pmem = PMem::new(&aspace);

        let regions = Regions {
            aspace: aspace.clone(),
            static_len,
            table: Mutex::new(Vec::new()),
            metrics: RegionsMetrics::new(mgr.telemetry()),
        };

        if pmem.read_u64(base) != TABLE_MAGIC {
            // First run (or a crash before the magic became durable):
            // zero the table area, then publish the magic word.
            let zeros = vec![0u8; REGION_TABLE_BYTES as usize];
            pmem.store(base, &zeros);
            pmem.flush_range(base, REGION_TABLE_BYTES);
            pmem.fence();
            pmem.store_u64(base, TABLE_MAGIC);
            pmem.flush(base);
            pmem.fence();
        } else {
            // Scan slots: remap committed regions, clean up the rest.
            let mut table = regions.table.lock();
            for index in 0..REGION_SLOTS {
                let slot_addr = Self::slot_addr(index);
                let addr = VAddr(pmem.read_u64(slot_addr));
                if addr.is_null() {
                    continue;
                }
                let len = pmem.read_u64(slot_addr.add(8));
                let flags = pmem.read_u64(slot_addr.add(16));
                let name_len = pmem.read_u64(slot_addr.add(24)) as usize;
                let mut name_buf = vec![0u8; name_len.min(REGION_NAME_MAX)];
                pmem.read(slot_addr.add(32), &mut name_buf);
                let name = String::from_utf8_lossy(&name_buf).into_owned();
                if flags & FLAG_COMMITTED != 0 {
                    let fid = mgr.register_file(&name)?;
                    aspace.map(addr, len / PAGE_SIZE, fid)?;
                    table.push(Slot {
                        index,
                        region: Region { name, addr, len },
                        committed: true,
                    });
                } else {
                    // Partially created: delete the backing file and free
                    // the slot.
                    if let Some(fid) = mgr.lookup_file(&name) {
                        mgr.drop_file(fid)?;
                    } else {
                        mgr.files().remove(&name)?;
                    }
                    Self::clear_slot(&pmem, index);
                }
            }
        }
        Ok((regions, pmem))
    }

    /// Virtual address of region-table slot `index` (slot 0 starts after
    /// the 64-byte header).
    fn slot_addr(index: u64) -> VAddr {
        VAddr(PERSISTENT_BASE + SLOT_BYTES + index * SLOT_BYTES)
    }

    fn clear_slot(pmem: &PMem, index: u64) {
        let a = Self::slot_addr(index);
        pmem.store(a, &[0u8; SLOT_BYTES as usize]);
        pmem.flush_range(a, SLOT_BYTES);
        pmem.fence();
    }

    /// The address space all regions are mapped into.
    pub fn aspace(&self) -> &AddressSpace {
        &self.aspace
    }

    /// The machine's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        self.aspace.manager().telemetry()
    }

    /// Creates a fresh [`PMem`] handle for another thread.
    pub fn pmem_handle(&self) -> PMem {
        PMem::new(&self.aspace)
    }

    /// Usable static area after the region table: `(address, length)`.
    /// This is where `pstatic` variables live.
    pub fn static_area(&self) -> (VAddr, u64) {
        (
            VAddr(PERSISTENT_BASE + REGION_TABLE_BYTES),
            self.static_len - REGION_TABLE_BYTES,
        )
    }

    /// All committed regions.
    pub fn regions(&self) -> Vec<Region> {
        self.table.lock().iter().map(|s| s.region.clone()).collect()
    }

    /// Looks up a committed region by name.
    pub fn find(&self, name: &str) -> Option<Region> {
        self.table
            .lock()
            .iter()
            .find(|s| s.region.name == name)
            .map(|s| s.region.clone())
    }

    /// Creates (or reopens) the dynamic persistent region `name` of `len`
    /// bytes — the paper's `pmap`. Reopening an existing region returns it
    /// unchanged provided `len` does not exceed its recorded size.
    ///
    /// # Errors
    /// Fails if the name is invalid, the table or address space is full,
    /// or an existing region is smaller than `len`.
    pub fn pmap(&self, name: &str, len: u64, pmem: &PMem) -> Result<Region> {
        FileStore::validate_name(name)?;
        if name.len() > REGION_NAME_MAX {
            return Err(RegionError::BadName(name.to_string()));
        }
        if name == STATIC_REGION_NAME {
            return Err(RegionError::RegionExists(name.to_string()));
        }
        let len = len.max(PAGE_SIZE).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut table = self.table.lock();
        if let Some(slot) = table.iter().find(|s| s.region.name == name) {
            if slot.region.len >= len {
                return Ok(slot.region.clone());
            }
            return Err(RegionError::RegionExists(name.to_string()));
        }

        // Allocate a slot and a virtual range (first fit above everything
        // mapped so far).
        let used: Vec<u64> = table.iter().map(|s| s.index).collect();
        let index = (0..REGION_SLOTS)
            .find(|i| !used.contains(i))
            .ok_or(RegionError::RegionTableFull)?;
        let mut addr = VAddr(PERSISTENT_BASE + self.static_len);
        let mut sorted: Vec<&Slot> = table.iter().collect();
        sorted.sort_by_key(|s| s.region.addr);
        for s in sorted {
            if addr.add(len) <= s.region.addr {
                break;
            }
            addr = VAddr(s.region.addr.0 + s.region.len);
        }
        if addr.add(len).0 > PERSISTENT_BASE + crate::PERSISTENT_SIZE {
            return Err(RegionError::OutOfAddressSpace);
        }

        // Intention-log protocol: record the uncommitted entry durably,
        // create the file, map it, then commit with one atomic word.
        let slot_addr = Self::slot_addr(index);
        let mut rec = [0u8; SLOT_BYTES as usize];
        rec[0..8].copy_from_slice(&addr.0.to_le_bytes());
        rec[8..16].copy_from_slice(&len.to_le_bytes());
        rec[16..24].copy_from_slice(&0u64.to_le_bytes()); // uncommitted
        rec[24..32].copy_from_slice(&(name.len() as u64).to_le_bytes());
        rec[32..32 + name.len()].copy_from_slice(name.as_bytes());
        pmem.store(slot_addr, &rec);
        pmem.flush_range(slot_addr, SLOT_BYTES);
        pmem.fence();

        let mgr = self.aspace.manager().clone();
        let fid = mgr.register_file(name)?;
        self.aspace.map(addr, len / PAGE_SIZE, fid)?;

        pmem.store_u64(slot_addr.add(16), FLAG_COMMITTED);
        pmem.flush(slot_addr.add(16));
        pmem.fence();

        let region = Region {
            name: name.to_string(),
            addr,
            len,
        };
        table.push(Slot {
            index,
            region: region.clone(),
            committed: true,
        });
        self.metrics.pmaps.inc();
        let pages: u64 = table.iter().map(|s| s.region.len / PAGE_SIZE).sum();
        self.metrics.mapped_pages.record(pages);
        Ok(region)
    }

    /// Paper-faithful variant of [`Regions::pmap`] that also writes the new
    /// region's address into the persistent pointer cell `cell` *before*
    /// committing, so the region can never be leaked by a crash (§3.4).
    ///
    /// # Errors
    /// As [`Regions::pmap`].
    pub fn pmap_into(&self, name: &str, len: u64, cell: VAddr, pmem: &PMem) -> Result<Region> {
        let region = self.pmap(name, len, pmem)?;
        pmem.store_u64(cell, region.addr.0);
        pmem.flush(cell);
        pmem.fence();
        Ok(region)
    }

    /// Grows the dynamic region `name` in place to `new_len` bytes
    /// (page-rounded) without a restart. A no-op when the region is
    /// already that large.
    ///
    /// Growth is **atomic**: the new length becomes visible to future
    /// boots only through one durable single-word update of the region
    /// table's `len` field, so a crash at any point recovers to either
    /// the old or the new size — never to a torn in-between. The added
    /// pages read as zeros until written (backing files extend sparsely).
    ///
    /// In-place growth requires the virtual range directly above the
    /// region to be free. Regions are placed first-fit from the bottom,
    /// so this typically only holds for the topmost region; callers that
    /// need unconditional growth map an extension region instead (see the
    /// heap's extension-area scheme).
    ///
    /// # Errors
    /// Fails if the region does not exist, the range above it is
    /// occupied, or the address space is exhausted.
    pub fn pgrow(&self, name: &str, new_len: u64, pmem: &PMem) -> Result<Region> {
        if name == STATIC_REGION_NAME {
            return Err(RegionError::BadName(name.to_string()));
        }
        let new_len = new_len.max(PAGE_SIZE).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut table = self.table.lock();
        let pos = table
            .iter()
            .position(|s| s.region.name == name)
            .ok_or_else(|| RegionError::NoSuchRegion(name.to_string()))?;
        let old = table[pos].region.clone();
        if new_len <= old.len {
            return Ok(old);
        }
        let end = old.addr.add(new_len);
        if end.0 > PERSISTENT_BASE + crate::PERSISTENT_SIZE {
            return Err(RegionError::OutOfAddressSpace);
        }
        if let Some(blocker) = table
            .iter()
            .find(|s| s.region.name != name && s.region.addr >= old.addr && s.region.addr < end)
        {
            return Err(RegionError::RegionExists(blocker.region.name.clone()));
        }

        // Widen the volatile mapping first: unmap the old VMA (resident
        // pages stay in SCM, keyed by file page) and remap the same file
        // over the wider range.
        let mgr = self.aspace.manager().clone();
        let fid = mgr.register_file(name)?;
        self.aspace.unmap(old.addr)?;
        if let Err(e) = self.aspace.map(old.addr, new_len / PAGE_SIZE, fid) {
            // Restore the old mapping so a failed grow leaves the region
            // usable; the table slot was never touched.
            self.aspace.map(old.addr, old.len / PAGE_SIZE, fid)?;
            return Err(e);
        }

        // The commit point: one durable word update of the slot's length.
        // Before this lands, a reboot sees the old size; after, the new.
        let slot_addr = Self::slot_addr(table[pos].index);
        pmem.store_u64(slot_addr.add(8), new_len);
        pmem.flush(slot_addr.add(8));
        pmem.fence();

        table[pos].region.len = new_len;
        let region = table[pos].region.clone();
        self.metrics.grows.inc();
        self.metrics.grow_bytes.add(new_len - old.len);
        let pages: u64 = table.iter().map(|s| s.region.len / PAGE_SIZE).sum();
        self.metrics.mapped_pages.record(pages);
        Ok(region)
    }

    /// Deletes the dynamic region `name` — the paper's `punmap`: unmaps the
    /// range, frees its SCM frames and removes the backing file.
    ///
    /// # Errors
    /// Fails if the region does not exist.
    pub fn punmap(&self, name: &str, pmem: &PMem) -> Result<()> {
        let mut table = self.table.lock();
        let pos = table
            .iter()
            .position(|s| s.region.name == name)
            .ok_or_else(|| RegionError::NoSuchRegion(name.to_string()))?;
        let slot = table.remove(pos);
        // Uncommit first: if we crash mid-teardown, startup finishes the
        // destruction instead of resurrecting a half-deleted region.
        pmem.store_u64(Self::slot_addr(slot.index).add(16), 0);
        pmem.flush(Self::slot_addr(slot.index).add(16));
        pmem.fence();
        self.aspace.unmap(slot.region.addr)?;
        let mgr = self.aspace.manager();
        if let Some(fid) = mgr.lookup_file(name) {
            mgr.drop_file(fid)?;
        }
        Self::clear_slot(pmem, slot.index);
        self.metrics.punmaps.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};
    use std::fs;
    use std::path::{Path, PathBuf};

    fn setup() -> (ScmSim, RegionManager, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "mnemo-libm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(8 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        (sim, mgr, dir)
    }

    fn reboot(sim: &ScmSim, dir: &Path) -> (ScmSim, RegionManager) {
        let img = sim.image();
        let sim2 = ScmSim::from_image(&img, ScmConfig::for_testing(8 << 20));
        let mgr2 = RegionManager::boot(&sim2, dir).unwrap();
        (sim2, mgr2)
    }

    #[test]
    fn pmap_allocates_distinct_ranges() {
        let (_sim, mgr, dir) = setup();
        let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let a = rg.pmap("a", 8192, &pmem).unwrap();
        let b = rg.pmap("b", 4096, &pmem).unwrap();
        assert!(b.addr.0 >= a.addr.0 + a.len || a.addr.0 >= b.addr.0 + b.len);
        assert_eq!(rg.regions().len(), 2);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pmap_is_idempotent_by_name() {
        let (_sim, mgr, dir) = setup();
        let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let a1 = rg.pmap("a", 8192, &pmem).unwrap();
        let a2 = rg.pmap("a", 8192, &pmem).unwrap();
        assert_eq!(a1, a2);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn committed_region_survives_crash_reboot() {
        let (sim, mgr, dir) = setup();
        let addr = {
            let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
            let r = rg.pmap("data", 8192, &pmem).unwrap();
            pmem.store_u64(r.addr.add(128), 4242);
            pmem.flush(r.addr.add(128));
            pmem.fence();
            r.addr
        };
        sim.crash(CrashPolicy::DropAll);
        let (_sim2, mgr2) = reboot(&sim, &dir);
        let (rg2, pmem2) = Regions::open(&mgr2, 1 << 16).unwrap();
        let r2 = rg2.find("data").expect("region must be recreated");
        assert_eq!(r2.addr, addr, "regions map at fixed addresses");
        assert_eq!(pmem2.read_u64(addr.add(128)), 4242);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn static_area_persists() {
        let (sim, mgr, dir) = setup();
        {
            let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
            let (base, len) = rg.static_area();
            assert!(len >= PAGE_SIZE);
            pmem.store_u64(base, 77);
            pmem.flush(base);
            pmem.fence();
        }
        sim.crash(CrashPolicy::DropAll);
        let (_sim2, mgr2) = reboot(&sim, &dir);
        let (rg2, pmem2) = Regions::open(&mgr2, 1 << 16).unwrap();
        let (base, _) = rg2.static_area();
        assert_eq!(pmem2.read_u64(base), 77);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn punmap_removes_region_and_file() {
        let (_sim, mgr, dir) = setup();
        let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        rg.pmap("tmp", 4096, &pmem).unwrap();
        assert!(mgr.files().exists("tmp"));
        rg.punmap("tmp", &pmem).unwrap();
        assert!(rg.find("tmp").is_none());
        assert!(!mgr.files().exists("tmp"));
        assert!(rg.punmap("tmp", &pmem).is_err());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pmap_into_stores_address_in_cell() {
        let (_sim, mgr, dir) = setup();
        let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let (static_base, _) = rg.static_area();
        let cell = static_base.add(64);
        let r = rg.pmap_into("anchored", 4096, cell, &pmem).unwrap();
        assert_eq!(pmem.read_u64(cell), r.addr.0);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopen_after_graceful_drop_sees_regions() {
        let (_sim, mgr, dir) = setup();
        {
            let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
            rg.pmap("keep", 4096, &pmem).unwrap();
        }
        // New process, same boot.
        let (rg2, _pmem2) = Regions::open(&mgr, 1 << 16).unwrap();
        assert!(rg2.find("keep").is_some());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pgrow_extends_region_and_survives_reboot() {
        let (sim, mgr, dir) = setup();
        let addr = {
            let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
            let r = rg.pmap("growme", 8192, &pmem).unwrap();
            pmem.store_u64(r.addr, 11);
            pmem.flush(r.addr);
            pmem.fence();
            let g = rg.pgrow("growme", 32768, &pmem).unwrap();
            assert_eq!(g.addr, r.addr, "growth is in place");
            assert_eq!(g.len, 32768);
            // Old data intact, new pages readable (zero-filled), and the
            // new tail is writable.
            assert_eq!(pmem.read_u64(r.addr), 11);
            assert_eq!(pmem.read_u64(r.addr.add(16384)), 0);
            pmem.store_u64(r.addr.add(32768 - 8), 22);
            pmem.flush(r.addr.add(32768 - 8));
            pmem.fence();
            r.addr
        };
        sim.crash(CrashPolicy::DropAll);
        let (_sim2, mgr2) = reboot(&sim, &dir);
        let (rg2, pmem2) = Regions::open(&mgr2, 1 << 16).unwrap();
        let r2 = rg2.find("growme").expect("region survives");
        assert_eq!(r2.len, 32768, "grown length is durable");
        assert_eq!(pmem2.read_u64(addr), 11);
        assert_eq!(pmem2.read_u64(addr.add(32768 - 8)), 22);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pgrow_refused_when_range_above_is_occupied() {
        let (_sim, mgr, dir) = setup();
        let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let a = rg.pmap("low", 8192, &pmem).unwrap();
        rg.pmap("high", 4096, &pmem).unwrap();
        assert!(matches!(
            rg.pgrow("low", 65536, &pmem),
            Err(RegionError::RegionExists(_))
        ));
        // The failed grow left the region intact and mapped.
        pmem.store_u64(a.addr, 5);
        assert_eq!(rg.find("low").unwrap().len, 8192);
        // The topmost region can still grow.
        assert_eq!(rg.pgrow("high", 16384, &pmem).unwrap().len, 16384);
        assert!(rg.pgrow("missing", 4096, &pmem).is_err());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pgrow_same_size_is_a_noop() {
        let (_sim, mgr, dir) = setup();
        let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let r = rg.pmap("same", 8192, &pmem).unwrap();
        assert_eq!(rg.pgrow("same", 4096, &pmem).unwrap(), r);
        assert_eq!(rg.pgrow("same", 8192, &pmem).unwrap(), r);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn name_too_long_rejected() {
        let (_sim, mgr, dir) = setup();
        let (rg, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let long = "x".repeat(REGION_NAME_MAX + 1);
        assert!(rg.pmap(&long, 4096, &pmem).is_err());
        fs::remove_dir_all(dir).ok();
    }
}
