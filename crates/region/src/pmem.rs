//! [`PMem`]: the per-thread persistent-memory handle.
//!
//! This is the user-mode face of the whole memory stack: Mnemosyne's four
//! hardware primitives (§4.1) plus loads, addressed by [`VAddr`]. Accesses
//! are translated through the owning [`AddressSpace`] (splitting at page
//! boundaries) and then issued on a per-thread [`MemHandle`].
//!
//! Like a real load or store, an access to an unmapped address is fatal:
//! the methods panic with the analogue of a segmentation fault. Callers
//! that want to probe use [`PMem::try_translate`].

use mnemosyne_obs::Telemetry;
use mnemosyne_scm::sim::HandleStopwatch;
use mnemosyne_scm::{EmulationMode, MemHandle, PAddr};

use crate::aspace::AddressSpace;
use crate::error::Result;
use crate::{VAddr, PAGE_SIZE};

/// A thread's handle to persistent memory: translation + hardware
/// primitives. `Send` but not `Sync`/`Clone` (owns per-thread buffers);
/// create one per thread with [`PMem::new`] or
/// [`crate::Regions::pmem_handle`].
pub struct PMem {
    aspace: AddressSpace,
    mem: MemHandle,
}

impl std::fmt::Debug for PMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PMem").field("mem", &self.mem).finish()
    }
}

impl PMem {
    /// Creates a handle over `aspace` for the current thread.
    pub fn new(aspace: &AddressSpace) -> PMem {
        PMem {
            mem: aspace.manager().sim().handle(),
            aspace: aspace.clone(),
        }
    }

    /// The owning address space.
    pub fn aspace(&self) -> &AddressSpace {
        &self.aspace
    }

    /// Translates without faulting in the page on failure.
    ///
    /// # Errors
    /// Fails if no region is mapped at `addr`.
    pub fn try_translate(&self, addr: VAddr) -> Result<PAddr> {
        self.aspace.translate(addr)
    }

    #[inline]
    fn xlate(&self, addr: VAddr) -> PAddr {
        match self.aspace.translate(addr) {
            Ok(p) => p,
            Err(e) => panic!("persistent-memory fault at {addr}: {e}"),
        }
    }

    /// Applies `f` to each page-contiguous chunk of `[addr, addr+len)`.
    fn for_chunks(&self, addr: VAddr, len: usize, mut f: impl FnMut(PAddr, usize, usize)) {
        let mut off = 0usize;
        while off < len {
            let a = addr.add(off as u64);
            let in_page = (PAGE_SIZE - a.page_offset()) as usize;
            let n = in_page.min(len - off);
            let p = self.xlate(a);
            f(p, off, n);
            off += n;
        }
    }

    /// Cacheable store (`mov`).
    ///
    /// # Panics
    /// Panics on an unmapped address (segfault analogue).
    pub fn store(&self, addr: VAddr, data: &[u8]) {
        self.for_chunks(addr, data.len(), |p, off, n| {
            self.mem.store(p, &data[off..off + n]);
        });
    }

    /// Cacheable store of one 64-bit word.
    #[inline]
    pub fn store_u64(&self, addr: VAddr, value: u64) {
        self.store(addr, &value.to_le_bytes());
    }

    /// Streaming write-through store (`movntq`) of one word; durable after
    /// the next [`PMem::fence`].
    ///
    /// # Panics
    /// Panics on an unmapped or unaligned address.
    #[inline]
    pub fn wtstore_u64(&self, addr: VAddr, value: u64) {
        debug_assert!(addr.is_word_aligned());
        self.mem.wtstore_u64(self.xlate(addr), value);
    }

    /// Streaming store of a word-aligned buffer (length a multiple of 8).
    ///
    /// # Panics
    /// Panics on an unmapped/unaligned address or a ragged length.
    pub fn wtstore(&self, addr: VAddr, data: &[u8]) {
        assert!(addr.is_word_aligned() && data.len().is_multiple_of(8));
        self.for_chunks(addr, data.len(), |p, off, n| {
            self.mem.wtstore(p, &data[off..off + n]);
        });
    }

    /// Flushes the cache line containing `addr` (`clflush`).
    ///
    /// # Panics
    /// Panics on an unmapped address.
    pub fn flush(&self, addr: VAddr) {
        self.mem.flush(self.xlate(addr));
    }

    /// Flushes every line overlapping `[addr, addr+len)`.
    pub fn flush_range(&self, addr: VAddr, len: u64) {
        if len == 0 {
            return;
        }
        // Walk line by line, page-safely.
        let mut a = VAddr(addr.0 - addr.0 % 64);
        let end = addr.add(len);
        while a < end {
            self.flush(a);
            a = a.add(64);
        }
    }

    /// Memory fence (`mfence`): drains streaming stores, stalls until
    /// outstanding writes are stable in SCM.
    #[inline]
    pub fn fence(&self) {
        self.mem.fence();
    }

    /// Crash-point poll for wait loops that issue no durability
    /// primitives (e.g. a thread stalled waiting for log space): if a
    /// fault plan has fired on the device, this thread dies here instead
    /// of spinning forever.
    #[inline]
    pub fn poll_crash(&self) {
        self.mem.poll_crash();
    }

    /// Load of `buf.len()` bytes.
    ///
    /// # Panics
    /// Panics on an unmapped address.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) {
        self.for_chunks(addr, buf.len(), |p, off, n| {
            self.mem.read(p, &mut buf[off..off + n]);
        });
    }

    /// Load of one 64-bit word.
    #[inline]
    pub fn read_u64(&self, addr: VAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Nanoseconds of modelled SCM delay accounted on this thread.
    pub fn accounted_ns(&self) -> u64 {
        self.mem.accounted_ns()
    }

    /// Starts a stopwatch in this handle's time domain (wall clock or
    /// virtual clock depending on the emulation mode).
    pub fn stopwatch(&self) -> HandleStopwatch<'_> {
        self.mem.stopwatch()
    }

    /// The emulation mode in effect.
    pub fn mode(&self) -> EmulationMode {
        self.mem.mode()
    }

    /// The telemetry registry of the machine this handle addresses.
    pub fn telemetry(&self) -> &Telemetry {
        self.mem.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::RegionManager;
    use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};
    use std::fs;
    use std::path::PathBuf;

    fn setup() -> (ScmSim, AddressSpace, PMem, VAddr, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "mnemo-pmem-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(4 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let aspace = AddressSpace::new(&mgr);
        let fid = mgr.register_file("pm.region").unwrap();
        let base = VAddr::from_vpage(50);
        aspace.map(base, 16, fid).unwrap();
        let pmem = PMem::new(&aspace);
        (sim, aspace, pmem, base, dir)
    }

    #[test]
    fn store_read_roundtrip_across_pages() {
        let (_sim, _as_, pmem, base, dir) = setup();
        let data: Vec<u8> = (0..255u8).cycle().take(10_000).collect();
        let addr = base.add(PAGE_SIZE - 100); // crosses 2+ pages
        pmem.store(addr, &data);
        let mut back = vec![0u8; data.len()];
        pmem.read(addr, &mut back);
        assert_eq!(back, data);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn durable_word_survives_crash() {
        let (sim, aspace, pmem, base, dir) = setup();
        pmem.store_u64(base.add(8), 0xfeed);
        pmem.flush(base.add(8));
        pmem.fence();
        sim.crash(CrashPolicy::DropAll);
        let pmem2 = PMem::new(&aspace);
        assert_eq!(pmem2.read_u64(base.add(8)), 0xfeed);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn undurable_word_lost_on_crash() {
        let (sim, aspace, pmem, base, dir) = setup();
        pmem.store_u64(base.add(8), 0xfeed);
        sim.crash(CrashPolicy::DropAll);
        let pmem2 = PMem::new(&aspace);
        assert_eq!(pmem2.read_u64(base.add(8)), 0);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn wtstore_spanning_pages() {
        let (_sim, _as_, pmem, base, dir) = setup();
        let addr = base.add(PAGE_SIZE - 16);
        let data: Vec<u8> = (0..32).collect();
        pmem.wtstore(addr, &data);
        pmem.fence();
        let mut back = vec![0u8; 32];
        pmem.read(addr, &mut back);
        assert_eq!(back, data);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic(expected = "persistent-memory fault")]
    fn unmapped_store_segfaults() {
        let (_sim, _as_, pmem, _base, _dir) = setup();
        pmem.store_u64(VAddr::from_vpage(4000), 1);
    }

    #[test]
    fn flush_range_covers_span() {
        let (sim, aspace, pmem, base, dir) = setup();
        let data = [7u8; 300];
        pmem.store(base.add(60), &data);
        pmem.flush_range(base.add(60), 300);
        pmem.fence();
        sim.crash(CrashPolicy::DropAll);
        let pmem2 = PMem::new(&aspace);
        let mut back = [0u8; 300];
        pmem2.read(base.add(60), &mut back);
        assert_eq!(back, [7u8; 300]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pmem_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<PMem>();
    }
}
