//! Virtual addresses and the reserved persistent range.
//!
//! libmnemosyne "allocates all regions in a one terabyte reserved range of
//! virtual address space ... this allows a quick determination of whether
//! an address refers to persistent data" (§4.2). The transaction system
//! relies on exactly that range check to decide which writes need logging.

use std::fmt;

use crate::PAGE_SIZE;

/// Base of the reserved persistent virtual range (power-of-two aligned).
pub const PERSISTENT_BASE: u64 = 0x1000_0000_0000;

/// Size of the reserved persistent virtual range: one terabyte.
pub const PERSISTENT_SIZE: u64 = 1 << 40;

/// A virtual address. Addresses inside
/// `[PERSISTENT_BASE, PERSISTENT_BASE + PERSISTENT_SIZE)` refer to
/// persistent regions; all other addresses are ordinary volatile memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

impl VAddr {
    /// The null persistent address. Page zero of the persistent range is
    /// never handed out, so `VAddr(0)` and `VAddr(PERSISTENT_BASE)` are both
    /// safe "no address" sentinels; we use plain 0.
    pub const NULL: VAddr = VAddr(0);

    /// Whether this address lies in the reserved persistent range — the
    /// §4.2 quick check.
    #[inline]
    pub fn is_persistent(self) -> bool {
        // A single wrapping subtraction and compare, as a range this large
        // and aligned permits.
        self.0.wrapping_sub(PERSISTENT_BASE) < PERSISTENT_SIZE
    }

    /// Whether this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Virtual page number within the persistent range.
    ///
    /// # Panics
    /// Panics (debug) if the address is not persistent.
    #[inline]
    pub fn vpage(self) -> u64 {
        debug_assert!(self.is_persistent(), "vpage of non-persistent address");
        (self.0 - PERSISTENT_BASE) / PAGE_SIZE
    }

    /// Byte offset within the containing page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// First address of the given persistent virtual page.
    #[inline]
    pub fn from_vpage(vpage: u64) -> VAddr {
        VAddr(PERSISTENT_BASE + vpage * PAGE_SIZE)
    }

    /// Returns the address advanced by `bytes`.
    // Not `std::ops::Add`: the operand is a byte count, not another
    // address, and callers read `a.add(8)` as pointer arithmetic.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, bytes: u64) -> VAddr {
        VAddr(self.0 + bytes)
    }

    /// Byte distance from `base` (which must not exceed `self`).
    #[inline]
    pub fn offset_from(self, base: VAddr) -> u64 {
        debug_assert!(self.0 >= base.0);
        self.0 - base.0
    }

    /// Whether the address is 8-byte aligned.
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(8)
    }

    /// Rounds up to the next multiple of `align` (a power of two).
    #[inline]
    pub fn align_up(self, align: u64) -> VAddr {
        debug_assert!(align.is_power_of_two());
        VAddr((self.0 + align - 1) & !(align - 1))
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl From<u64> for VAddr {
    fn from(v: u64) -> Self {
        VAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_check_is_a_range_check() {
        assert!(!VAddr(0).is_persistent());
        assert!(!VAddr(PERSISTENT_BASE - 1).is_persistent());
        assert!(VAddr(PERSISTENT_BASE).is_persistent());
        assert!(VAddr(PERSISTENT_BASE + PERSISTENT_SIZE - 1).is_persistent());
        assert!(!VAddr(PERSISTENT_BASE + PERSISTENT_SIZE).is_persistent());
        assert!(!VAddr(u64::MAX).is_persistent());
    }

    #[test]
    fn vpage_roundtrip() {
        let a = VAddr::from_vpage(17);
        assert!(a.is_persistent());
        assert_eq!(a.vpage(), 17);
        assert_eq!(a.page_offset(), 0);
        assert_eq!(a.add(100).vpage(), 17);
        assert_eq!(a.add(100).page_offset(), 100);
        assert_eq!(a.add(PAGE_SIZE).vpage(), 18);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(VAddr(100).align_up(64), VAddr(128));
        assert_eq!(VAddr(128).align_up(64), VAddr(128));
    }

    #[test]
    fn null_is_not_persistent() {
        assert!(VAddr::NULL.is_null());
        assert!(!VAddr::NULL.is_persistent());
    }
}
