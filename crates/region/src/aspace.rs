//! Per-process address spaces: VMAs, page tables and fault handling.
//!
//! A process maps each persistent region as a VMA over a backing file.
//! Translation from [`VAddr`] to a physical frame goes through a page
//! table; a miss triggers a fault that asks the region manager to bring
//! the page in (a *soft* fault if the page is already resident in SCM from
//! before a restart — the fast path §4.2 describes).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mnemosyne_scm::PAddr;

use crate::error::Result;
use crate::manager::{FileId, RegionManager};
use crate::{RegionError, VAddr};

/// One mapped range of persistent virtual pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Vma {
    pages: u64,
    file_id: FileId,
}

pub(crate) struct AspaceInner {
    mgr: RegionManager,
    /// `vpage_start → Vma`, non-overlapping.
    vmas: RwLock<BTreeMap<u64, Vma>>,
    /// `vpage → frame base` for installed pages.
    pt: RwLock<HashMap<u64, PAddr>>,
    /// Reverse index for eviction shootdown: `(file, page) → vpage`.
    installed: Mutex<HashMap<(FileId, u64), u64>>,
}

impl AspaceInner {
    /// Removes any page-table entry for `(fid, off)` — called by the
    /// region manager when it evicts the page.
    pub(crate) fn invalidate(&self, fid: FileId, off: u64) {
        if let Some(vpage) = self.installed.lock().remove(&(fid, off)) {
            self.pt.write().remove(&vpage);
        }
    }
}

/// A process's view of the persistent address range. Cloning shares the
/// page table (threads of one process).
#[derive(Clone)]
pub struct AddressSpace {
    inner: Arc<AspaceInner>,
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddressSpace")
            .field("vmas", &self.inner.vmas.read().len())
            .field("installed", &self.inner.pt.read().len())
            .finish()
    }
}

impl AddressSpace {
    /// Creates an empty address space registered with `mgr` for eviction
    /// shootdown.
    pub fn new(mgr: &RegionManager) -> AddressSpace {
        let inner = Arc::new(AspaceInner {
            mgr: mgr.clone(),
            vmas: RwLock::new(BTreeMap::new()),
            pt: RwLock::new(HashMap::new()),
            installed: Mutex::new(HashMap::new()),
        });
        mgr.register_aspace(&inner);
        AddressSpace { inner }
    }

    /// The owning region manager.
    pub fn manager(&self) -> &RegionManager {
        &self.inner.mgr
    }

    /// Maps `pages` persistent virtual pages starting at `addr` onto file
    /// `fid` (page 0 of the file at `addr`).
    ///
    /// # Errors
    /// Fails if the range overlaps an existing mapping or is not
    /// page-aligned and persistent.
    pub fn map(&self, addr: VAddr, pages: u64, fid: FileId) -> Result<()> {
        if !addr.is_persistent() || addr.page_offset() != 0 || pages == 0 {
            return Err(RegionError::Unmapped(addr));
        }
        let start = addr.vpage();
        let mut vmas = self.inner.vmas.write();
        // Overlap check against neighbours.
        if let Some((&s, v)) = vmas.range(..=start).next_back() {
            if s + v.pages > start {
                return Err(RegionError::RegionExists(format!("vma at vpage {s}")));
            }
        }
        if let Some((&s, _)) = vmas.range(start..).next() {
            if start + pages > s {
                return Err(RegionError::RegionExists(format!("vma at vpage {s}")));
            }
        }
        vmas.insert(
            start,
            Vma {
                pages,
                file_id: fid,
            },
        );
        Ok(())
    }

    /// Unmaps the VMA starting at `addr`, dropping its page-table entries.
    /// Resident pages stay in SCM (still recorded in the persistent
    /// mapping table) unless the caller also drops the backing file.
    ///
    /// # Errors
    /// Fails if no VMA starts at `addr`.
    pub fn unmap(&self, addr: VAddr) -> Result<()> {
        let start = addr.vpage();
        let vma = self
            .inner
            .vmas
            .write()
            .remove(&start)
            .ok_or(RegionError::Unmapped(addr))?;
        let mut pt = self.inner.pt.write();
        let mut installed = self.inner.installed.lock();
        for vp in start..start + vma.pages {
            pt.remove(&vp);
            installed.remove(&(vma.file_id, vp - start));
        }
        Ok(())
    }

    /// Translates a persistent virtual address to its physical address,
    /// faulting the page in if necessary.
    ///
    /// # Errors
    /// Fails if no VMA covers the address or paging fails.
    pub fn translate(&self, addr: VAddr) -> Result<PAddr> {
        if !addr.is_persistent() {
            return Err(RegionError::Unmapped(addr));
        }
        let vpage = addr.vpage();
        if let Some(&frame) = self.inner.pt.read().get(&vpage) {
            return Ok(frame.add(addr.page_offset()));
        }
        self.fault(vpage).map(|f| f.add(addr.page_offset()))
    }

    /// Page-fault slow path.
    fn fault(&self, vpage: u64) -> Result<PAddr> {
        let (fid, file_page) = {
            let vmas = self.inner.vmas.read();
            let (&start, vma) = vmas
                .range(..=vpage)
                .next_back()
                .filter(|(&s, v)| vpage < s + v.pages)
                .ok_or(RegionError::Unmapped(VAddr::from_vpage(vpage)))?;
            (vma.file_id, vpage - start)
        };
        let frame = self.inner.mgr.page_in(fid, file_page)?;
        self.inner.pt.write().insert(vpage, frame);
        self.inner.installed.lock().insert((fid, file_page), vpage);
        Ok(frame)
    }

    /// Pre-faults every page of the VMA starting at `addr` (used by
    /// recovery code that is about to scan a whole region, and by the
    /// reincarnation experiment to measure remap cost).
    ///
    /// # Errors
    /// Fails if no VMA starts at `addr` or paging fails.
    pub fn prefault(&self, addr: VAddr) -> Result<()> {
        let start = addr.vpage();
        let pages = {
            let vmas = self.inner.vmas.read();
            vmas.get(&start).ok_or(RegionError::Unmapped(addr))?.pages
        };
        for vp in start..start + pages {
            if !self.inner.pt.read().contains_key(&vp) {
                self.fault(vp)?;
            }
        }
        Ok(())
    }

    /// Number of pages currently installed in the page table.
    pub fn installed_pages(&self) -> usize {
        self.inner.pt.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;
    use mnemosyne_scm::{ScmConfig, ScmSim};
    use std::fs;
    use std::path::PathBuf;

    fn setup() -> (ScmSim, RegionManager, AddressSpace, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "mnemo-as-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(4 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let aspace = AddressSpace::new(&mgr);
        (sim, mgr, aspace, dir)
    }

    #[test]
    fn translate_faults_then_hits() {
        let (_sim, mgr, aspace, dir) = setup();
        let fid = mgr.register_file("a.region").unwrap();
        let base = VAddr::from_vpage(100);
        aspace.map(base, 4, fid).unwrap();
        let p1 = aspace.translate(base.add(5)).unwrap();
        let p2 = aspace.translate(base.add(5)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(aspace.installed_pages(), 1);
        // Different page of same VMA gets a different frame.
        let p3 = aspace.translate(base.add(PAGE_SIZE)).unwrap();
        assert_ne!(p1.line_index() / 64, p3.line_index() / 64);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn overlapping_map_rejected() {
        let (_sim, mgr, aspace, dir) = setup();
        let fid = mgr.register_file("a.region").unwrap();
        aspace.map(VAddr::from_vpage(10), 4, fid).unwrap();
        assert!(aspace.map(VAddr::from_vpage(12), 4, fid).is_err());
        assert!(aspace.map(VAddr::from_vpage(8), 4, fid).is_err());
        aspace.map(VAddr::from_vpage(14), 2, fid).unwrap();
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unmapped_access_fails() {
        let (_sim, _mgr, aspace, dir) = setup();
        assert!(matches!(
            aspace.translate(VAddr::from_vpage(5)),
            Err(RegionError::Unmapped(_))
        ));
        assert!(aspace.translate(VAddr(42)).is_err(), "volatile address");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unmap_removes_translation() {
        let (_sim, mgr, aspace, dir) = setup();
        let fid = mgr.register_file("a.region").unwrap();
        let base = VAddr::from_vpage(10);
        aspace.map(base, 2, fid).unwrap();
        aspace.translate(base).unwrap();
        aspace.unmap(base).unwrap();
        assert!(aspace.translate(base).is_err());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn eviction_shootdown_refaults() {
        let (sim, mgr, aspace, dir) = setup();
        let fid = mgr.register_file("a.region").unwrap();
        let base = VAddr::from_vpage(10);
        aspace.map(base, 1, fid).unwrap();
        let p = aspace.translate(base).unwrap();
        sim.dma().write(p, &[9u8; 8]);
        mgr.reclaim(1).unwrap();
        assert_eq!(aspace.installed_pages(), 0, "shootdown must clear the PTE");
        let p2 = aspace.translate(base).unwrap();
        let mut b = [0u8; 8];
        sim.dma().read(p2, &mut b);
        assert_eq!(b, [9u8; 8]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn prefault_installs_all_pages() {
        let (_sim, mgr, aspace, dir) = setup();
        let fid = mgr.register_file("a.region").unwrap();
        let base = VAddr::from_vpage(20);
        aspace.map(base, 8, fid).unwrap();
        aspace.prefault(base).unwrap();
        assert_eq!(aspace.installed_pages(), 8);
        fs::remove_dir_all(dir).ok();
    }
}
