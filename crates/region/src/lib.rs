//! Persistent regions: the kernel *region manager* and the user-mode
//! `libmnemosyne` region layer (§3.1, §4.2 of the paper).
//!
//! A *persistent region* is a segment of virtual memory whose pages live in
//! SCM and survive application and system crashes. This crate provides:
//!
//! * [`VAddr`]: virtual addresses inside the reserved one-terabyte
//!   persistent range, so [`VAddr::is_persistent`] is a single range check
//!   (§4.2);
//! * [`manager::RegionManager`]: the kernel side — an SCM frame allocator,
//!   the **persistent mapping table** stored at the base of physical SCM
//!   (`<scm_frame, file, page_offset>` triples), swap of SCM pages to
//!   backing files under memory pressure, and boot-time reconstruction;
//! * [`aspace::AddressSpace`]: a process's page table with demand paging
//!   and soft faults for pages already resident in SCM;
//! * [`pmem::PMem`]: the per-thread handle applications use — the four
//!   hardware primitives plus loads, addressed by [`VAddr`];
//! * [`libm::Regions`]: the `libmnemosyne` layer — the region table kept in
//!   the first 16 KB of the static region, `pmap`/`punmap`, and the
//!   intention-log protocol that makes region creation atomic.
//!
//! # Example
//!
//! ```
//! use mnemosyne_scm::{ScmSim, ScmConfig};
//! use mnemosyne_region::{RegionManager, Regions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("mnemo-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let sim = ScmSim::new(ScmConfig::for_testing(4 << 20));
//! let mgr = RegionManager::boot(&sim, &dir)?;
//! let (regions, pmem) = Regions::open(&mgr, 1 << 16)?;
//! let r = regions.pmap("scratch", 8192, &pmem)?;
//! pmem.store_u64(r.addr, 42);
//! pmem.flush(r.addr);
//! pmem.fence();
//! assert_eq!(pmem.read_u64(r.addr), 42);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod aspace;
pub mod error;
pub mod files;
pub mod layout;
pub mod libm;
pub mod manager;
pub mod pmem;
pub mod vaddr;

pub use aspace::AddressSpace;
pub use error::RegionError;
pub use libm::{Region, Regions};
pub use manager::RegionManager;
pub use pmem::PMem;
pub use vaddr::{VAddr, PERSISTENT_BASE, PERSISTENT_SIZE};

/// Page size used by the region manager (matches the host's 4 KB pages).
pub const PAGE_SIZE: u64 = 4096;
