//! Physical layout of kernel metadata at the base of SCM.
//!
//! The region manager stores its persistent mapping table "at the base of
//! physical SCM" (§4.2). We lay out:
//!
//! ```text
//! +0                superblock   (magic, version, frame count, inode cap)
//! +64               mapping table  frame_count × 16 B  <file_id, page_off>
//! +…                inode table    inode_cap × 144 B   <file_id, name>
//! +… (page aligned) frames         frame_count × 4 KB
//! ```
//!
//! `file_id == 0` marks a free mapping or inode slot. The kernel updates
//! these structures with write-through stores and fences of its own; the
//! simulation routes them through the DMA path, which has the same
//! durability (immediately stable in media).

use crate::{RegionError, PAGE_SIZE};
use mnemosyne_scm::PAddr;

/// Superblock magic: "MNEMOSYN" little-endian.
pub const MAGIC: u64 = u64::from_le_bytes(*b"MNEMOSYN");

/// On-media format version.
pub const VERSION: u64 = 1;

/// Bytes reserved for the superblock.
pub const SUPERBLOCK_BYTES: u64 = 64;

/// Bytes per mapping-table entry: `<file_id, page_off>` (the frame number
/// is the entry index).
pub const MAP_ENTRY_BYTES: u64 = 16;

/// Maximum stored backing-file name length.
pub const NAME_BYTES: usize = 128;

/// Bytes per inode-table entry: id, name length, name bytes.
pub const INODE_ENTRY_BYTES: u64 = 16 + NAME_BYTES as u64;

/// Number of inode slots.
pub const INODE_CAP: u64 = 256;

/// Computed physical layout for a device of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of 4 KB SCM frames available to regions.
    pub frame_count: u64,
    /// Physical address of the mapping table.
    pub map_base: PAddr,
    /// Physical address of the inode table.
    pub inode_base: PAddr,
    /// Physical address of frame 0 (page aligned).
    pub frames_base: PAddr,
}

impl Layout {
    /// Computes the layout for a device of `device_size` bytes.
    ///
    /// # Errors
    /// Returns [`RegionError::DeviceTooSmall`] if fewer than 4 frames fit.
    pub fn for_device(device_size: u64) -> Result<Layout, RegionError> {
        let map_base = SUPERBLOCK_BYTES;
        // Solve for the largest frame_count such that
        // header + map + inodes + frames fits.
        let inode_bytes = INODE_CAP * INODE_ENTRY_BYTES;
        let mut frame_count = device_size / PAGE_SIZE;
        loop {
            let inode_base = map_base + frame_count * MAP_ENTRY_BYTES;
            let frames_base = (inode_base + inode_bytes).div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let end = frames_base + frame_count * PAGE_SIZE;
            if end <= device_size {
                if frame_count < 4 {
                    return Err(RegionError::DeviceTooSmall {
                        required: frames_base + 4 * PAGE_SIZE,
                        available: device_size,
                    });
                }
                return Ok(Layout {
                    frame_count,
                    map_base: PAddr(map_base),
                    inode_base: PAddr(inode_base),
                    frames_base: PAddr(frames_base),
                });
            }
            if frame_count == 0 {
                return Err(RegionError::DeviceTooSmall {
                    required: map_base + inode_bytes + 4 * PAGE_SIZE,
                    available: device_size,
                });
            }
            frame_count -= 1;
        }
    }

    /// Physical address of mapping-table entry `frame`.
    #[inline]
    pub fn map_entry(&self, frame: u64) -> PAddr {
        debug_assert!(frame < self.frame_count);
        self.map_base.add(frame * MAP_ENTRY_BYTES)
    }

    /// Physical address of inode-table entry `slot`.
    #[inline]
    pub fn inode_entry(&self, slot: u64) -> PAddr {
        debug_assert!(slot < INODE_CAP);
        self.inode_base.add(slot * INODE_ENTRY_BYTES)
    }

    /// Physical base address of frame `frame`.
    #[inline]
    pub fn frame_addr(&self, frame: u64) -> PAddr {
        debug_assert!(frame < self.frame_count, "frame {frame} out of range");
        self.frames_base.add(frame * PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_fits_device() {
        let size = 4 << 20;
        let l = Layout::for_device(size).unwrap();
        assert!(l.frame_count > 900, "4 MB should give ~1000 frames");
        assert_eq!(l.frames_base.0 % PAGE_SIZE, 0);
        let end = l.frames_base.0 + l.frame_count * PAGE_SIZE;
        assert!(end <= size);
        // Tables do not overlap frames.
        assert!(l.inode_base.0 + INODE_CAP * INODE_ENTRY_BYTES <= l.frames_base.0);
        assert!(l.map_base.0 + l.frame_count * MAP_ENTRY_BYTES <= l.inode_base.0);
    }

    #[test]
    fn tiny_device_rejected() {
        assert!(matches!(
            Layout::for_device(8192),
            Err(RegionError::DeviceTooSmall { .. })
        ));
    }

    #[test]
    fn entry_addresses_are_disjoint() {
        let l = Layout::for_device(4 << 20).unwrap();
        assert_eq!(l.map_entry(1).0 - l.map_entry(0).0, MAP_ENTRY_BYTES);
        assert_eq!(l.inode_entry(1).0 - l.inode_entry(0).0, INODE_ENTRY_BYTES);
        assert_eq!(l.frame_addr(1).0 - l.frame_addr(0).0, PAGE_SIZE);
    }

    #[test]
    fn magic_is_ascii() {
        assert_eq!(&MAGIC.to_le_bytes(), b"MNEMOSYN");
    }
}
