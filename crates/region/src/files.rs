//! Backing files: where SCM pages swap to and the persistent inode table.
//!
//! Every persistent region is associated with a backing file so that (i)
//! SCM pages can be evicted under memory pressure and (ii) a leak in one
//! program cannot monopolise physical SCM (§3.4). The kernel's inode table
//! (stored in SCM, see [`crate::layout`]) records `file_id → name`; names
//! are resolved relative to the region directory, the analogue of the
//! paper's `MNEMOSYNE_REGION_PATH` environment variable.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::Result;
use crate::{RegionError, PAGE_SIZE};

/// Resolves file ids to host files under the region directory and performs
/// page-granularity I/O on them.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Creates a store rooted at `dir`; the directory must exist.
    pub fn new(dir: &Path) -> Self {
        FileStore {
            dir: dir.to_path_buf(),
        }
    }

    /// The region directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Creates (or opens, truncating nothing) the backing file `name`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn create(&self, name: &str) -> Result<()> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        Ok(())
    }

    /// Whether the backing file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    /// Deletes the backing file `name` (missing files are fine: a crash can
    /// interleave anywhere in the create protocol).
    ///
    /// # Errors
    /// Propagates I/O errors other than `NotFound`.
    pub fn remove(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(RegionError::Io(e)),
        }
    }

    /// Reads page `page_off` (a page index) of `name` into `buf`. Reads
    /// past end-of-file yield zeros, matching demand-zero semantics of a
    /// fresh region.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn read_page(
        &self,
        name: &str,
        page_off: u64,
        buf: &mut [u8; PAGE_SIZE as usize],
    ) -> Result<()> {
        buf.fill(0);
        let mut f = match File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(RegionError::Io(e)),
        };
        let len = f.metadata()?.len();
        let start = page_off * PAGE_SIZE;
        if start >= len {
            return Ok(());
        }
        f.seek(SeekFrom::Start(start))?;
        let n = ((len - start).min(PAGE_SIZE)) as usize;
        f.read_exact(&mut buf[..n])?;
        Ok(())
    }

    /// Writes page `page_off` of `name`, extending the file as needed, and
    /// syncs it (the swap path must be durable before the mapping entry is
    /// released).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_page(
        &self,
        name: &str,
        page_off: u64,
        buf: &[u8; PAGE_SIZE as usize],
    ) -> Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.path(name))?;
        let start = page_off * PAGE_SIZE;
        let len = f.metadata()?.len();
        if len < start {
            f.set_len(start)?;
        }
        f.seek(SeekFrom::Start(start))?;
        f.write_all(buf)?;
        f.sync_data()?;
        Ok(())
    }

    /// Validates a region/backing-file name: non-empty, at most
    /// [`crate::layout::NAME_BYTES`] bytes, no path separators.
    pub fn validate_name(name: &str) -> Result<()> {
        if name.is_empty()
            || name.len() > crate::layout::NAME_BYTES
            || name.contains('/')
            || name.contains('\\')
        {
            return Err(RegionError::BadName(name.to_string()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (FileStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "mnemo-files-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        (FileStore::new(&dir), dir)
    }

    #[test]
    fn page_roundtrip() {
        let (s, dir) = store();
        let mut page = [0u8; PAGE_SIZE as usize];
        page[0] = 1;
        page[4095] = 2;
        s.write_page("a.region", 3, &page).unwrap();
        let mut back = [0xffu8; PAGE_SIZE as usize];
        s.read_page("a.region", 3, &mut back).unwrap();
        assert_eq!(back[0], 1);
        assert_eq!(back[4095], 2);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_past_eof_is_zeros() {
        let (s, dir) = store();
        s.create("b.region").unwrap();
        let mut buf = [0xffu8; PAGE_SIZE as usize];
        s.read_page("b.region", 10, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_missing_file_is_zeros() {
        let (s, dir) = store();
        let mut buf = [0xffu8; PAGE_SIZE as usize];
        s.read_page("nope.region", 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sparse_write_extends_file() {
        let (s, dir) = store();
        let page = [7u8; PAGE_SIZE as usize];
        s.write_page("c.region", 5, &page).unwrap();
        // Earlier pages read as zeros.
        let mut buf = [0xffu8; PAGE_SIZE as usize];
        s.read_page("c.region", 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn remove_is_idempotent() {
        let (s, dir) = store();
        s.create("d.region").unwrap();
        s.remove("d.region").unwrap();
        s.remove("d.region").unwrap();
        assert!(!s.exists("d.region"));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn name_validation() {
        assert!(FileStore::validate_name("ok-name_1.region").is_ok());
        assert!(FileStore::validate_name("").is_err());
        assert!(FileStore::validate_name("a/b").is_err());
        assert!(FileStore::validate_name(&"x".repeat(200)).is_err());
    }
}
