//! A small blocking client for the `mnemosyned` protocol.
//!
//! [`Client`] offers both a synchronous call-per-method surface
//! ([`Client::get`], [`Client::put`], …) and a split pipelined surface
//! ([`Client::send`] / [`Client::recv`]) where any number of requests
//! can be in flight; responses arrive in request order.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{read_response, write_request, ProtoError, Request, Response};

/// A blocking connection to a `mnemosyned` server.
pub struct Client {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
    /// Requests sent but not yet answered.
    in_flight: usize,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Socket connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let r = BufReader::new(stream.try_clone()?);
        Ok(Client {
            r,
            w: BufWriter::new(stream),
            in_flight: 0,
        })
    }

    /// Queues a request without waiting for its response (buffered; use
    /// [`Client::flush`] or [`Client::recv`] to push it out).
    ///
    /// # Errors
    /// Socket write failures.
    pub fn send(&mut self, req: &Request) -> Result<(), ProtoError> {
        write_request(&mut self.w, req)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Flushes buffered requests to the socket.
    ///
    /// # Errors
    /// Socket write failures.
    pub fn flush(&mut self) -> Result<(), ProtoError> {
        self.w.flush()?;
        Ok(())
    }

    /// Receives the next in-order response, flushing first so the
    /// matching request is actually on the wire.
    ///
    /// # Errors
    /// Socket failures, or the server hanging up mid-response.
    pub fn recv(&mut self) -> Result<Response, ProtoError> {
        self.w.flush()?;
        match read_response(&mut self.r)? {
            Some(resp) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                Ok(resp)
            }
            None => Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Requests sent but not yet answered on this connection.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        self.send(req)?;
        self.recv()
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Socket/protocol failures.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    /// Socket/protocol failures or a server-side error reply.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ProtoError> {
        match self.call(&Request::Get(key.to_vec()))? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// Durably stores `key = value`; when this returns `Ok` the write is
    /// committed on the server.
    ///
    /// # Errors
    /// Socket/protocol failures or a server-side error reply.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ProtoError> {
        match self.call(&Request::Put(key.to_vec(), value.to_vec()))? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Durably removes `key`; `Ok(true)` when it existed.
    ///
    /// # Errors
    /// Socket/protocol failures or a server-side error reply.
    pub fn del(&mut self, key: &[u8]) -> Result<bool, ProtoError> {
        match self.call(&Request::Del(key.to_vec()))? {
            Response::Ok => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists up to `limit` entries whose key starts with `prefix`
    /// (0 = unlimited).
    ///
    /// # Errors
    /// Socket/protocol failures or a server-side error reply.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &mut self,
        prefix: &[u8],
        limit: u32,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, ProtoError> {
        match self.call(&Request::Scan(prefix.to_vec(), limit))? {
            Response::Entries(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to power down gracefully (checkpoint + save the
    /// media image).
    ///
    /// # Errors
    /// Socket/protocol failures or a server-side error reply.
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ProtoError {
    let msg = match resp {
        Response::Err(e) => format!("server error: {e}"),
        other => format!("unexpected response: {other:?}"),
    };
    ProtoError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, msg))
}
