//! A small blocking client for the `mnemosyned` protocol.
//!
//! [`Client`] offers both a synchronous call-per-method surface
//! ([`Client::get`], [`Client::put`], …) and a split pipelined surface
//! ([`Client::send`] / [`Client::recv`]) where any number of requests
//! can be in flight; responses arrive in request order.
//!
//! The typed surface returns [`ClientError`], which distinguishes the
//! server's degradation signals ([`ClientError::Overloaded`],
//! [`ClientError::Draining`]) from hard failures. Overload is always
//! safe to retry — the server sheds *before* enqueueing — and
//! [`Client::set_retry`] makes the typed calls do so themselves with
//! bounded exponential backoff.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    read_response, write_request, CkptSummary, FrameError, GrowInfo, HealthInfo, ProtoError,
    Request, Response,
};

/// Why a typed client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, hangup).
    Io(std::io::Error),
    /// The byte stream violated the framing protocol.
    Frame(FrameError),
    /// The server shed the request under admission control. It was
    /// never enqueued, so retrying (after backoff) is always safe.
    Overloaded,
    /// The server is draining for shutdown and admits no new work.
    Draining,
    /// The server answered with an error message.
    Server(String),
    /// The server answered with a response that does not match the
    /// request — a protocol bug on one side or the other.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Overloaded => write!(f, "server overloaded (request shed, retry later)"),
            ClientError::Draining => write!(f, "server draining for shutdown"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(resp) => write!(f, "unexpected response: {resp}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            ProtoError::Frame(e) => ClientError::Frame(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Exponential backoff for attempt `attempt` (0-based), capped at 250ms
/// so a bounded retry budget stays bounded in wall time too.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(16))
        .min(Duration::from_millis(250))
}

/// A blocking connection to a `mnemosyned` server.
pub struct Client {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
    /// Requests sent but not yet answered.
    in_flight: usize,
    /// Extra attempts for a typed call answered `Overloaded` (0 = off).
    retries: u32,
    /// Base backoff delay, doubled per retry.
    backoff: Duration,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Socket connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let r = BufReader::new(stream.try_clone()?);
        Ok(Client {
            r,
            w: BufWriter::new(stream),
            in_flight: 0,
            retries: 0,
            backoff: Duration::from_millis(1),
        })
    }

    /// Connects with bounded exponential backoff: up to `attempts` tries
    /// total, sleeping `base`, `2*base`, `4*base`, … (capped at 250ms)
    /// between them. Covers the restart window of a supervised daemon.
    ///
    /// # Errors
    /// The last connect failure, once the budget is spent.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        attempts: u32,
        base: Duration,
    ) -> std::io::Result<Client> {
        let mut attempt = 0u32;
        loop {
            match Client::connect(&addr) {
                Ok(c) => return Ok(c),
                Err(e) if attempt + 1 < attempts.max(1) => {
                    std::thread::sleep(backoff_delay(base, attempt));
                    attempt += 1;
                    drop(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Makes the typed calls retry an [`Response::Overloaded`] answer up
    /// to `retries` extra times, backing off exponentially from `base`.
    /// Safe by construction: the server sheds before enqueueing, so a
    /// retried request can never double-apply.
    pub fn set_retry(&mut self, retries: u32, base: Duration) {
        self.retries = retries;
        self.backoff = base;
    }

    /// Queues a request without waiting for its response (buffered; use
    /// [`Client::flush`] or [`Client::recv`] to push it out).
    ///
    /// # Errors
    /// Socket write failures.
    pub fn send(&mut self, req: &Request) -> Result<(), ProtoError> {
        write_request(&mut self.w, req)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Flushes buffered requests to the socket.
    ///
    /// # Errors
    /// Socket write failures.
    pub fn flush(&mut self) -> Result<(), ProtoError> {
        self.w.flush()?;
        Ok(())
    }

    /// Receives the next in-order response, flushing first so the
    /// matching request is actually on the wire.
    ///
    /// # Errors
    /// Socket failures, or the server hanging up mid-response.
    pub fn recv(&mut self) -> Result<Response, ProtoError> {
        self.w.flush()?;
        match read_response(&mut self.r)? {
            Some(resp) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                Ok(resp)
            }
            None => Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Requests sent but not yet answered on this connection.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            self.send(req)?;
            let resp = self.recv()?;
            if matches!(resp, Response::Overloaded) && attempt < self.retries {
                std::thread::sleep(backoff_delay(self.backoff, attempt));
                attempt += 1;
                continue;
            }
            return Ok(resp);
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(fail(other)),
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&Request::Get(key.to_vec()))? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(fail(other)),
        }
    }

    /// Durably stores `key = value`; when this returns `Ok` the write is
    /// committed on the server.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        match self.call(&Request::Put(key.to_vec(), value.to_vec()))? {
            Response::Ok => Ok(()),
            other => Err(fail(other)),
        }
    }

    /// Durably removes `key`; `Ok(true)` when it existed.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn del(&mut self, key: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Request::Del(key.to_vec()))? {
            Response::Ok => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(fail(other)),
        }
    }

    /// Lists up to `limit` entries whose key starts with `prefix`
    /// (0 = unlimited).
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &mut self,
        prefix: &[u8],
        limit: u32,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, ClientError> {
        match self.call(&Request::Scan(prefix.to_vec(), limit))? {
            Response::Entries(entries) => Ok(entries),
            other => Err(fail(other)),
        }
    }

    /// Asks the daemon to drain (commit everything accepted), then power
    /// down gracefully. `Ok` means every previously acknowledged write
    /// is settled.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(fail(other)),
        }
    }

    /// Fetches the server's full telemetry registry as an
    /// `mnemosyne-telemetry-v1` JSON snapshot (admin side path — works
    /// even while the server drains). Parse it with
    /// `mnemosyne_obs::TelemetrySnapshot::from_json`.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(fail(other)),
        }
    }

    /// Forces a checkpoint pass on the server: redo and allocator logs
    /// are truncated down to their durable watermarks, bounding what a
    /// crash right now would have to replay.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn checkpoint(&mut self) -> Result<CkptSummary, ClientError> {
        match self.call(&Request::Checkpoint)? {
            Response::CkptDone(s) => Ok(s),
            other => Err(fail(other)),
        }
    }

    /// Liveness and load report: uptime, connection count, queue depth,
    /// outstanding log words, drain state (admin side path — works even
    /// while the server drains).
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply.
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        match self.call(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(fail(other)),
        }
    }

    /// Grows the server's heap online by (at least) `bytes` bytes of
    /// large-object capacity — no restart. Crash-atomic on the server: a
    /// failure mid-grow recovers to either the old or the new capacity.
    ///
    /// # Errors
    /// Socket/protocol failures, overload shedding, or a server-side
    /// error reply (e.g. address space exhausted).
    pub fn grow(&mut self, bytes: u64) -> Result<GrowInfo, ClientError> {
        match self.call(&Request::Grow(bytes))? {
            Response::Grown(g) => Ok(g),
            other => Err(fail(other)),
        }
    }
}

fn fail(resp: Response) -> ClientError {
    match resp {
        Response::Err(e) => ClientError::Server(e),
        Response::Overloaded => ClientError::Overloaded,
        Response::Draining => ClientError::Draining,
        other => ClientError::Unexpected(format!("{other:?}")),
    }
}
