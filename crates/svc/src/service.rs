//! The request batcher: worker threads that coalesce queued requests
//! into one durable transaction per batch.
//!
//! Every submitted request becomes a [`Ticket`]; worker threads drain the
//! shared queue up to [`SvcConfig::max_batch`] entries at a time and
//! execute the whole batch inside ONE `atomic` block. A client's request
//! is acknowledged only after that transaction's commit returns — i.e.
//! after its redo record is fenced onto SCM — so an acknowledged write is
//! durable by construction, and N batched writes cost one redo-append
//! fence instead of N. With several workers committing concurrently, the
//! post-writeback data fences additionally collapse across workers via
//! the mtm `GroupFence` commit groups (PR 4), so the per-request fence
//! cost approaches `1/batch` appends plus `~1/group` data fences.
//!
//! If the machine dies mid-batch (fault injection, or a genuine bug), the
//! in-flight batch and everything still queued is answered with
//! [`Response::Err`] — never acknowledged — which is exactly the
//! guarantee the crash-sweep test checks: no acknowledged write may be
//! missing after recovery.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use mnemosyne::{crash_payload, EmulationMode, Error, Mnemosyne, MtmRuntime, TxThread};
use mnemosyne_obs::{Counter, Histogram, Telemetry, Unit};
use mnemosyne_pds::PHashTable;
use parking_lot::{Condvar, Mutex};

use crate::proto::{CkptSummary, GrowInfo, HealthInfo, Request, Response};

/// Tuning for a [`KvService`].
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Batcher worker threads; each holds one transaction-runtime slot,
    /// so the stack must be booted with `max_threads >= workers + 1`
    /// (the extra slot covers setup/diagnostic threads).
    pub workers: usize,
    /// Most requests folded into one durable transaction.
    pub max_batch: usize,
    /// Group-commit window: a worker that wakes to fewer than
    /// `max_batch` queued requests waits up to this long for more to
    /// arrive before committing, trading that much p50 latency for much
    /// larger (cheaper-per-request) batches. Zero commits immediately.
    pub batch_window: std::time::Duration,
    /// Hash-table buckets (created on first boot; a reopened table keeps
    /// its original bucket count).
    pub buckets: u64,
    /// `pstatic` name of the table root — one service per name.
    pub table: String,
    /// Admission control: most requests allowed to wait in the batcher
    /// queue. Submissions past the bound are answered
    /// [`Response::Overloaded`] without ever being enqueued, so the
    /// server degrades with a typed signal instead of unbounded memory
    /// growth and silent latency. Zero disables the bound.
    pub max_queue: usize,
    /// Admission control: most concurrent TCP connections. Connections
    /// past the bound get one [`Response::Overloaded`] frame and are
    /// closed. Zero disables the bound.
    pub max_conns: usize,
    /// Background checkpoint cadence: every interval, a driver thread
    /// truncates the redo and heap logs down to their durable
    /// watermarks so outstanding log bytes stay bounded under sustained
    /// writes. Zero disables the driver (default — harnesses that need
    /// deterministic fault-point enumeration checkpoint explicitly).
    pub ckpt_interval: std::time::Duration,
    /// Admission control for the **admin side path**: most admin requests
    /// (STATS/CHECKPOINT/HEALTH/GROW) executing at once. Admin requests
    /// bypass the batcher queue and run on their connection's reader
    /// thread, so observability stays responsive while the data plane is
    /// saturated or draining — this bound keeps a flood of them from
    /// monopolising connection threads instead. Excess admin requests are
    /// answered [`Response::Overloaded`]. Zero disables the bound.
    pub max_admin: usize,
}

impl Default for SvcConfig {
    fn default() -> SvcConfig {
        SvcConfig {
            workers: 2,
            max_batch: 64,
            batch_window: std::time::Duration::from_micros(100),
            buckets: 256,
            table: "kv".to_string(),
            max_queue: 1024,
            max_conns: 256,
            ckpt_interval: std::time::Duration::ZERO,
            max_admin: 4,
        }
    }
}

/// The service-layer metrics (see METRICS.md, `svc.*`).
#[derive(Clone)]
pub(crate) struct SvcMetrics {
    pub(crate) requests: Counter,
    pub(crate) conns: Counter,
    pub(crate) recoveries: Counter,
    pub(crate) batch_size: Histogram,
    pub(crate) request_ns: Histogram,
    pub(crate) overload_shed: Counter,
    pub(crate) overload_conns: Counter,
    pub(crate) drains: Counter,
    pub(crate) admin_requests: Counter,
    pub(crate) admin_rejected: Counter,
    pub(crate) admin_request_ns: Histogram,
}

impl SvcMetrics {
    fn register(t: &Telemetry) -> SvcMetrics {
        SvcMetrics {
            requests: t.counter("svc.requests", Unit::Count),
            conns: t.counter("svc.conns", Unit::Count),
            recoveries: t.counter("svc.recoveries", Unit::Count),
            batch_size: t.histogram("svc.batch_size", Unit::Count),
            request_ns: t.histogram("svc.request_ns", Unit::Nanoseconds),
            overload_shed: t.counter("svc.overload.shed", Unit::Count),
            overload_conns: t.counter("svc.overload.conns_rejected", Unit::Count),
            drains: t.counter("svc.drains", Unit::Count),
            admin_requests: t.counter("svc.admin.requests", Unit::Count),
            admin_rejected: t.counter("svc.admin.rejected", Unit::Count),
            admin_request_ns: t.histogram("svc.admin.request_ns", Unit::Nanoseconds),
        }
    }
}

/// Measures a batch in the worker handle's time domain: the emulator's
/// virtual clock under `EmulationMode::Virtual` (so latency attribution
/// matches the modelled SCM costs), the wall clock otherwise — the same
/// convention as the mtm commit-phase histograms.
struct DomainTimer {
    wall: Instant,
    accounted: u64,
}

impl DomainTimer {
    fn start(th: &TxThread) -> DomainTimer {
        DomainTimer {
            wall: Instant::now(),
            accounted: th.pmem().accounted_ns(),
        }
    }

    fn stop(&self, th: &TxThread) -> u64 {
        if th.pmem().mode() == EmulationMode::Virtual {
            th.pmem().accounted_ns().saturating_sub(self.accounted)
        } else {
            self.wall.elapsed().as_nanos() as u64
        }
    }
}

struct TicketCell {
    slot: Mutex<Option<Response>>,
    cv: Condvar,
}

impl TicketCell {
    fn new() -> TicketCell {
        TicketCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, resp: Response) {
        *self.slot.lock() = Some(resp);
        self.cv.notify_all();
    }
}

/// A pending response: returned by [`KvService::submit`], redeemed with
/// [`Ticket::wait`]. Submitting without waiting is how connections
/// pipeline — responses still come back in submission order per ticket.
pub struct Ticket(Arc<TicketCell>);

impl Ticket {
    /// A ticket that is already answered (protocol errors, admin ops).
    pub fn ready(resp: Response) -> Ticket {
        let cell = Arc::new(TicketCell::new());
        cell.complete(resp);
        Ticket(cell)
    }

    /// Blocks until the request's batch commits (or fails) and returns
    /// the response.
    pub fn wait(self) -> Response {
        let mut slot = self.0.slot.lock();
        loop {
            if let Some(resp) = slot.take() {
                return resp;
            }
            self.0.cv.wait(&mut slot);
        }
    }
}

struct PendingReq {
    req: Request,
    cell: Arc<TicketCell>,
}

struct QueueState {
    pending: VecDeque<PendingReq>,
    /// Requests a worker has pulled off the queue but not yet answered.
    /// [`KvService::drain`] waits for both this and `pending` to hit
    /// zero before acknowledging a shutdown.
    inflight: usize,
    /// Draining for shutdown: new submissions are answered
    /// [`Response::Draining`]; queued and in-flight work still commits.
    draining: bool,
    /// Graceful stop: workers drain what is queued, then exit.
    stop: bool,
    /// The machine died (injected crash or worker panic): fail
    /// everything immediately, nothing further commits.
    dead: bool,
}

struct Inner {
    mtm: Arc<MtmRuntime>,
    table: PHashTable,
    max_batch: usize,
    batch_window: std::time::Duration,
    max_queue: usize,
    max_conns: usize,
    max_admin: usize,
    queue: Mutex<QueueState>,
    cv: Condvar,
    metrics: SvcMetrics,
    workers: Mutex<Vec<JoinHandle<()>>>,
    ckpt: Mutex<Option<(Arc<AtomicBool>, JoinHandle<()>)>>,
    /// Admin requests currently executing on connection threads.
    admin_inflight: AtomicUsize,
    /// Live TCP connections (maintained by the server front end via
    /// [`KvService::conn_opened`]/[`KvService::conn_closed`]), reported by
    /// HEALTH.
    conns: AtomicUsize,
    /// Service start time, reported by HEALTH as uptime.
    started: Instant,
}

impl Inner {
    /// Marks the service dead and fails every queued request. Idempotent.
    fn mark_dead(&self, why: &str) {
        let drained: Vec<PendingReq> = {
            let mut q = self.queue.lock();
            q.dead = true;
            q.stop = true;
            q.pending.drain(..).collect()
        };
        self.cv.notify_all();
        for p in drained {
            p.cell.complete(Response::Err(why.to_string()));
        }
    }
}

/// A persistent key-value service: a [`PHashTable`] fronted by batching
/// workers. Cheap to clone (shared state); the TCP layer in
/// [`crate::server`] is a veneer over [`KvService::submit`].
///
/// The service borrows the stack's internals (transaction runtime,
/// telemetry) rather than owning the [`Mnemosyne`] facade, so harnesses
/// like `crash_sweep` — which keep ownership of the machine to crash and
/// reboot it — can run a service over a stack they still control.
#[derive(Clone)]
pub struct KvService {
    inner: Arc<Inner>,
}

impl KvService {
    /// Opens (or recovers) the table and starts the batcher workers.
    ///
    /// When the table root already exists — i.e. the service is resuming
    /// a previous incarnation's state after a restart or crash — the
    /// `svc.recoveries` counter is bumped.
    ///
    /// # Errors
    /// Table open/creation failures, or no free transaction slot.
    pub fn start(m: &Mnemosyne, config: SvcConfig) -> Result<KvService, Error> {
        let metrics = SvcMetrics::register(m.telemetry());
        let root = m.pstatic(&config.table, 8)?;
        let (table, resumed) = {
            let mut th = m.register_thread()?;
            let resumed = th.atomic(|tx| tx.read_u64(root))? != 0;
            let table = PHashTable::open(m, &mut th, &config.table, config.buckets)?;
            (table, resumed)
        };
        if resumed {
            metrics.recoveries.inc();
        }
        let inner = Arc::new(Inner {
            mtm: Arc::clone(m.mtm()),
            table,
            max_batch: config.max_batch.max(1),
            batch_window: config.batch_window,
            max_queue: config.max_queue,
            max_conns: config.max_conns,
            max_admin: config.max_admin,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                inflight: 0,
                draining: false,
                stop: false,
                dead: false,
            }),
            cv: Condvar::new(),
            metrics,
            workers: Mutex::new(Vec::new()),
            ckpt: Mutex::new(None),
            admin_inflight: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            started: Instant::now(),
        });
        let svc = KvService { inner };
        for _ in 0..config.workers {
            svc.spawn_worker();
        }
        if !config.ckpt_interval.is_zero() {
            let stop = Arc::new(AtomicBool::new(false));
            let join = {
                let inner = Arc::clone(&svc.inner);
                let stop = Arc::clone(&stop);
                let interval = config.ckpt_interval;
                std::thread::spawn(move || ckpt_loop(&inner, interval, &stop))
            };
            *svc.inner.ckpt.lock() = Some((stop, join));
        }
        Ok(svc)
    }

    /// Adds one batcher worker. Normally called by [`KvService::start`];
    /// exposed so tests can queue requests first and then watch a single
    /// worker fold them into one commit.
    pub fn spawn_worker(&self) {
        let inner = Arc::clone(&self.inner);
        let join = std::thread::spawn(move || worker_loop(&inner));
        self.inner.workers.lock().push(join);
    }

    /// Enqueues a request for the next commit batch. Never blocks; the
    /// returned [`Ticket`] resolves once the batch commits. On a stopped
    /// or dead service the ticket resolves immediately with an error.
    ///
    /// Admin requests ([`Request::is_admin`]) never enter the batch queue:
    /// they execute synchronously on the calling thread (the admin side
    /// path) and come back as an already-resolved ticket.
    pub fn submit(&self, req: Request) -> Ticket {
        if req.is_admin() {
            return Ticket::ready(self.admin(&req));
        }
        let cell = Arc::new(TicketCell::new());
        let ticket = Ticket(Arc::clone(&cell));
        {
            let mut q = self.inner.queue.lock();
            if q.stop || q.dead {
                drop(q);
                cell.complete(Response::Err("service unavailable".to_string()));
                return ticket;
            }
            if q.draining {
                drop(q);
                cell.complete(Response::Draining);
                return ticket;
            }
            if self.inner.max_queue > 0 && q.pending.len() >= self.inner.max_queue {
                drop(q);
                self.inner.metrics.overload_shed.inc();
                cell.complete(Response::Overloaded);
                return ticket;
            }
            q.pending.push_back(PendingReq { req, cell });
        }
        self.inner.cv.notify_one();
        ticket
    }

    /// Submit-and-wait, for synchronous callers.
    pub fn call(&self, req: Request) -> Response {
        self.submit(req).wait()
    }

    /// Whether the service has stopped serving (graceful stop or machine
    /// death).
    pub fn is_stopped(&self) -> bool {
        let q = self.inner.queue.lock();
        q.stop || q.dead
    }

    /// Drains for shutdown: new submissions are refused with
    /// [`Response::Draining`], then this blocks until every queued and
    /// in-flight request has been committed and answered. Returns `false`
    /// if the machine died instead (nothing more will commit). The
    /// workers stay up — call [`KvService::stop`] afterwards.
    ///
    /// This is what makes an acknowledged SHUTDOWN meaningful: by the
    /// time the ack frame leaves the server, every write the service
    /// accepted has either been durably committed or answered with an
    /// error — none are silently dropped on the floor.
    pub fn drain(&self) -> bool {
        let mut q = self.inner.queue.lock();
        q.draining = true;
        while !q.pending.is_empty() || q.inflight > 0 {
            if q.dead {
                return false;
            }
            // Workers share this condvar, so a submit's notify_one may
            // have landed here instead of on a worker: re-notify and use
            // a timed wait rather than risk a lost wakeup.
            self.inner.cv.notify_one();
            self.inner
                .cv
                .wait_for(&mut q, std::time::Duration::from_millis(1));
        }
        let dead = q.dead;
        drop(q);
        if !dead {
            self.inner.metrics.drains.inc();
        }
        !dead
    }

    /// Graceful stop: already-queued requests are still committed and
    /// acknowledged, then the workers exit and are joined. New submissions
    /// fail immediately. Idempotent.
    pub fn stop(&self) {
        if let Some((stop, join)) = self.inner.ckpt.lock().take() {
            stop.store(true, Ordering::SeqCst);
            let _ = join.join();
        }
        {
            let mut q = self.inner.queue.lock();
            q.stop = true;
        }
        self.inner.cv.notify_all();
        let joins: Vec<JoinHandle<()>> = self.inner.workers.lock().drain(..).collect();
        for j in joins {
            let _ = j.join();
        }
    }

    /// Executes an admin request on the calling (connection reader)
    /// thread — the **admin side path**. Admin requests never queue
    /// behind the data plane, so STATS and HEALTH stay responsive while
    /// the batcher is saturated or draining; a dedicated inflight bound
    /// ([`SvcConfig::max_admin`]) keeps them from monopolising connection
    /// threads in return.
    fn admin(&self, req: &Request) -> Response {
        let inner = &self.inner;
        if inner.max_admin > 0
            && inner.admin_inflight.fetch_add(1, Ordering::SeqCst) >= inner.max_admin
        {
            inner.admin_inflight.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.admin_rejected.inc();
            return Response::Overloaded;
        }
        // Counted at admission, so a STATS snapshot includes itself.
        inner.metrics.admin_requests.inc();
        let wall = Instant::now();
        let resp = self.admin_exec(req);
        inner
            .metrics
            .admin_request_ns
            .record(wall.elapsed().as_nanos() as u64);
        if inner.max_admin > 0 {
            inner.admin_inflight.fetch_sub(1, Ordering::SeqCst);
        }
        resp
    }

    fn admin_exec(&self, req: &Request) -> Response {
        let inner = &self.inner;
        match req {
            // Read-only verbs work in every lifecycle state, including a
            // drain — that is precisely when an operator needs them.
            Request::Stats => Response::Stats(inner.mtm.telemetry().snapshot().to_json()),
            Request::Health => {
                let (queue_depth, inflight, draining) = {
                    let q = inner.queue.lock();
                    (q.pending.len() as u64, q.inflight as u64, q.draining)
                };
                Response::Health(HealthInfo {
                    uptime_ms: inner.started.elapsed().as_millis() as u64,
                    conns: inner.conns.load(Ordering::SeqCst) as u64,
                    queue_depth,
                    inflight,
                    outstanding_log_words: inner.mtm.outstanding_log_words(),
                    draining,
                })
            }
            // Mutating verbs respect the lifecycle: nothing runs against a
            // stopped or dead machine.
            Request::Checkpoint | Request::Grow(_) if self.is_stopped() => {
                Response::Err("service unavailable".to_string())
            }
            Request::Checkpoint => {
                let wall = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| inner.mtm.checkpoint())) {
                    Ok(st) => Response::CkptDone(CkptSummary {
                        reclaimed_words: st.reclaimed_words,
                        outstanding_before: st.outstanding_before,
                        outstanding_after: st.outstanding_after,
                        duration_ns: wall.elapsed().as_nanos() as u64,
                    }),
                    Err(payload) => {
                        let why = match crash_payload(&*payload) {
                            Some(req) => format!("machine crashed: {req}"),
                            None => "checkpoint panicked".to_string(),
                        };
                        inner.mark_dead(&why);
                        Response::Err(why)
                    }
                }
            }
            Request::Grow(bytes) => {
                match catch_unwind(AssertUnwindSafe(|| inner.mtm.grow_heap(*bytes))) {
                    Ok(Ok(st)) => Response::Grown(GrowInfo {
                        grown_bytes: st.grown_bytes,
                        large_capacity_bytes: st.large_capacity,
                    }),
                    Ok(Err(e)) => Response::Err(format!("grow failed: {e}")),
                    Err(payload) => {
                        let why = match crash_payload(&*payload) {
                            Some(req) => format!("machine crashed: {req}"),
                            None => "grow panicked".to_string(),
                        };
                        inner.mark_dead(&why);
                        Response::Err(why)
                    }
                }
            }
            _ => Response::Err("not an admin request".to_string()),
        }
    }

    /// Admission check for a new TCP connection: registers it unless the
    /// `max_conns` bound is hit. A `true` must be paired with
    /// [`KvService::conn_closed`]. The count feeds HEALTH's `conns` field.
    pub(crate) fn conn_opened(&self) -> bool {
        let max = self.inner.max_conns;
        if max > 0 && self.inner.conns.load(Ordering::SeqCst) >= max {
            return false;
        }
        self.inner.conns.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// Unregisters a connection admitted by [`KvService::conn_opened`].
    pub(crate) fn conn_closed(&self) {
        self.inner.conns.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn metrics(&self) -> &SvcMetrics {
        &self.inner.metrics
    }
}

/// The background checkpoint driver: every `interval`, truncate the redo
/// and heap logs down to their durable watermarks so outstanding log
/// bytes stay bounded no matter how long the write workload runs. Under
/// fault injection the truncation primitives are themselves crash
/// points; an injected crash here kills the service like any other
/// machine death (and the sweep then checks recovery still honours every
/// acknowledged write).
fn ckpt_loop(inner: &Arc<Inner>, interval: std::time::Duration, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        if stop.load(Ordering::SeqCst) || inner.queue.lock().dead {
            return;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inner.mtm.outstanding_log_words() > 0 {
                inner.mtm.checkpoint();
            }
        }));
        if let Err(payload) = outcome {
            let why = match crash_payload(&*payload) {
                Some(req) => format!("machine crashed: {req}"),
                None => "checkpoint driver panicked".to_string(),
            };
            inner.mark_dead(&why);
            return;
        }
    }
}

/// Executes one batch as a single durable transaction, producing one
/// response per request. The closure re-runs wholesale on conflict
/// retry, so responses are computed from the transaction that actually
/// committed.
fn exec_batch(
    table: &PHashTable,
    th: &mut TxThread,
    batch: &[PendingReq],
) -> Result<Vec<Response>, mnemosyne::TxError> {
    th.atomic(|tx| {
        let mut out = Vec::with_capacity(batch.len());
        for p in batch {
            let resp = match &p.req {
                Request::Ping => Response::Pong,
                // The TCP layer answers SHUTDOWN itself; a direct submit
                // is acknowledged as a no-op.
                Request::Shutdown => Response::Ok,
                Request::Get(k) => match table.get_in(tx, k)? {
                    Some(v) => Response::Value(v),
                    None => Response::NotFound,
                },
                Request::Put(k, v) => {
                    table.put_in(tx, k, v)?;
                    Response::Ok
                }
                Request::Del(k) => {
                    if table.remove_in(tx, k)? {
                        Response::Ok
                    } else {
                        Response::NotFound
                    }
                }
                Request::Scan(prefix, limit) => {
                    Response::Entries(table.scan_prefix_in(tx, prefix, *limit as usize)?)
                }
                // Admin verbs are routed around the batcher by submit();
                // reaching the data path would be a dispatch bug.
                Request::Stats | Request::Checkpoint | Request::Health | Request::Grow(_) => {
                    Response::Err("admin request on the data path".to_string())
                }
            };
            out.push(resp);
        }
        Ok(out)
    })
}

fn worker_loop(inner: &Arc<Inner>) {
    let mut th = match inner.mtm.register_thread() {
        Ok(th) => th,
        Err(e) => {
            inner.mark_dead(&format!("no transaction slot for worker: {e}"));
            return;
        }
    };
    loop {
        let batch: Vec<PendingReq> = {
            let mut q = inner.queue.lock();
            loop {
                if q.dead {
                    return;
                }
                if !q.pending.is_empty() {
                    break;
                }
                if q.stop {
                    return;
                }
                inner.cv.wait(&mut q);
            }
            // Group-commit window: waking to a short queue, give arrivals
            // a beat to coalesce — each extra request folded here rides
            // the same redo-append fence. Skipped while draining a stop,
            // and cut short the moment the batch fills.
            if !q.stop && q.pending.len() < inner.max_batch && !inner.batch_window.is_zero() {
                let deadline = Instant::now() + inner.batch_window;
                while !q.stop && !q.dead && q.pending.len() < inner.max_batch {
                    let Some(left) = deadline
                        .checked_duration_since(Instant::now())
                        .filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    if inner.cv.wait_for(&mut q, left).timed_out() {
                        break;
                    }
                }
                if q.dead {
                    return;
                }
                // Another worker may have raced away with the queue
                // during the wait; go back to sleeping if so.
                if q.pending.is_empty() {
                    continue;
                }
            }
            let n = q.pending.len().min(inner.max_batch);
            q.inflight += n;
            q.pending.drain(..n).collect()
        };
        // More work may remain for an idle sibling.
        inner.cv.notify_one();

        let timer = DomainTimer::start(&th);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            exec_batch(&inner.table, &mut th, &batch)
        }));
        let mut died = None;
        match outcome {
            Ok(Ok(replies)) => {
                let ns = timer.stop(&th);
                inner.metrics.batch_size.record(batch.len() as u64);
                inner.metrics.requests.add(batch.len() as u64);
                for (p, resp) in batch.iter().zip(replies) {
                    inner.metrics.request_ns.record(ns);
                    p.cell.complete(resp);
                }
            }
            Ok(Err(e)) => {
                // The transaction failed cleanly: nothing was applied and
                // nothing is acknowledged; the service keeps serving.
                let why = format!("transaction failed: {e}");
                for p in &batch {
                    p.cell.complete(Response::Err(why.clone()));
                }
            }
            Err(payload) => {
                // Machine death. An injected crash (CrashRequested) is the
                // expected path in fault tests; anything else is a bug,
                // reported in the reply. Either way the batch did NOT
                // commit, so failing it keeps the ack invariant.
                let why = match crash_payload(&*payload) {
                    Some(req) => format!("machine crashed: {req}"),
                    None => "worker panicked executing a batch".to_string(),
                };
                for p in &batch {
                    p.cell.complete(Response::Err(why.clone()));
                }
                died = Some(why);
            }
        }
        {
            let mut q = inner.queue.lock();
            q.inflight -= batch.len();
        }
        // Wake a drain() that may be waiting for inflight to hit zero.
        inner.cv.notify_all();
        if let Some(why) = died {
            inner.mark_dead(&why);
            return;
        }
    }
}
