//! `mnemosyned` — the persistent key-value daemon.
//!
//! ```text
//! mnemosyned --dir DATA [--addr 127.0.0.1:7077] [--workers 2]
//!            [--max-batch 64] [--scm-mb 64] [--max-conns 256]
//!            [--max-queue 1024] [--ckpt-ms 50] [--max-admin 4]
//! ```
//!
//! First run creates the persistent heap under `--dir`; later runs
//! resume it (a graceful shutdown — `kvctl ADDR shutdown` — drains the
//! batcher and checkpoints the media image; an abrupt kill is recovered
//! from the redo logs on the backing files at next boot). The daemon
//! prints `listening on ADDR` once it is serving.
//!
//! Operationally the daemon degrades rather than stalls: past
//! `--max-conns` connections or `--max-queue` queued requests it
//! answers `Overloaded` (shed before enqueueing, safe to retry), and a
//! background checkpointer (`--ckpt-ms`, 0 disables) truncates the redo
//! logs every interval so outstanding log bytes stay bounded under
//! sustained writes.
//!
//! Operators watch and steer the daemon over the same socket through
//! the admin verbs — `kvctl ADDR stats | health | checkpoint |
//! grow BYTES` — which run on a bounded side path (`--max-admin`
//! concurrent, 0 unbounded) that never queues behind data-plane traffic,
//! so STATS and HEALTH answer even when the daemon is saturated or
//! draining. See OPERATIONS.md for the runbook and PROTOCOL.md for the
//! wire format.

use std::path::PathBuf;
use std::process::ExitCode;

use mnemosyne::Mnemosyne;
use mnemosyne_svc::{KvServer, KvService, SvcConfig};

struct Args {
    dir: PathBuf,
    addr: String,
    workers: usize,
    max_batch: usize,
    scm_mb: u64,
    max_conns: usize,
    max_queue: usize,
    ckpt_ms: u64,
    max_admin: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: mnemosyned --dir DATA [--addr 127.0.0.1:7077] [--workers 2] \
         [--max-batch 64] [--scm-mb 64] [--max-conns 256] [--max-queue 1024] \
         [--ckpt-ms 50] [--max-admin 4]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: PathBuf::new(),
        addr: "127.0.0.1:7077".to_string(),
        workers: 2,
        max_batch: 64,
        scm_mb: 64,
        max_conns: 256,
        max_queue: 1024,
        ckpt_ms: 50,
        max_admin: SvcConfig::default().max_admin,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dir" => args.dir = PathBuf::from(val()),
            "--addr" => args.addr = val(),
            "--workers" => args.workers = val().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => args.max_batch = val().parse().unwrap_or_else(|_| usage()),
            "--scm-mb" => args.scm_mb = val().parse().unwrap_or_else(|_| usage()),
            "--max-conns" => args.max_conns = val().parse().unwrap_or_else(|_| usage()),
            "--max-queue" => args.max_queue = val().parse().unwrap_or_else(|_| usage()),
            "--ckpt-ms" => args.ckpt_ms = val().parse().unwrap_or_else(|_| usage()),
            "--max-admin" => args.max_admin = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if args.dir.as_os_str().is_empty() || args.workers == 0 {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let m = match Mnemosyne::builder(&args.dir)
        .scm_size(args.scm_mb << 20)
        .max_threads(args.workers + 2)
        .open()
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("mnemosyned: cannot open {}: {e}", args.dir.display());
            return ExitCode::FAILURE;
        }
    };
    let svc = match KvService::start(
        &m,
        SvcConfig {
            workers: args.workers,
            max_batch: args.max_batch,
            max_conns: args.max_conns,
            max_queue: args.max_queue,
            ckpt_interval: std::time::Duration::from_millis(args.ckpt_ms),
            max_admin: args.max_admin,
            ..SvcConfig::default()
        },
    ) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("mnemosyned: cannot start service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match KvServer::bind(svc.clone(), &args.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mnemosyned: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());

    server.wait_shutdown_requested();
    eprintln!("mnemosyned: shutdown requested, powering down");
    server.stop();
    svc.stop();
    if let Err(e) = m.shutdown() {
        eprintln!("mnemosyned: shutdown failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
