//! `kvctl` — one-shot CLI client for `mnemosyned`.
//!
//! ```text
//! kvctl ADDR ping
//! kvctl ADDR put KEY VALUE
//! kvctl ADDR get KEY
//! kvctl ADDR del KEY
//! kvctl ADDR scan PREFIX [LIMIT]
//! kvctl ADDR shutdown
//! ```
//!
//! Keys/values are taken as UTF-8 from the command line; `get` prints
//! the value (lossily) to stdout. Exit code 1 means "not found", 2 a
//! usage error, 3 an I/O or server failure, 4 the server shedding load
//! (`Overloaded`/`Draining` — the request was not applied; retry later).
//!
//! Transient failures are retried with bounded exponential backoff:
//! connect attempts cover a daemon restart window, and `Overloaded`
//! replies (which are shed before enqueueing, so retrying is safe) are
//! retried a few times before giving up with exit code 4.

use std::process::ExitCode;
use std::time::Duration;

use mnemosyne_svc::{Client, ClientError};

fn usage() -> ExitCode {
    eprintln!(
        "usage: kvctl ADDR ping | put KEY VALUE | get KEY | del KEY | \
         scan PREFIX [LIMIT] | shutdown"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(addr), Some(cmd)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut client = match Client::connect_with_retry(addr, 4, Duration::from_millis(25)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kvctl: cannot connect to {addr}: {e}");
            return ExitCode::from(3);
        }
    };
    client.set_retry(4, Duration::from_millis(5));
    let result = match (cmd.as_str(), args.get(2), args.get(3)) {
        ("ping", None, None) => client.ping().map(|()| {
            println!("PONG");
            ExitCode::SUCCESS
        }),
        ("put", Some(k), Some(v)) => client.put(k.as_bytes(), v.as_bytes()).map(|()| {
            println!("OK");
            ExitCode::SUCCESS
        }),
        ("get", Some(k), None) => client.get(k.as_bytes()).map(|v| match v {
            Some(v) => {
                println!("{}", String::from_utf8_lossy(&v));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("kvctl: not found");
                ExitCode::FAILURE
            }
        }),
        ("del", Some(k), None) => client.del(k.as_bytes()).map(|existed| {
            if existed {
                println!("OK");
                ExitCode::SUCCESS
            } else {
                eprintln!("kvctl: not found");
                ExitCode::FAILURE
            }
        }),
        ("scan", Some(p), limit) => {
            let limit: u32 = match limit.map(|l| l.parse()) {
                Some(Ok(n)) => n,
                None => 0,
                Some(Err(_)) => return usage(),
            };
            client.scan(p.as_bytes(), limit).map(|entries| {
                for (k, v) in entries {
                    println!(
                        "{}\t{}",
                        String::from_utf8_lossy(&k),
                        String::from_utf8_lossy(&v)
                    );
                }
                ExitCode::SUCCESS
            })
        }
        ("shutdown", None, None) => client.shutdown().map(|()| {
            println!("OK");
            ExitCode::SUCCESS
        }),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e @ (ClientError::Overloaded | ClientError::Draining)) => {
            eprintln!("kvctl: {e}");
            ExitCode::from(4)
        }
        Err(e) => {
            eprintln!("kvctl: {e}");
            ExitCode::from(3)
        }
    }
}
