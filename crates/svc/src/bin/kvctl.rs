//! `kvctl` — one-shot CLI client for `mnemosyned`.
//!
//! ```text
//! kvctl ADDR ping
//! kvctl ADDR put KEY VALUE
//! kvctl ADDR get KEY
//! kvctl ADDR del KEY
//! kvctl ADDR scan PREFIX [LIMIT]
//! kvctl ADDR shutdown
//! kvctl ADDR stats [--json]
//! kvctl ADDR checkpoint [--json]
//! kvctl ADDR health [--json]
//! kvctl ADDR grow BYTES [--json]     # BYTES accepts k/m/g suffixes
//! ```
//!
//! Keys/values are taken as UTF-8 from the command line; `get` prints
//! the value (lossily) to stdout. Exit code 1 means "not found", 2 a
//! usage error, 3 an I/O or server failure, 4 the server shedding load
//! (`Overloaded`/`Draining` — the request was not applied; retry later).
//!
//! The admin verbs (`stats`, `checkpoint`, `health`, `grow`) run on the
//! server's admin side path, so `stats` and `health` answer even while
//! the daemon is saturated or draining. `--json` switches from the
//! human-readable rendering to machine-readable JSON (for `stats`, the
//! raw `mnemosyne-telemetry-v1` snapshot exactly as the server sent it).
//!
//! Transient failures are retried with bounded exponential backoff:
//! connect attempts cover a daemon restart window, and `Overloaded`
//! replies (which are shed before enqueueing, so retrying is safe) are
//! retried a few times before giving up with exit code 4.

use std::process::ExitCode;
use std::time::Duration;

use mnemosyne_obs::TelemetrySnapshot;
use mnemosyne_svc::{Client, ClientError};

fn usage() -> ExitCode {
    eprintln!(
        "usage: kvctl ADDR ping | put KEY VALUE | get KEY | del KEY | \
         scan PREFIX [LIMIT] | shutdown | stats [--json] | \
         checkpoint [--json] | health [--json] | grow BYTES [--json]"
    );
    ExitCode::from(2)
}

/// Parses a byte count with an optional k/m/g suffix (powers of 1024).
fn parse_bytes(s: &str) -> Option<u64> {
    let lower = s.to_ascii_lowercase();
    let (num, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(n) => match lower.as_bytes()[lower.len() - 1] {
            b'k' => (n, 10),
            b'm' => (n, 20),
            _ => (n, 30),
        },
        None => (lower.as_str(), 0),
    };
    let v: u64 = num.parse().ok()?;
    v.checked_shl(shift).filter(|&b| b > 0 || v == 0)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let json = raw.iter().any(|a| a == "--json");
    let args: Vec<String> = raw.into_iter().filter(|a| a != "--json").collect();
    let (Some(addr), Some(cmd)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut client = match Client::connect_with_retry(addr, 4, Duration::from_millis(25)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kvctl: cannot connect to {addr}: {e}");
            return ExitCode::from(3);
        }
    };
    client.set_retry(4, Duration::from_millis(5));
    let result = match (cmd.as_str(), args.get(2), args.get(3)) {
        ("ping", None, None) => client.ping().map(|()| {
            println!("PONG");
            ExitCode::SUCCESS
        }),
        ("put", Some(k), Some(v)) => client.put(k.as_bytes(), v.as_bytes()).map(|()| {
            println!("OK");
            ExitCode::SUCCESS
        }),
        ("get", Some(k), None) => client.get(k.as_bytes()).map(|v| match v {
            Some(v) => {
                println!("{}", String::from_utf8_lossy(&v));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("kvctl: not found");
                ExitCode::FAILURE
            }
        }),
        ("del", Some(k), None) => client.del(k.as_bytes()).map(|existed| {
            if existed {
                println!("OK");
                ExitCode::SUCCESS
            } else {
                eprintln!("kvctl: not found");
                ExitCode::FAILURE
            }
        }),
        ("scan", Some(p), limit) => {
            let limit: u32 = match limit.map(|l| l.parse()) {
                Some(Ok(n)) => n,
                None => 0,
                Some(Err(_)) => return usage(),
            };
            client.scan(p.as_bytes(), limit).map(|entries| {
                for (k, v) in entries {
                    println!(
                        "{}\t{}",
                        String::from_utf8_lossy(&k),
                        String::from_utf8_lossy(&v)
                    );
                }
                ExitCode::SUCCESS
            })
        }
        ("shutdown", None, None) => client.shutdown().map(|()| {
            println!("OK");
            ExitCode::SUCCESS
        }),
        ("stats", None, None) => client.stats().and_then(|raw| {
            if json {
                println!("{raw}");
                return Ok(ExitCode::SUCCESS);
            }
            match TelemetrySnapshot::from_json(&raw) {
                Ok(snap) => {
                    print!("{}", snap.to_text());
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => Err(ClientError::Unexpected(format!(
                    "unparseable telemetry snapshot: {e}"
                ))),
            }
        }),
        ("checkpoint", None, None) => client.checkpoint().map(|s| {
            if json {
                println!(
                    "{{\"reclaimed_words\": {}, \"outstanding_before\": {}, \
                     \"outstanding_after\": {}, \"duration_ns\": {}}}",
                    s.reclaimed_words, s.outstanding_before, s.outstanding_after, s.duration_ns
                );
            } else {
                println!(
                    "checkpoint: reclaimed {} log words ({} -> {} outstanding) in {:.3} ms",
                    s.reclaimed_words,
                    s.outstanding_before,
                    s.outstanding_after,
                    s.duration_ns as f64 / 1e6
                );
            }
            ExitCode::SUCCESS
        }),
        ("health", None, None) => client.health().map(|h| {
            if json {
                println!(
                    "{{\"uptime_ms\": {}, \"conns\": {}, \"queue_depth\": {}, \
                     \"inflight\": {}, \"outstanding_log_words\": {}, \"draining\": {}}}",
                    h.uptime_ms,
                    h.conns,
                    h.queue_depth,
                    h.inflight,
                    h.outstanding_log_words,
                    h.draining
                );
            } else {
                println!(
                    "up {:.1}s  conns {}  queue {} (+{} in flight)  \
                     outstanding log words {}  {}",
                    h.uptime_ms as f64 / 1e3,
                    h.conns,
                    h.queue_depth,
                    h.inflight,
                    h.outstanding_log_words,
                    if h.draining { "DRAINING" } else { "serving" }
                );
            }
            ExitCode::SUCCESS
        }),
        ("grow", Some(b), None) => {
            let Some(bytes) = parse_bytes(b) else {
                return usage();
            };
            client.grow(bytes).map(|g| {
                if json {
                    println!(
                        "{{\"grown_bytes\": {}, \"large_capacity_bytes\": {}}}",
                        g.grown_bytes, g.large_capacity_bytes
                    );
                } else {
                    println!(
                        "grew heap by {} bytes (large capacity now {} bytes)",
                        g.grown_bytes, g.large_capacity_bytes
                    );
                }
                ExitCode::SUCCESS
            })
        }
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e @ (ClientError::Overloaded | ClientError::Draining)) => {
            eprintln!("kvctl: {e}");
            ExitCode::from(4)
        }
        Err(e) => {
            eprintln!("kvctl: {e}");
            ExitCode::from(3)
        }
    }
}
