//! `mnemosyned`: a persistent key-value service over the Mnemosyne
//! stack.
//!
//! This crate is the serving tier of the reproduction — the layer the
//! paper's "applications" section gestures at but never builds. It
//! answers the question *what does Mnemosyne buy a real server?* by
//! fronting the persistent hash table ([`mnemosyne_pds::PHashTable`])
//! with a network service whose durability story is exactly the stack's:
//! an acknowledged write has a committed redo record on SCM, full stop.
//!
//! Three pieces:
//!
//! - [`proto`] — a length-prefixed binary framing
//!   (`[len u32][opcode u8][body]`) with GET/PUT/DEL/SCAN/PING/SHUTDOWN
//!   data requests and STATS/CHECKPOINT/HEALTH/GROW admin requests (see
//!   PROTOCOL.md for the byte layout). Decoding is total: truncated,
//!   oversized, or garbage bytes yield typed [`proto::FrameError`]s,
//!   never panics.
//! - [`service`] — the group-commit batcher. Requests queue centrally;
//!   each worker drains up to a batch and runs the whole batch in ONE
//!   durable transaction, so N writes share one redo-append fence, and
//!   concurrent workers further share post-writeback data fences through
//!   the mtm commit groups. Admin requests bypass the queue on a bounded
//!   side path, so observability stays responsive under load or drain.
//! - [`server`]/[`client`] — a threaded TCP front end with per-connection
//!   pipelining (many requests in flight, responses in request order),
//!   and the matching blocking client.
//!
//! Telemetry: `svc.requests`, `svc.conns`, `svc.recoveries`,
//! `svc.batch_size`, `svc.request_ns`, the degradation counters
//! `svc.overload.shed`, `svc.overload.conns_rejected` and `svc.drains`,
//! and the admin side path's `svc.admin.requests`, `svc.admin.rejected`
//! and `svc.admin.request_ns` (see METRICS.md).
//!
//! Binaries: `mnemosyned` (the daemon) and `kvctl` (a one-shot CLI
//! client). A killed daemon loses nothing acknowledged: restart with the
//! same `--dir` and recovery replays the logs.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod service;

pub use client::{Client, ClientError};
pub use proto::{CkptSummary, FrameError, GrowInfo, HealthInfo, ProtoError, Request, Response};
pub use server::KvServer;
pub use service::{KvService, SvcConfig, Ticket};
