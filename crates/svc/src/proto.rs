//! The `mnemosyned` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [len: u32 LE] [opcode: u8] [body: len-1 bytes]
//! ```
//!
//! `len` counts the opcode plus body and is bounded by [`MAX_FRAME`], so
//! a hostile or corrupt peer cannot make the server allocate unbounded
//! memory. Variable-length fields inside a body are `u32 LE` lengths
//! followed by raw bytes. Multi-frame pipelining is the norm: a client
//! may write any number of request frames before reading responses, and
//! the server answers strictly in request order per connection.
//!
//! Decoding never panics on hostile input: every malformed shape maps to
//! a typed [`FrameError`] (property-tested in `tests/proto_props.rs`).

use std::io::{self, Read, Write};

/// Hard upper bound on a frame's declared payload length (opcode + body).
pub const MAX_FRAME: usize = 1 << 20;

/// Request opcodes (first payload byte).
mod op {
    pub const PING: u8 = 0x01;
    pub const GET: u8 = 0x02;
    pub const PUT: u8 = 0x03;
    pub const DEL: u8 = 0x04;
    pub const SCAN: u8 = 0x05;
    pub const SHUTDOWN: u8 = 0x06;

    pub const PONG: u8 = 0x81;
    pub const OK: u8 = 0x82;
    pub const NOT_FOUND: u8 = 0x83;
    pub const VALUE: u8 = 0x84;
    pub const ENTRIES: u8 = 0x85;
    pub const ERR: u8 = 0x86;
    pub const OVERLOADED: u8 = 0x87;
    pub const DRAINING: u8 = 0x88;
}

/// Everything that can be wrong with a frame's bytes. Typed so callers
/// (and property tests) can distinguish hostile input from I/O failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the declared frame or field does.
    Truncated {
        /// Bytes the declared shape requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// The length prefix declares an empty payload (no opcode byte).
    Empty,
    /// The opcode byte is not one this protocol defines.
    UnknownOpcode(u8),
    /// The body is longer than its opcode's fields account for.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// An error message field is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {MAX_FRAME} cap"
                )
            }
            FrameError::Empty => write!(f, "empty frame payload"),
            FrameError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            FrameError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A framing failure at the socket level: either the connection broke or
/// the peer sent a malformed frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Io(io::Error),
    /// Malformed frame from the peer.
    Frame(FrameError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "I/O error: {e}"),
            ProtoError::Frame(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        ProtoError::Frame(e)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Look up a key.
    Get(Vec<u8>),
    /// Insert or replace a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key.
    Del(Vec<u8>),
    /// List up to `limit` entries whose key starts with the prefix
    /// (`0` = no limit beyond the frame cap).
    Scan(Vec<u8>, u32),
    /// Ask the daemon to checkpoint and exit gracefully.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The operation succeeded (PUT, successful DEL, SHUTDOWN).
    Ok,
    /// The key was absent (GET, DEL).
    NotFound,
    /// The key's value (GET).
    Value(Vec<u8>),
    /// Matching key/value pairs (SCAN).
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// The request failed; the payload says why.
    Err(String),
    /// Admission control shed the request (queue or connection limit).
    /// The request was **never enqueued**, so retrying it is always
    /// safe; clients should back off exponentially first.
    Overloaded,
    /// The server is draining for shutdown and accepts no new work.
    /// Like [`Response::Overloaded`], the request was never enqueued.
    Draining,
}

/// Cursor over a frame payload, enforcing bounds on every read.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(FrameError::Oversized { len: usize::MAX })?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated {
                needed: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Wraps an encoded payload in the length prefix.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Splits one frame off the front of `buf`: validates the length prefix
/// and returns `(payload, total_consumed)`.
fn split_frame(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated {
            needed: 4,
            got: buf.len(),
        });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if buf.len() < 4 + len {
        return Err(FrameError::Truncated {
            needed: 4 + len,
            got: buf.len(),
        });
    }
    Ok((&buf[4..4 + len], 4 + len))
}

impl Request {
    /// Serialises to one full frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Request::Ping => p.push(op::PING),
            Request::Get(k) => {
                p.push(op::GET);
                put_bytes(&mut p, k);
            }
            Request::Put(k, v) => {
                p.push(op::PUT);
                put_bytes(&mut p, k);
                put_bytes(&mut p, v);
            }
            Request::Del(k) => {
                p.push(op::DEL);
                put_bytes(&mut p, k);
            }
            Request::Scan(prefix, limit) => {
                p.push(op::SCAN);
                put_bytes(&mut p, prefix);
                p.extend_from_slice(&limit.to_le_bytes());
            }
            Request::Shutdown => p.push(op::SHUTDOWN),
        }
        frame(p)
    }

    /// Decodes one frame from the front of `buf`, returning the request
    /// and the bytes consumed (so pipelined frames can follow).
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode(buf: &[u8]) -> Result<(Request, usize), FrameError> {
        let (payload, used) = split_frame(buf)?;
        Ok((Self::decode_payload(payload)?, used))
    }

    /// Decodes a frame payload (the bytes after the length prefix).
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode_payload(payload: &[u8]) -> Result<Request, FrameError> {
        let mut r = Reader::new(payload);
        let opcode = r.take(1)?[0];
        let req = match opcode {
            op::PING => Request::Ping,
            op::GET => Request::Get(r.bytes()?),
            op::PUT => {
                let k = r.bytes()?;
                let v = r.bytes()?;
                Request::Put(k, v)
            }
            op::DEL => Request::Del(r.bytes()?),
            op::SCAN => {
                let prefix = r.bytes()?;
                let limit = r.u32()?;
                Request::Scan(prefix, limit)
            }
            op::SHUTDOWN => Request::Shutdown,
            other => return Err(FrameError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises to one full frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Response::Pong => p.push(op::PONG),
            Response::Ok => p.push(op::OK),
            Response::NotFound => p.push(op::NOT_FOUND),
            Response::Value(v) => {
                p.push(op::VALUE);
                put_bytes(&mut p, v);
            }
            Response::Entries(entries) => {
                p.push(op::ENTRIES);
                p.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    put_bytes(&mut p, k);
                    put_bytes(&mut p, v);
                }
            }
            Response::Err(msg) => {
                p.push(op::ERR);
                put_bytes(&mut p, msg.as_bytes());
            }
            Response::Overloaded => p.push(op::OVERLOADED),
            Response::Draining => p.push(op::DRAINING),
        }
        frame(p)
    }

    /// Decodes one frame from the front of `buf`, returning the response
    /// and the bytes consumed.
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode(buf: &[u8]) -> Result<(Response, usize), FrameError> {
        let (payload, used) = split_frame(buf)?;
        Ok((Self::decode_payload(payload)?, used))
    }

    /// Decodes a frame payload (the bytes after the length prefix).
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode_payload(payload: &[u8]) -> Result<Response, FrameError> {
        let mut r = Reader::new(payload);
        let opcode = r.take(1)?[0];
        let resp = match opcode {
            op::PONG => Response::Pong,
            op::OK => Response::Ok,
            op::NOT_FOUND => Response::NotFound,
            op::VALUE => Response::Value(r.bytes()?),
            op::ENTRIES => {
                let n = r.u32()? as usize;
                let mut entries = Vec::new();
                for _ in 0..n {
                    let k = r.bytes()?;
                    let v = r.bytes()?;
                    entries.push((k, v));
                }
                Response::Entries(entries)
            }
            op::ERR => {
                let raw = r.bytes()?;
                let msg = String::from_utf8(raw).map_err(|_| FrameError::BadUtf8)?;
                Response::Err(msg)
            }
            op::OVERLOADED => Response::Overloaded,
            op::DRAINING => Response::Draining,
            other => return Err(FrameError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Reads one frame payload from a stream. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer hung up between requests).
///
/// # Errors
/// [`ProtoError::Io`] on transport failure (including EOF mid-frame),
/// [`ProtoError::Frame`] on a bad length prefix.
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no more frames" from "died mid-frame" by hand: a clean
    // shutdown ends exactly on a frame boundary.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(ProtoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Frame(FrameError::Oversized { len }));
    }
    if len == 0 {
        return Err(ProtoError::Frame(FrameError::Empty));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one request frame; `Ok(None)` on clean EOF.
///
/// # Errors
/// See [`ProtoError`].
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    match read_frame(r)? {
        Some(payload) => Ok(Some(Request::decode_payload(&payload)?)),
        None => Ok(None),
    }
}

/// Reads one response frame; `Ok(None)` on clean EOF.
///
/// # Errors
/// See [`ProtoError`].
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, ProtoError> {
    match read_frame(r)? {
        Some(payload) => Ok(Some(Response::decode_payload(&payload)?)),
        None => Ok(None),
    }
}

/// Writes one request frame (no flush; callers batch then flush).
///
/// # Errors
/// Transport failure.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    w.write_all(&req.encode())
}

/// Writes one response frame (no flush; callers batch then flush).
///
/// # Errors
/// Transport failure.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    w.write_all(&resp.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_variants() {
        let cases = [
            Request::Ping,
            Request::Get(b"k".to_vec()),
            Request::Put(b"key".to_vec(), b"value".to_vec()),
            Request::Del(vec![]),
            Request::Scan(b"pre".to_vec(), 17),
            Request::Shutdown,
        ];
        for req in cases {
            let bytes = req.encode();
            let (back, used) = Request::decode(&bytes).unwrap();
            assert_eq!(back, req);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let cases = [
            Response::Pong,
            Response::Ok,
            Response::NotFound,
            Response::Value(b"v".to_vec()),
            Response::Entries(vec![(b"a".to_vec(), b"1".to_vec()), (vec![], vec![])]),
            Response::Err("boom".to_string()),
            Response::Overloaded,
            Response::Draining,
        ];
        for resp in cases {
            let bytes = resp.encode();
            let (back, used) = Response::decode(&bytes).unwrap();
            assert_eq!(back, resp);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn oversized_and_empty_frames_are_typed_errors() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.push(op::PING);
        assert!(matches!(
            Request::decode(&buf),
            Err(FrameError::Oversized { .. })
        ));
        assert_eq!(Request::decode(&0u32.to_le_bytes()), Err(FrameError::Empty));
    }

    #[test]
    fn pipelined_frames_decode_in_sequence() {
        let mut buf = Request::Ping.encode();
        buf.extend(Request::Get(b"x".to_vec()).encode());
        let (first, used) = Request::decode(&buf).unwrap();
        assert_eq!(first, Request::Ping);
        let (second, _) = Request::decode(&buf[used..]).unwrap();
        assert_eq!(second, Request::Get(b"x".to_vec()));
    }
}
