//! The `mnemosyned` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [len: u32 LE] [opcode: u8] [body: len-1 bytes]
//! ```
//!
//! `len` counts the opcode plus body and is bounded by [`MAX_FRAME`], so
//! a hostile or corrupt peer cannot make the server allocate unbounded
//! memory. Variable-length fields inside a body are `u32 LE` lengths
//! followed by raw bytes. Multi-frame pipelining is the norm: a client
//! may write any number of request frames before reading responses, and
//! the server answers strictly in request order per connection.
//!
//! Decoding never panics on hostile input: every malformed shape maps to
//! a typed [`FrameError`] (property-tested in `tests/proto_props.rs`).

use std::io::{self, Read, Write};

/// Hard upper bound on a frame's declared payload length (opcode + body).
pub const MAX_FRAME: usize = 1 << 20;

/// Request opcodes (first payload byte).
mod op {
    pub const PING: u8 = 0x01;
    pub const GET: u8 = 0x02;
    pub const PUT: u8 = 0x03;
    pub const DEL: u8 = 0x04;
    pub const SCAN: u8 = 0x05;
    pub const SHUTDOWN: u8 = 0x06;
    pub const STATS: u8 = 0x07;
    pub const CHECKPOINT: u8 = 0x08;
    pub const HEALTH: u8 = 0x09;
    pub const GROW: u8 = 0x0A;

    pub const PONG: u8 = 0x81;
    pub const OK: u8 = 0x82;
    pub const NOT_FOUND: u8 = 0x83;
    pub const VALUE: u8 = 0x84;
    pub const ENTRIES: u8 = 0x85;
    pub const ERR: u8 = 0x86;
    pub const OVERLOADED: u8 = 0x87;
    pub const DRAINING: u8 = 0x88;
    pub const STATS_SNAPSHOT: u8 = 0x89;
    pub const CKPT_DONE: u8 = 0x8A;
    pub const HEALTH_INFO: u8 = 0x8B;
    pub const GROWN: u8 = 0x8C;
}

/// Everything that can be wrong with a frame's bytes. Typed so callers
/// (and property tests) can distinguish hostile input from I/O failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the declared frame or field does.
    Truncated {
        /// Bytes the declared shape requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// The length prefix declares an empty payload (no opcode byte).
    Empty,
    /// The opcode byte is not one this protocol defines.
    UnknownOpcode(u8),
    /// The body is longer than its opcode's fields account for.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// An error message field is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {MAX_FRAME} cap"
                )
            }
            FrameError::Empty => write!(f, "empty frame payload"),
            FrameError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            FrameError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A framing failure at the socket level: either the connection broke or
/// the peer sent a malformed frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Io(io::Error),
    /// Malformed frame from the peer.
    Frame(FrameError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "I/O error: {e}"),
            ProtoError::Frame(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        ProtoError::Frame(e)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Look up a key.
    Get(Vec<u8>),
    /// Insert or replace a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key.
    Del(Vec<u8>),
    /// List up to `limit` entries whose key starts with the prefix
    /// (`0` = no limit beyond the frame cap).
    Scan(Vec<u8>, u32),
    /// Ask the daemon to checkpoint and exit gracefully.
    Shutdown,
    /// Admin: export the live telemetry registry as a
    /// `mnemosyne-telemetry-v1` JSON snapshot ([`Response::Stats`]).
    /// Served on the admin side path, even while the server drains.
    Stats,
    /// Admin: run one checkpoint pass right now (truncate the redo and
    /// allocator logs to their durable watermarks), answered with
    /// [`Response::CkptDone`].
    Checkpoint,
    /// Admin: liveness + load report ([`Response::Health`]). Served on
    /// the admin side path, even while the server drains.
    Health,
    /// Admin: grow the persistent heap online by at least this many
    /// bytes, without a restart ([`Response::Grown`]). Growth is atomic:
    /// a crash mid-grow recovers to either the old or the new capacity.
    Grow(u64),
}

/// Whether a request is an admin verb — routed around the batcher queue
/// onto the bounded admin side path, never behind data-plane traffic.
impl Request {
    /// True for [`Request::Stats`], [`Request::Checkpoint`],
    /// [`Request::Health`] and [`Request::Grow`].
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Request::Stats | Request::Checkpoint | Request::Health | Request::Grow(_)
        )
    }
}

/// Result of an on-demand checkpoint ([`Response::CkptDone`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CkptSummary {
    /// Log words durably reclaimed (redo logs plus allocator logs).
    pub reclaimed_words: u64,
    /// Outstanding redo-log words when the pass started.
    pub outstanding_before: u64,
    /// Outstanding redo-log words when it finished.
    pub outstanding_after: u64,
    /// Wall-clock duration of the pass in nanoseconds.
    pub duration_ns: u64,
}

/// Liveness and load report ([`Response::Health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthInfo {
    /// Milliseconds since the service started.
    pub uptime_ms: u64,
    /// Live TCP connections.
    pub conns: u64,
    /// Requests waiting in the batcher queue.
    pub queue_depth: u64,
    /// Requests a worker has pulled but not yet answered.
    pub inflight: u64,
    /// Redo-log words fenced but not yet truncated — what a crash right
    /// now would replay.
    pub outstanding_log_words: u64,
    /// Whether the service is draining for shutdown (data-plane requests
    /// are refused with [`Response::Draining`]; admin reads still work).
    pub draining: bool,
}

/// Result of an online heap growth ([`Response::Grown`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GrowInfo {
    /// Bytes this call added (page-rounded; when a grow interrupted by a
    /// crash left a formatted-but-uncounted extension behind, the next
    /// grow re-adopts it and reports *its* size, not the requested one).
    pub grown_bytes: u64,
    /// Total large-object capacity after the grow.
    pub large_capacity_bytes: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The operation succeeded (PUT, successful DEL, SHUTDOWN).
    Ok,
    /// The key was absent (GET, DEL).
    NotFound,
    /// The key's value (GET).
    Value(Vec<u8>),
    /// Matching key/value pairs (SCAN).
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// The request failed; the payload says why.
    Err(String),
    /// Admission control shed the request (queue or connection limit).
    /// The request was **never enqueued**, so retrying it is always
    /// safe; clients should back off exponentially first.
    Overloaded,
    /// The server is draining for shutdown and accepts no new work.
    /// Like [`Response::Overloaded`], the request was never enqueued.
    Draining,
    /// The live telemetry registry as `mnemosyne-telemetry-v1` JSON
    /// (answer to [`Request::Stats`]).
    Stats(String),
    /// Checkpoint results (answer to [`Request::Checkpoint`]).
    CkptDone(CkptSummary),
    /// Liveness/load report (answer to [`Request::Health`]).
    Health(HealthInfo),
    /// Heap growth results (answer to [`Request::Grow`]).
    Grown(GrowInfo),
}

/// Cursor over a frame payload, enforcing bounds on every read.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(FrameError::Oversized { len: usize::MAX })?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated {
                needed: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Wraps an encoded payload in the length prefix.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Splits one frame off the front of `buf`: validates the length prefix
/// and returns `(payload, total_consumed)`.
fn split_frame(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated {
            needed: 4,
            got: buf.len(),
        });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if buf.len() < 4 + len {
        return Err(FrameError::Truncated {
            needed: 4 + len,
            got: buf.len(),
        });
    }
    Ok((&buf[4..4 + len], 4 + len))
}

impl Request {
    /// Serialises to one full frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Request::Ping => p.push(op::PING),
            Request::Get(k) => {
                p.push(op::GET);
                put_bytes(&mut p, k);
            }
            Request::Put(k, v) => {
                p.push(op::PUT);
                put_bytes(&mut p, k);
                put_bytes(&mut p, v);
            }
            Request::Del(k) => {
                p.push(op::DEL);
                put_bytes(&mut p, k);
            }
            Request::Scan(prefix, limit) => {
                p.push(op::SCAN);
                put_bytes(&mut p, prefix);
                p.extend_from_slice(&limit.to_le_bytes());
            }
            Request::Shutdown => p.push(op::SHUTDOWN),
            Request::Stats => p.push(op::STATS),
            Request::Checkpoint => p.push(op::CHECKPOINT),
            Request::Health => p.push(op::HEALTH),
            Request::Grow(bytes) => {
                p.push(op::GROW);
                p.extend_from_slice(&bytes.to_le_bytes());
            }
        }
        frame(p)
    }

    /// Decodes one frame from the front of `buf`, returning the request
    /// and the bytes consumed (so pipelined frames can follow).
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode(buf: &[u8]) -> Result<(Request, usize), FrameError> {
        let (payload, used) = split_frame(buf)?;
        Ok((Self::decode_payload(payload)?, used))
    }

    /// Decodes a frame payload (the bytes after the length prefix).
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode_payload(payload: &[u8]) -> Result<Request, FrameError> {
        let mut r = Reader::new(payload);
        let opcode = r.take(1)?[0];
        let req = match opcode {
            op::PING => Request::Ping,
            op::GET => Request::Get(r.bytes()?),
            op::PUT => {
                let k = r.bytes()?;
                let v = r.bytes()?;
                Request::Put(k, v)
            }
            op::DEL => Request::Del(r.bytes()?),
            op::SCAN => {
                let prefix = r.bytes()?;
                let limit = r.u32()?;
                Request::Scan(prefix, limit)
            }
            op::SHUTDOWN => Request::Shutdown,
            op::STATS => Request::Stats,
            op::CHECKPOINT => Request::Checkpoint,
            op::HEALTH => Request::Health,
            op::GROW => Request::Grow(r.u64()?),
            other => return Err(FrameError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises to one full frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Response::Pong => p.push(op::PONG),
            Response::Ok => p.push(op::OK),
            Response::NotFound => p.push(op::NOT_FOUND),
            Response::Value(v) => {
                p.push(op::VALUE);
                put_bytes(&mut p, v);
            }
            Response::Entries(entries) => {
                p.push(op::ENTRIES);
                p.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    put_bytes(&mut p, k);
                    put_bytes(&mut p, v);
                }
            }
            Response::Err(msg) => {
                p.push(op::ERR);
                put_bytes(&mut p, msg.as_bytes());
            }
            Response::Overloaded => p.push(op::OVERLOADED),
            Response::Draining => p.push(op::DRAINING),
            Response::Stats(json) => {
                p.push(op::STATS_SNAPSHOT);
                put_bytes(&mut p, json.as_bytes());
            }
            Response::CkptDone(c) => {
                p.push(op::CKPT_DONE);
                p.extend_from_slice(&c.reclaimed_words.to_le_bytes());
                p.extend_from_slice(&c.outstanding_before.to_le_bytes());
                p.extend_from_slice(&c.outstanding_after.to_le_bytes());
                p.extend_from_slice(&c.duration_ns.to_le_bytes());
            }
            Response::Health(h) => {
                p.push(op::HEALTH_INFO);
                p.extend_from_slice(&h.uptime_ms.to_le_bytes());
                p.extend_from_slice(&h.conns.to_le_bytes());
                p.extend_from_slice(&h.queue_depth.to_le_bytes());
                p.extend_from_slice(&h.inflight.to_le_bytes());
                p.extend_from_slice(&h.outstanding_log_words.to_le_bytes());
                p.push(h.draining as u8);
            }
            Response::Grown(g) => {
                p.push(op::GROWN);
                p.extend_from_slice(&g.grown_bytes.to_le_bytes());
                p.extend_from_slice(&g.large_capacity_bytes.to_le_bytes());
            }
        }
        frame(p)
    }

    /// Decodes one frame from the front of `buf`, returning the response
    /// and the bytes consumed.
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode(buf: &[u8]) -> Result<(Response, usize), FrameError> {
        let (payload, used) = split_frame(buf)?;
        Ok((Self::decode_payload(payload)?, used))
    }

    /// Decodes a frame payload (the bytes after the length prefix).
    ///
    /// # Errors
    /// A typed [`FrameError`] for every malformed shape; never panics.
    pub fn decode_payload(payload: &[u8]) -> Result<Response, FrameError> {
        let mut r = Reader::new(payload);
        let opcode = r.take(1)?[0];
        let resp = match opcode {
            op::PONG => Response::Pong,
            op::OK => Response::Ok,
            op::NOT_FOUND => Response::NotFound,
            op::VALUE => Response::Value(r.bytes()?),
            op::ENTRIES => {
                let n = r.u32()? as usize;
                let mut entries = Vec::new();
                for _ in 0..n {
                    let k = r.bytes()?;
                    let v = r.bytes()?;
                    entries.push((k, v));
                }
                Response::Entries(entries)
            }
            op::ERR => {
                let raw = r.bytes()?;
                let msg = String::from_utf8(raw).map_err(|_| FrameError::BadUtf8)?;
                Response::Err(msg)
            }
            op::OVERLOADED => Response::Overloaded,
            op::DRAINING => Response::Draining,
            op::STATS_SNAPSHOT => {
                let raw = r.bytes()?;
                let json = String::from_utf8(raw).map_err(|_| FrameError::BadUtf8)?;
                Response::Stats(json)
            }
            op::CKPT_DONE => Response::CkptDone(CkptSummary {
                reclaimed_words: r.u64()?,
                outstanding_before: r.u64()?,
                outstanding_after: r.u64()?,
                duration_ns: r.u64()?,
            }),
            op::HEALTH_INFO => Response::Health(HealthInfo {
                uptime_ms: r.u64()?,
                conns: r.u64()?,
                queue_depth: r.u64()?,
                inflight: r.u64()?,
                outstanding_log_words: r.u64()?,
                draining: r.take(1)?[0] != 0,
            }),
            op::GROWN => Response::Grown(GrowInfo {
                grown_bytes: r.u64()?,
                large_capacity_bytes: r.u64()?,
            }),
            other => return Err(FrameError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Reads one frame payload from a stream. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer hung up between requests).
///
/// # Errors
/// [`ProtoError::Io`] on transport failure (including EOF mid-frame),
/// [`ProtoError::Frame`] on a bad length prefix.
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no more frames" from "died mid-frame" by hand: a clean
    // shutdown ends exactly on a frame boundary.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(ProtoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Frame(FrameError::Oversized { len }));
    }
    if len == 0 {
        return Err(ProtoError::Frame(FrameError::Empty));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one request frame; `Ok(None)` on clean EOF.
///
/// # Errors
/// See [`ProtoError`].
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    match read_frame(r)? {
        Some(payload) => Ok(Some(Request::decode_payload(&payload)?)),
        None => Ok(None),
    }
}

/// Reads one response frame; `Ok(None)` on clean EOF.
///
/// # Errors
/// See [`ProtoError`].
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, ProtoError> {
    match read_frame(r)? {
        Some(payload) => Ok(Some(Response::decode_payload(&payload)?)),
        None => Ok(None),
    }
}

/// Writes one request frame (no flush; callers batch then flush).
///
/// # Errors
/// Transport failure.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    w.write_all(&req.encode())
}

/// Writes one response frame (no flush; callers batch then flush).
///
/// # Errors
/// Transport failure.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    w.write_all(&resp.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_variants() {
        let cases = [
            Request::Ping,
            Request::Get(b"k".to_vec()),
            Request::Put(b"key".to_vec(), b"value".to_vec()),
            Request::Del(vec![]),
            Request::Scan(b"pre".to_vec(), 17),
            Request::Shutdown,
            Request::Stats,
            Request::Checkpoint,
            Request::Health,
            Request::Grow(16 << 20),
        ];
        for req in cases {
            let bytes = req.encode();
            let (back, used) = Request::decode(&bytes).unwrap();
            assert_eq!(back, req);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let cases = [
            Response::Pong,
            Response::Ok,
            Response::NotFound,
            Response::Value(b"v".to_vec()),
            Response::Entries(vec![(b"a".to_vec(), b"1".to_vec()), (vec![], vec![])]),
            Response::Err("boom".to_string()),
            Response::Overloaded,
            Response::Draining,
            Response::Stats("{\"schema\":\"mnemosyne-telemetry-v1\"}".to_string()),
            Response::CkptDone(CkptSummary {
                reclaimed_words: 1,
                outstanding_before: 2,
                outstanding_after: 3,
                duration_ns: u64::MAX,
            }),
            Response::Health(HealthInfo {
                uptime_ms: 12,
                conns: 3,
                queue_depth: 400,
                inflight: 5,
                outstanding_log_words: 67,
                draining: true,
            }),
            Response::Grown(GrowInfo {
                grown_bytes: 8 << 20,
                large_capacity_bytes: 12 << 20,
            }),
        ];
        for resp in cases {
            let bytes = resp.encode();
            let (back, used) = Response::decode(&bytes).unwrap();
            assert_eq!(back, resp);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn oversized_and_empty_frames_are_typed_errors() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.push(op::PING);
        assert!(matches!(
            Request::decode(&buf),
            Err(FrameError::Oversized { .. })
        ));
        assert_eq!(Request::decode(&0u32.to_le_bytes()), Err(FrameError::Empty));
    }

    #[test]
    fn pipelined_frames_decode_in_sequence() {
        let mut buf = Request::Ping.encode();
        buf.extend(Request::Get(b"x".to_vec()).encode());
        let (first, used) = Request::decode(&buf).unwrap();
        assert_eq!(first, Request::Ping);
        let (second, _) = Request::decode(&buf[used..]).unwrap();
        assert_eq!(second, Request::Get(b"x".to_vec()));
    }
}
