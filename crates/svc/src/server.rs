//! The TCP front end: accepts connections and pumps framed requests
//! into a [`KvService`].
//!
//! Each connection gets a reader (the connection thread itself) and a
//! writer thread. The reader decodes frames and submits them to the
//! batcher without waiting, forwarding each [`Ticket`] to the writer
//! over a channel; the writer redeems tickets strictly in submission
//! order. That is the pipelining contract: a client may have any number
//! of requests in flight and responses always come back in request
//! order, even though the batcher completes them out of order across
//! worker threads.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::proto::{read_request, write_response, ProtoError, Request, Response};
use crate::service::{KvService, Ticket};

struct ServerShared {
    svc: KvService,
    stop: AtomicBool,
    /// Set when a client sends SHUTDOWN (or by [`KvServer::request_shutdown`]);
    /// the daemon main loop waits on it to begin an orderly power-down.
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
}

impl ServerShared {
    fn request_shutdown(&self) {
        *self.shutdown.lock() = true;
        self.shutdown_cv.notify_all();
    }
}

/// A listening `mnemosyned` server. Dropping it does NOT stop the
/// threads — call [`KvServer::stop`].
pub struct KvServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl KvServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections on a background thread.
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn bind(svc: KvService, addr: &str) -> std::io::Result<KvServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            svc,
            stop: AtomicBool::new(false),
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(KvServer {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until some client sends SHUTDOWN or
    /// [`KvServer::request_shutdown`] is called.
    pub fn wait_shutdown_requested(&self) {
        let mut flag = self.shared.shutdown.lock();
        while !*flag {
            self.shared.shutdown_cv.wait(&mut flag);
        }
    }

    /// Asks the daemon loop to power down, as if a client had sent
    /// SHUTDOWN.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Stops accepting, force-closes the remaining connections, and joins
    /// every server thread. The underlying [`KvService`] keeps running —
    /// stop it separately.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
        let conns: Vec<(TcpStream, JoinHandle<()>)> = self.shared.conns.lock().drain(..).collect();
        for (stream, join) in conns {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = join.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if !shared.svc.conn_opened() {
            // Over the connection bound: refuse with one typed frame
            // instead of accepting work we can't serve (or silently
            // hanging the client in the kernel backlog).
            shared.svc.metrics().overload_conns.inc();
            let mut w = BufWriter::new(&stream);
            let _ = write_response(&mut w, &Response::Overloaded);
            let _ = w.flush();
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        shared.svc.metrics().conns.inc();
        let handle = match stream.try_clone() {
            Ok(h) => h,
            Err(_) => {
                shared.svc.conn_closed();
                continue;
            }
        };
        let join = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || serve_conn(stream, &shared))
        };
        shared.conns.lock().push((handle, join));
    }
}

fn serve_conn(stream: TcpStream, shared: &Arc<ServerShared>) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let (tx, rx) = mpsc::channel::<Ticket>();
    let writer = std::thread::spawn(move || write_loop(stream, &rx));
    read_loop(reader, shared, &tx);
    drop(tx); // writer drains outstanding tickets, then exits
    let _ = writer.join();
    shared.svc.conn_closed();
}

fn read_loop(
    mut reader: BufReader<TcpStream>,
    shared: &Arc<ServerShared>,
    tx: &mpsc::Sender<Ticket>,
) {
    loop {
        let ticket = match read_request(&mut reader) {
            Ok(Some(Request::Shutdown)) => {
                // Drain before acking: every request queued or in flight
                // anywhere on the service commits (or fails) first, so
                // the SHUTDOWN ack means "all accepted writes are
                // settled and no new work will be admitted".
                let drained = shared.svc.drain();
                shared.request_shutdown();
                Ticket::ready(if drained {
                    Response::Ok
                } else {
                    Response::Err("service unavailable".to_string())
                })
            }
            Ok(Some(req)) => shared.svc.submit(req),
            // Clean EOF: the client hung up between frames.
            Ok(None) => return,
            Err(ProtoError::Frame(e)) => {
                // A malformed frame poisons the stream (framing is lost);
                // answer once, then drop the connection.
                let _ = tx.send(Ticket::ready(Response::Err(format!("bad frame: {e}"))));
                return;
            }
            Err(ProtoError::Io(_)) => return,
        };
        if tx.send(ticket).is_err() {
            return;
        }
    }
}

fn write_loop(stream: TcpStream, rx: &mpsc::Receiver<Ticket>) {
    let mut w = BufWriter::new(&stream);
    'conn: while let Ok(first) = rx.recv() {
        // Write responses back-to-back while more tickets are already
        // queued, then flush once — the syscall-batching half of
        // pipelining.
        let mut ticket = first;
        loop {
            let resp = ticket.wait();
            if write_response(&mut w, &resp).is_err() {
                break 'conn;
            }
            match rx.try_recv() {
                Ok(next) => ticket = next,
                Err(_) => break,
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    drop(w);
    // The conns registry holds a clone of this socket for forced stop;
    // shut the socket itself down so the peer sees EOF the moment its
    // connection is done (poisoned frame, service shutdown), not when
    // the whole server stops.
    let _ = stream.shutdown(Shutdown::Both);
}
