//! Property tests of the wire framing: encode/decode round trips for
//! every request and response shape, and totality of the decoder —
//! truncated, oversized, and garbage inputs yield typed errors, never
//! panics.

use mnemosyne_svc::proto::{
    self, CkptSummary, FrameError, GrowInfo, HealthInfo, Request, Response,
};
use proptest::prelude::*;

fn bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_round_trips(key in bytes(64), value in bytes(256), limit in any::<u32>(), grow in any::<u64>(), pick in 0u8..10) {
        let req = match pick {
            0 => Request::Ping,
            1 => Request::Get(key.clone()),
            2 => Request::Put(key.clone(), value.clone()),
            3 => Request::Del(key.clone()),
            4 => Request::Scan(key.clone(), limit),
            5 => Request::Stats,
            6 => Request::Checkpoint,
            7 => Request::Health,
            8 => Request::Grow(grow),
            _ => Request::Shutdown,
        };
        let wire = req.encode();
        let (decoded, used) = Request::decode(&wire).unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn response_round_trips(value in bytes(256), err_raw in bytes(40), n in 0usize..8, words in proptest::collection::vec(any::<u64>(), 6..7), flag in any::<bool>(), pick in 0u8..10) {
        // The shim has no regex string strategy; derive printable ASCII.
        let err: String = err_raw.iter().map(|b| char::from(b % 95 + 32)).collect();
        let resp = match pick {
            0 => Response::Pong,
            1 => Response::Ok,
            2 => Response::NotFound,
            3 => Response::Value(value.clone()),
            4 => Response::Entries(
                (0..n).map(|i| (vec![i as u8], value.clone())).collect(),
            ),
            5 => Response::Stats(err.clone()),
            6 => Response::CkptDone(CkptSummary {
                reclaimed_words: words[0],
                outstanding_before: words[1],
                outstanding_after: words[2],
                duration_ns: words[3],
            }),
            7 => Response::Health(HealthInfo {
                uptime_ms: words[0],
                conns: words[1],
                queue_depth: words[2],
                inflight: words[3],
                outstanding_log_words: words[4],
                draining: flag,
            }),
            8 => Response::Grown(GrowInfo {
                grown_bytes: words[0],
                large_capacity_bytes: words[5],
            }),
            _ => Response::Err(err.clone()),
        };
        let wire = resp.encode();
        let (decoded, used) = Response::decode(&wire).unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(decoded, resp);
    }

    /// Any byte string whatsoever decodes to Ok or a typed FrameError —
    /// the decoder must be total.
    #[test]
    fn arbitrary_bytes_never_panic(data in bytes(512)) {
        let _ = Request::decode(&data);
        let _ = Response::decode(&data);
    }

    /// Every strict prefix of a valid frame is a Truncated error (the
    /// decoder asks for more bytes rather than misparsing).
    #[test]
    fn truncated_frames_are_typed(key in bytes(32), value in bytes(64)) {
        let wire = Request::Put(key, value).encode();
        for cut in 0..wire.len() {
            match Request::decode(&wire[..cut]) {
                Err(FrameError::Truncated { .. }) => {}
                other => prop_assert!(false, "cut at {}: {:?}", cut, other),
            }
        }
    }

    /// Flipping the opcode to garbage yields UnknownOpcode, not a panic
    /// or a misparse.
    #[test]
    fn unknown_opcodes_are_typed(op in 0x20u8..0x80) {
        let mut wire = Request::Ping.encode();
        wire[4] = op;
        prop_assert_eq!(
            Request::decode(&wire).unwrap_err(),
            FrameError::UnknownOpcode(op)
        );
    }

    /// Pipelined frames: concatenated requests decode back in order,
    /// consuming exactly their own bytes.
    #[test]
    fn concatenated_frames_decode_in_sequence(keys in proptest::collection::vec(bytes(16), 1..8)) {
        let reqs: Vec<Request> = keys.into_iter().map(Request::Get).collect();
        let mut wire = Vec::new();
        for r in &reqs {
            wire.extend_from_slice(&r.encode());
        }
        let mut off = 0;
        for expect in &reqs {
            let (got, used) = Request::decode(&wire[off..]).unwrap();
            prop_assert_eq!(&got, expect);
            off += used;
        }
        prop_assert_eq!(off, wire.len());
    }
}

#[test]
fn oversized_frame_is_typed() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&(proto::MAX_FRAME as u32 + 1).to_le_bytes());
    wire.push(0x01);
    match Request::decode(&wire) {
        Err(FrameError::Oversized { len }) => assert_eq!(len, proto::MAX_FRAME + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_typed() {
    // A PING whose body claims one extra byte.
    let wire = [2u8, 0, 0, 0, 0x01, 0xEE];
    match Request::decode(&wire) {
        Err(FrameError::TrailingBytes { extra }) => assert_eq!(extra, 1),
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

#[test]
fn empty_frame_is_typed() {
    let wire = [0u8, 0, 0, 0];
    assert_eq!(Request::decode(&wire).unwrap_err(), FrameError::Empty);
}

#[test]
fn bad_utf8_in_err_response_is_typed() {
    // An ERR response whose message field carries invalid UTF-8:
    // opcode + u32 field length + two bad bytes.
    let mut wire = Vec::new();
    wire.extend_from_slice(&7u32.to_le_bytes());
    wire.push(0x86);
    wire.extend_from_slice(&2u32.to_le_bytes());
    wire.extend_from_slice(&[0xFF, 0xFE]);
    assert_eq!(Response::decode(&wire).unwrap_err(), FrameError::BadUtf8);
}
