//! Crash sweep over the serving path: a live TCP service is killed at
//! systematically chosen durability primitives — during accepts, batch
//! commits, and shutdown — and after every reboot the invariant is the
//! service's durability contract: **no acknowledged write may be
//! missing**. (Unacknowledged writes may or may not have made it; any
//! committed prefix is legal.)
//!
//! The injected crash fires inside a batcher worker (the only service
//! threads that touch persistent memory); the worker unwinds, the
//! service marks itself dead and answers every outstanding and later
//! request with an error, so clients — which do nothing but socket I/O —
//! wind down cleanly and only commits acknowledged *before* the crash
//! are in the acked log the checker replays.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use mnemosyne::{crash_sweep, Mnemosyne, ScmConfig, SweepConfig, Truncation};
use mnemosyne_svc::{Client, KvServer, KvService, SvcConfig};

const CLIENTS: u8 = 2;
const PUTS_PER_CLIENT: u8 = 6;

fn builder(p: &Path) -> mnemosyne::MnemosyneBuilder {
    Mnemosyne::builder(p)
        .scm_config(ScmConfig::virtual_clock(16 << 20))
        .truncation(Truncation::Sync)
}

/// Drives the full serving stack and records every acknowledged write.
/// Called once per crash point on a fresh machine, so it resets the log
/// on entry.
fn serve_workload(
    m: &Mnemosyne,
    acked: &Mutex<HashMap<Vec<u8>, Vec<u8>>>,
) -> Result<(), mnemosyne::Error> {
    acked.lock().unwrap().clear();
    let svc = KvService::start(
        m,
        SvcConfig {
            workers: 2,
            max_batch: 4,
            ..SvcConfig::default()
        },
    )?;
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    let joins: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut done = Vec::new();
                let Ok(mut c) = Client::connect(addr) else {
                    return done;
                };
                for i in 0..PUTS_PER_CLIENT {
                    let key = vec![b'c', t, i];
                    let value = vec![t ^ i, i, t];
                    // An Err response or broken socket means the machine
                    // died: stop, acknowledging nothing further.
                    match c.put(&key, &value) {
                        Ok(()) => done.push((key, value)),
                        Err(_) => break,
                    }
                }
                done
            })
        })
        .collect();
    for j in joins {
        if let Ok(writes) = j.join() {
            acked.lock().unwrap().extend(writes);
        }
    }
    server.stop();
    svc.stop();
    Ok(())
}

/// Every write a client saw acknowledged must read back intact after
/// recovery.
fn check_acked(m: &Mnemosyne, acked: &Mutex<HashMap<Vec<u8>, Vec<u8>>>) -> Result<(), String> {
    let svc = KvService::start(m, SvcConfig::default()).map_err(|e| e.to_string())?;
    let result = (|| {
        for (key, value) in acked.lock().unwrap().iter() {
            match svc.call(mnemosyne_svc::Request::Get(key.clone())) {
                mnemosyne_svc::Response::Value(v) if &v == value => {}
                mnemosyne_svc::Response::Value(v) => {
                    return Err(format!(
                        "acked key {key:?} recovered with wrong value {v:?} (want {value:?})"
                    ));
                }
                other => {
                    return Err(format!(
                        "acked key {key:?} lost after recovery (got {other:?})"
                    ));
                }
            }
        }
        Ok(())
    })();
    svc.stop();
    result
}

/// Interleaves acknowledged puts with online GROW calls. Called once per
/// crash point on a fresh machine.
fn grow_workload(
    m: &Mnemosyne,
    acked: &Mutex<HashMap<Vec<u8>, Vec<u8>>>,
) -> Result<(), mnemosyne::Error> {
    acked.lock().unwrap().clear();
    let svc = KvService::start(
        m,
        SvcConfig {
            workers: 1,
            max_batch: 4,
            ..SvcConfig::default()
        },
    )?;
    'rounds: for round in 0..3u8 {
        for i in 0..3u8 {
            let key = vec![b'g', round, i];
            let value = vec![round ^ i, i];
            match svc.call(mnemosyne_svc::Request::Put(key.clone(), value.clone())) {
                mnemosyne_svc::Response::Ok => {
                    acked.lock().unwrap().insert(key, value);
                }
                // Machine died (injected crash): nothing further commits.
                _ => break 'rounds,
            }
        }
        match svc.call(mnemosyne_svc::Request::Grow(1 << 20)) {
            mnemosyne_svc::Response::Grown(_) => {}
            _ => break 'rounds,
        }
    }
    svc.stop();
    Ok(())
}

/// After a crash anywhere in the put/grow interleaving — including
/// mid-grow — the heap must recover to a whole number of extension areas
/// (the old or the new capacity, never a torn in-between) and every
/// acknowledged write must read back intact.
fn check_grow(m: &Mnemosyne, acked: &Mutex<HashMap<Vec<u8>, Vec<u8>>>) -> Result<(), String> {
    const BASE: u64 = 4 << 20; // builder default large area
    const EXT: u64 = 1 << 20; // per-grow extension size
    let cap = m.heap().large_capacity();
    if cap < BASE || !(cap - BASE).is_multiple_of(EXT) || (cap - BASE) / EXT > 3 {
        return Err(format!(
            "recovered large capacity {cap} is not old-or-new (base {BASE} + 0..=3 x {EXT})"
        ));
    }
    check_acked(m, acked)
}

#[test]
fn grow_crash_sweep_recovers_old_or_new_capacity() {
    let base = std::env::temp_dir().join(format!(
        "mnemo-grow-sweep-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&base).ok();
    let acked = Mutex::new(HashMap::new());
    // recovery_points > 0: each surviving point is additionally re-crashed
    // during its own recovery (double fault), which is where a torn grow
    // commit would surface as a corrupt heap header or region table.
    let cfg = SweepConfig {
        max_points: 12,
        recovery_points: 2,
        ..SweepConfig::default()
    };
    let report = crash_sweep(
        &base,
        &cfg,
        builder,
        |m| grow_workload(m, &acked),
        |m| check_grow(m, &acked),
    )
    .expect("sweep harness");
    assert!(
        report.passed(),
        "grow atomicity violated: {:?}",
        report.failures
    );
    assert!(report.points_tested >= 8, "report: {report}");
    assert!(
        report.crashes_fired > 0,
        "no crash ever fired mid-workload: {report}"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn crash_sweep_never_loses_acknowledged_writes() {
    let base = std::env::temp_dir().join(format!(
        "mnemo-svc-sweep-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&base).ok();
    let acked = Mutex::new(HashMap::new());
    let cfg = SweepConfig {
        max_points: 14,
        recovery_points: 0,
        ..SweepConfig::default()
    };
    let report = crash_sweep(
        &base,
        &cfg,
        builder,
        |m| serve_workload(m, &acked),
        |m| check_acked(m, &acked),
    )
    .expect("sweep harness");
    assert!(
        report.passed(),
        "acked-write invariant violated: {:?}",
        report.failures
    );
    assert!(report.points_tested >= 10, "report: {report}");
    assert!(
        report.crashes_fired > 0,
        "no crash ever fired mid-service: {report}"
    );
    std::fs::remove_dir_all(&base).ok();
}
