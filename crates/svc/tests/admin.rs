//! Admin side-path tests: STATS/CHECKPOINT/HEALTH/GROW over the wire,
//! their behaviour during drain and against the background checkpointer,
//! the admin inflight-bound accounting, and the acceptance contract that
//! every metric name a live STATS snapshot reports is documented in
//! METRICS.md.

use std::path::{Path, PathBuf};

use mnemosyne::Mnemosyne;
use mnemosyne_obs::TelemetrySnapshot;
use mnemosyne_svc::proto::{Request, Response};
use mnemosyne_svc::{Client, KvServer, KvService, SvcConfig};

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mnemo-admin-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn boot(d: &Path) -> Mnemosyne {
    Mnemosyne::builder(d).scm_size(64 << 20).open().unwrap()
}

fn metrics_md() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS.md"))
        .expect("METRICS.md at repo root")
}

/// The tentpole acceptance path: all four admin verbs over a live TCP
/// connection, with the STATS snapshot parseable as
/// `mnemosyne-telemetry-v1` and every metric name it carries documented
/// in METRICS.md.
#[test]
fn admin_verbs_round_trip_over_tcp() {
    let d = dir("verbs");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    for i in 0..20u8 {
        c.put(&[b'a', i], &[i]).unwrap();
    }

    // STATS: a live registry snapshot, full round trip through JSON.
    let raw = c.stats().unwrap();
    assert!(raw.contains("mnemosyne-telemetry-v1"), "schema tag missing");
    let snap = TelemetrySnapshot::from_json(&raw).unwrap();
    assert!(snap.counter("svc.requests") >= 20);
    assert!(snap.counter("svc.admin.requests") >= 1);
    let md = metrics_md();
    for name in snap.counters.keys().chain(snap.histograms.keys()) {
        assert!(
            md.contains(&format!("`{name}`")),
            "STATS reports `{name}` but METRICS.md does not document it"
        );
    }

    // HEALTH: sane live values.
    let h = c.health().unwrap();
    assert!(h.conns >= 1, "this very connection must be counted: {h:?}");
    assert!(!h.draining);

    // CHECKPOINT: on-demand pass; outstanding words never increase.
    let s = c.checkpoint().unwrap();
    assert!(
        s.outstanding_after <= s.outstanding_before,
        "checkpoint grew the outstanding log: {s:?}"
    );
    assert_eq!(m.telemetry().snapshot().counter("mtm.ckpt.runs"), 1);

    // GROW: capacity ratchets up by whole extension areas, online.
    let before = m.heap().large_capacity();
    let g1 = c.grow(1 << 20).unwrap();
    assert!(g1.grown_bytes >= 1 << 20);
    assert_eq!(g1.large_capacity_bytes, before + g1.grown_bytes);
    let g2 = c.grow(2 << 20).unwrap();
    assert_eq!(
        g2.large_capacity_bytes,
        g1.large_capacity_bytes + g2.grown_bytes
    );
    assert_eq!(m.heap().large_capacity(), g2.large_capacity_bytes);
    // The new capacity is usable immediately: a block bigger than the
    // whole original large area now succeeds.
    let snap = m.telemetry().snapshot();
    assert_eq!(snap.counter("pheap.grows"), 2);
    assert_eq!(
        snap.counter("pheap.grow_bytes"),
        g1.grown_bytes + g2.grown_bytes
    );

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// STATS and HEALTH must keep answering while the service drains — that
/// is exactly when an operator is watching — even though the data plane
/// refuses new work with `Draining`.
#[test]
fn stats_and_health_answer_during_drain() {
    let d = dir("drain");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    assert_eq!(
        svc.call(Request::Put(b"k".to_vec(), b"v".to_vec())),
        Response::Ok
    );
    assert!(svc.drain(), "drain on a live machine");

    // Data plane: refused with the typed drain signal.
    assert_eq!(
        svc.call(Request::Put(b"late".to_vec(), b"x".to_vec())),
        Response::Draining
    );
    // Admin side path: still fully served.
    match svc.call(Request::Stats) {
        Response::Stats(json) => {
            let snap = TelemetrySnapshot::from_json(&json).unwrap();
            assert!(snap.counter("svc.drains") >= 1);
        }
        other => panic!("STATS during drain failed: {other:?}"),
    }
    match svc.call(Request::Health) {
        Response::Health(h) => assert!(h.draining, "HEALTH must report the drain"),
        other => panic!("HEALTH during drain failed: {other:?}"),
    }

    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// On-demand CHECKPOINT races the background checkpoint driver and a
/// write workload; every combination must answer cleanly and the logs
/// stay bounded.
#[test]
fn checkpoint_races_background_checkpointer() {
    let d = dir("ckptrace");
    let m = boot(&d);
    let svc = KvService::start(
        &m,
        SvcConfig {
            workers: 2,
            ckpt_interval: std::time::Duration::from_millis(1),
            ..SvcConfig::default()
        },
    )
    .unwrap();
    for round in 0..10u8 {
        for i in 0..10u8 {
            assert_eq!(
                svc.call(Request::Put(vec![round, i], vec![i; 32])),
                Response::Ok
            );
        }
        match svc.call(Request::Checkpoint) {
            Response::CkptDone(_) => {}
            other => panic!("on-demand checkpoint round {round} failed: {other:?}"),
        }
    }
    let snap = m.telemetry().snapshot();
    assert!(snap.counter("mtm.ckpt.runs") >= 10);
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// The admin inflight bound accounts exactly: under concurrent hammering
/// every request is either executed or typed-rejected, and the two
/// counters add up to the number of calls made.
#[test]
fn admin_bound_accounting_is_exact() {
    let d = dir("bound");
    let m = boot(&d);
    let svc = KvService::start(
        &m,
        SvcConfig {
            max_admin: 1,
            ..SvcConfig::default()
        },
    )
    .unwrap();
    const THREADS: u64 = 8;
    const CALLS: u64 = 25;
    let joins: Vec<_> = (0..THREADS)
        .map(|_| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                for _ in 0..CALLS {
                    match svc.call(Request::Stats) {
                        Response::Stats(_) | Response::Overloaded => {}
                        other => panic!("unexpected admin response: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
    let snap = m.telemetry().snapshot();
    assert_eq!(
        snap.counter("svc.admin.requests") + snap.counter("svc.admin.rejected"),
        THREADS * CALLS,
        "every admin call must be executed or typed-rejected"
    );
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// Mutating admin verbs respect the lifecycle: a stopped service refuses
/// CHECKPOINT and GROW but still serves the read-only verbs.
#[test]
fn stopped_service_refuses_mutating_admin_verbs() {
    let d = dir("stopped");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    svc.stop();
    assert!(matches!(svc.call(Request::Checkpoint), Response::Err(_)));
    assert!(matches!(svc.call(Request::Grow(1 << 20)), Response::Err(_)));
    assert!(matches!(svc.call(Request::Stats), Response::Stats(_)));
    assert!(matches!(svc.call(Request::Health), Response::Health(_)));
    std::fs::remove_dir_all(&d).ok();
}
