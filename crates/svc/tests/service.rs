//! End-to-end tests of the mnemosyned service: TCP round trips,
//! pipelining, group-commit batching, graceful restart durability, and
//! the METRICS.md contract for the `svc.*` names.

use std::path::{Path, PathBuf};

use mnemosyne::Mnemosyne;
use mnemosyne_svc::proto::{Request, Response};
use mnemosyne_svc::{Client, KvServer, KvService, SvcConfig};

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mnemo-svc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn boot(d: &Path) -> Mnemosyne {
    Mnemosyne::builder(d).scm_size(32 << 20).open().unwrap()
}

#[test]
fn tcp_round_trip_all_ops() {
    let d = dir("ops");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    c.ping().unwrap();
    assert_eq!(c.get(b"missing").unwrap(), None);
    c.put(b"alpha", b"1").unwrap();
    c.put(b"beta", b"2").unwrap();
    c.put(b"alpha", b"one").unwrap();
    assert_eq!(c.get(b"alpha").unwrap(), Some(b"one".to_vec()));
    assert!(c.del(b"beta").unwrap());
    assert!(!c.del(b"beta").unwrap());
    assert_eq!(c.get(b"beta").unwrap(), None);
    for i in 0..10u8 {
        c.put(&[b'p', i], &[i]).unwrap();
    }
    let entries = c.scan(b"p", 0).unwrap();
    assert_eq!(entries.len(), 10);
    assert_eq!(c.scan(b"p", 4).unwrap().len(), 4);
    assert_eq!(c.scan(b"zz", 0).unwrap().len(), 0);

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn pipelined_requests_answered_in_order() {
    let d = dir("pipe");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Fire a window of puts without reading a single response …
    const N: u32 = 64;
    for i in 0..N {
        c.send(&Request::Put(
            format!("k{i}").into_bytes(),
            format!("v{i}").into_bytes(),
        ))
        .unwrap();
    }
    assert_eq!(c.in_flight(), N as usize);
    // … then drain: every response arrives, in request order.
    for i in 0..N {
        assert_eq!(c.recv().unwrap(), Response::Ok, "put {i}");
    }
    assert_eq!(c.in_flight(), 0);
    // Interleave reads and writes in one window; order still holds.
    for i in 0..N {
        c.send(&Request::Get(format!("k{i}").into_bytes())).unwrap();
    }
    for i in 0..N {
        assert_eq!(
            c.recv().unwrap(),
            Response::Value(format!("v{i}").into_bytes()),
            "get {i}"
        );
    }

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn queued_writes_coalesce_into_one_commit() {
    let d = dir("batch");
    let m = boot(&d);
    // No workers yet: requests pile up in the queue.
    let svc = KvService::start(
        &m,
        SvcConfig {
            workers: 0,
            max_batch: 64,
            ..SvcConfig::default()
        },
    )
    .unwrap();
    let before = m.mtm().stats().commits;
    let tickets: Vec<_> = (0..10u8)
        .map(|i| svc.submit(Request::Put(vec![b'b', i], vec![i])))
        .collect();
    // One worker drains the whole queue as a single batch — ten
    // acknowledged writes, ONE durable transaction.
    svc.spawn_worker();
    for t in tickets {
        assert_eq!(t.wait(), Response::Ok);
    }
    assert_eq!(
        m.mtm().stats().commits - before,
        1,
        "10 queued writes should commit as one batch"
    );
    let telemetry = m.telemetry().snapshot();
    let batches = telemetry.histogram("svc.batch_size").unwrap();
    assert_eq!(batches.count, 1);
    assert_eq!(telemetry.counter("svc.requests"), 10);

    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn graceful_restart_preserves_data_and_counts_recovery() {
    let d = dir("restart");
    {
        let m = boot(&d);
        let svc = KvService::start(&m, SvcConfig::default()).unwrap();
        assert_eq!(m.telemetry().snapshot().counter("svc.recoveries"), 0);
        let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        for i in 0..20u8 {
            c.put(&[b'r', i], &[i, i]).unwrap();
        }
        // The daemon's power-down sequence.
        c.shutdown().unwrap();
        server.wait_shutdown_requested();
        server.stop();
        svc.stop();
        m.shutdown().unwrap();
    }
    {
        // Same directory: the service resumes the previous incarnation.
        let m = boot(&d);
        let svc = KvService::start(&m, SvcConfig::default()).unwrap();
        assert_eq!(m.telemetry().snapshot().counter("svc.recoveries"), 1);
        let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        for i in 0..20u8 {
            assert_eq!(c.get(&[b'r', i]).unwrap(), Some(vec![i, i]), "key {i}");
        }
        server.stop();
        svc.stop();
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn stopped_service_fails_new_requests() {
    let d = dir("stopped");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    svc.stop();
    assert!(svc.is_stopped());
    match svc.call(Request::Put(b"late".to_vec(), b"x".to_vec())) {
        Response::Err(_) => {}
        other => panic!("expected an error after stop, got {other:?}"),
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn concurrent_clients_all_acknowledged() {
    let d = dir("many");
    let m = boot(&d);
    let svc = KvService::start(
        &m,
        SvcConfig {
            workers: 4,
            ..SvcConfig::default()
        },
    )
    .unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let joins: Vec<_> = (0..4u8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..25u8 {
                    c.put(&[t, i], &[t ^ i]).unwrap();
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    for t in 0..4u8 {
        for i in 0..25u8 {
            assert_eq!(c.get(&[t, i]).unwrap(), Some(vec![t ^ i]));
        }
    }
    let snap = m.telemetry().snapshot();
    assert!(snap.counter("svc.requests") >= 200);
    assert!(snap.counter("svc.conns") >= 5);
    assert!(snap.histogram("svc.request_ns").is_some());

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// Every `svc.*` metric the service registers must be documented in
/// METRICS.md — the svc-side companion of the stack-wide completeness
/// test (which cannot see service metrics because it only boots the
/// stack).
#[test]
fn metrics_md_documents_every_svc_metric() {
    let d = dir("metrics");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS.md"))
        .expect("METRICS.md at repo root");
    let names: Vec<_> = m
        .telemetry()
        .metric_names()
        .into_iter()
        .filter(|n| n.starts_with("svc."))
        .collect();
    assert!(
        names.len() >= 5,
        "expected the five svc metrics, got {names:?}"
    );
    for name in names {
        assert!(
            md.contains(&format!("`{name}`")),
            "metric `{name}` is registered but not documented in METRICS.md"
        );
    }
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}
