//! Network-fault and overload tests: hostile bytes on the wire (torn
//! frames, garbage opcodes, mid-batch disconnects) must never take the
//! service down or lose an acknowledged write, and past its admission
//! bounds the service degrades with typed `Overloaded`/`Draining`
//! signals instead of unbounded queues or silent hangs.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};

use mnemosyne::{CrashPolicy, Mnemosyne, ScmConfig, Truncation};
use mnemosyne_svc::proto::{read_response, Request, Response};
use mnemosyne_svc::{Client, ClientError, KvServer, KvService, SvcConfig};

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mnemo-netf-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn boot(d: &Path) -> Mnemosyne {
    Mnemosyne::builder(d).scm_size(32 << 20).open().unwrap()
}

fn shed_count(m: &Mnemosyne) -> u64 {
    m.telemetry().snapshot().counter("svc.overload.shed")
}

/// A frame whose length prefix promises more bytes than ever arrive.
/// The reader blocks on the body until the abort; the connection dies,
/// the service doesn't.
#[test]
fn torn_frame_only_kills_its_own_connection() {
    let d = dir("torn");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut attacker = TcpStream::connect(addr).unwrap();
    attacker.write_all(&100u32.to_le_bytes()).unwrap();
    attacker.write_all(&[0x03, 1, 2, 3]).unwrap(); // 4 of 100 promised bytes
    attacker.shutdown(Shutdown::Both).unwrap();

    let mut c = Client::connect(addr).unwrap();
    c.put(b"after-torn", b"v").unwrap();
    assert_eq!(c.get(b"after-torn").unwrap(), Some(b"v".to_vec()));

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// A complete frame with an opcode the protocol doesn't know: framing is
/// lost, so the server answers one typed `bad frame` error and closes —
/// and a fresh connection is unaffected.
#[test]
fn garbage_opcode_answered_with_bad_frame_then_close() {
    let d = dir("garbage");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&1u32.to_le_bytes()).unwrap();
    s.write_all(&[0xEE]).unwrap();
    s.flush().unwrap();
    match read_response(&mut s).unwrap() {
        Some(Response::Err(msg)) => assert!(msg.contains("bad frame"), "got: {msg}"),
        other => panic!("expected a bad-frame error, got {other:?}"),
    }
    // …then EOF: the poisoned connection is closed, not resynced.
    assert_eq!(read_response(&mut s).unwrap(), None);

    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// A client that fires a pipelined window of puts and vanishes without
/// reading a single response: the batcher still commits everything it
/// accepted, and the dead socket only kills the writer thread.
#[test]
fn mid_batch_disconnect_still_commits_accepted_writes() {
    let d = dir("vanish");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    {
        let mut c = Client::connect(addr).unwrap();
        for i in 0..32u8 {
            c.send(&Request::Put(vec![b'm', i], vec![i])).unwrap();
        }
        c.flush().unwrap();
        // Dropped here: the TCP connection closes with 32 responses
        // still unread.
    }
    // The writes were submitted before the disconnect was noticed;
    // poll until the batcher has committed them all.
    let mut c = Client::connect(addr).unwrap();
    for _ in 0..200 {
        if c.get(&[b'm', 31]).unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    for i in 0..32u8 {
        assert_eq!(c.get(&[b'm', i]).unwrap(), Some(vec![i]), "put {i} lost");
    }

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// Queue-depth admission control: with no worker draining and a queue
/// bound of 1, the first pipelined put parks in the queue and the rest
/// are answered `Overloaded` *without being enqueued* — then a late
/// worker commits exactly the one accepted request.
#[test]
fn queue_bound_sheds_with_typed_overloaded() {
    let d = dir("shed");
    let m = boot(&d);
    let svc = KvService::start(
        &m,
        SvcConfig {
            workers: 0,
            max_queue: 1,
            ..SvcConfig::default()
        },
    )
    .unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    for i in 0..3u8 {
        c.send(&Request::Put(vec![b'q', i], vec![i])).unwrap();
    }
    c.flush().unwrap();
    // The shed responses are decided at submit time; wait until both
    // rejections are counted before letting a worker at the queue.
    for _ in 0..1000 {
        if shed_count(&m) >= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(shed_count(&m), 2);
    svc.spawn_worker();
    assert_eq!(c.recv().unwrap(), Response::Ok);
    assert_eq!(c.recv().unwrap(), Response::Overloaded);
    assert_eq!(c.recv().unwrap(), Response::Overloaded);
    assert_eq!(c.get(&[b'q', 0]).unwrap(), Some(vec![0]));
    assert_eq!(c.get(&[b'q', 1]).unwrap(), None, "shed put must not land");

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// The typed methods surface a shed as [`ClientError::Overloaded`], and
/// the client's bounded backoff retry rides out a transient overload.
#[test]
fn client_retry_rides_out_transient_overload() {
    let d = dir("retry");
    let m = boot(&d);
    let svc = KvService::start(
        &m,
        SvcConfig {
            workers: 0,
            max_queue: 1,
            ..SvcConfig::default()
        },
    )
    .unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Fill the queue: this ticket stays parked until a worker exists.
    let parked = svc.submit(Request::Put(b"parked".to_vec(), b"p".to_vec()));

    // No retries: the shed comes straight back as a typed error.
    let mut c = Client::connect(addr).unwrap();
    match c.put(b"r", b"1") {
        Err(ClientError::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // With retries: a worker shows up mid-backoff and the put lands.
    c.set_retry(8, std::time::Duration::from_millis(2));
    let spawner = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            svc.spawn_worker();
        })
    };
    c.put(b"r", b"2").unwrap();
    spawner.join().unwrap();
    assert_eq!(parked.wait(), Response::Ok);
    assert_eq!(c.get(b"r").unwrap(), Some(b"2".to_vec()));
    assert!(shed_count(&m) >= 2);

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// Connection-count admission control: past `max_conns`, a new
/// connection gets exactly one `Overloaded` frame and a close instead of
/// a silent hang in the accept backlog.
#[test]
fn conn_bound_refuses_excess_connections() {
    let d = dir("conns");
    let m = boot(&d);
    let svc = KvService::start(
        &m,
        SvcConfig {
            max_conns: 1,
            ..SvcConfig::default()
        },
    )
    .unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).unwrap();
    c1.ping().unwrap(); // ensure the slot is registered before racing it
    let mut c2 = Client::connect(addr).unwrap();
    match c2.ping() {
        Err(ClientError::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(
        m.telemetry()
            .snapshot()
            .counter("svc.overload.conns_rejected"),
        1
    );
    // The admitted connection is untouched by the refusal.
    c1.put(b"still", b"here").unwrap();

    // Once the slot frees up, new connections are admitted again.
    drop(c1);
    drop(c2);
    let mut c3 = Client::connect_with_retry(addr, 50, std::time::Duration::from_millis(2)).unwrap();
    let mut ok = false;
    for _ in 0..200 {
        match c3.ping() {
            Ok(()) => {
                ok = true;
                break;
            }
            Err(ClientError::Overloaded) => {
                std::thread::sleep(std::time::Duration::from_millis(2));
                c3 = Client::connect(addr).unwrap();
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(ok, "slot never freed after the admitted connection closed");

    server.stop();
    svc.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// Graceful drain: SHUTDOWN is acknowledged only after every accepted
/// request settles, and requests arriving during the drain get the typed
/// `Draining` answer rather than being half-served.
#[test]
fn shutdown_drains_acks_then_refuses_new_work() {
    let d = dir("drain");
    let m = boot(&d);
    let svc = KvService::start(&m, SvcConfig::default()).unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    for i in 0..16u8 {
        a.put(&[b'd', i], &[i]).unwrap();
    }
    a.shutdown().unwrap(); // drain-then-ack: all 16 are settled here
    assert_eq!(m.telemetry().snapshot().counter("svc.drains"), 1);

    match b.put(b"late", b"x") {
        Err(ClientError::Draining) => {}
        other => panic!("expected Draining, got {other:?}"),
    }

    server.stop();
    svc.stop();
    // An acked SHUTDOWN means the writes are durable: power off without
    // ceremony and read them back.
    let (dir, image) = m.crash(CrashPolicy::DropAll);
    let m2 = Mnemosyne::builder(&dir)
        .scm_size(32 << 20)
        .from_image(image)
        .open()
        .unwrap();
    let svc2 = KvService::start(&m2, SvcConfig::default()).unwrap();
    let server2 = KvServer::bind(svc2.clone(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server2.local_addr()).unwrap();
    for i in 0..16u8 {
        assert_eq!(
            c.get(&[b'd', i]).unwrap(),
            Some(vec![i]),
            "acked put {i} lost"
        );
    }
    assert_eq!(c.get(b"late").unwrap(), None, "refused put must not land");
    server2.stop();
    svc2.stop();
    std::fs::remove_dir_all(&d).ok();
}

/// The durability contract under concurrent network abuse: a well-behaved
/// client records its acknowledged writes while hostile connections
/// inject torn frames, garbage, and mid-window disconnects; after a power
/// loss every acknowledged write must still be there.
#[test]
fn no_acked_write_lost_under_network_abuse() {
    let d = dir("abuse");
    let m = Mnemosyne::builder(&d)
        .scm_config(ScmConfig::virtual_clock(16 << 20))
        .truncation(Truncation::Sync)
        .open()
        .unwrap();
    let svc = KvService::start(
        &m,
        SvcConfig {
            workers: 2,
            max_batch: 4,
            ..SvcConfig::default()
        },
    )
    .unwrap();
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let abuser = std::thread::spawn(move || {
        for round in 0..12u8 {
            match round % 3 {
                0 => {
                    // Torn frame.
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        let _ = s.write_all(&64u32.to_le_bytes());
                        let _ = s.write_all(&[0x03, round]);
                        let _ = s.shutdown(Shutdown::Both);
                    }
                }
                1 => {
                    // Garbage opcode.
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        let _ = s.write_all(&2u32.to_le_bytes());
                        let _ = s.write_all(&[0xEE, round]);
                    }
                }
                _ => {
                    // Pipelined window, then vanish without reading.
                    if let Ok(mut c) = Client::connect(addr) {
                        for i in 0..8u8 {
                            if c.send(&Request::Put(vec![b'x', round, i], vec![i]))
                                .is_err()
                            {
                                break;
                            }
                        }
                        let _ = c.flush();
                    }
                }
            }
        }
    });

    let mut acked = Vec::new();
    let mut c = Client::connect(addr).unwrap();
    for i in 0..48u8 {
        let key = vec![b'g', i];
        let value = vec![i, i ^ 0xFF];
        c.put(&key, &value).unwrap();
        acked.push((key, value));
    }
    abuser.join().unwrap();
    server.stop();
    svc.stop();

    let (dir, image) = m.crash(CrashPolicy::DropAll);
    let m2 = Mnemosyne::builder(&dir)
        .scm_config(ScmConfig::virtual_clock(16 << 20))
        .truncation(Truncation::Sync)
        .from_image(image)
        .open()
        .unwrap();
    let svc2 = KvService::start(&m2, SvcConfig::default()).unwrap();
    let server2 = KvServer::bind(svc2.clone(), "127.0.0.1:0").unwrap();
    let mut c2 = Client::connect(server2.local_addr()).unwrap();
    for (key, value) in &acked {
        assert_eq!(
            c2.get(key).unwrap().as_ref(),
            Some(value),
            "acknowledged write {key:?} lost to the crash"
        );
    }
    server2.stop();
    svc2.stop();
    std::fs::remove_dir_all(&d).ok();
}
