//! Latency histograms with fixed log2 buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metric::Unit;

/// Number of buckets. Bucket 0 holds the value `0`; bucket `i` (for
/// `i ≥ 1`) holds values in `[2^(i-1), 2^i)`; the last bucket also
/// absorbs everything larger. 64 buckets cover the full `u64` range of
/// nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index for a recorded value.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (for reporting).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

pub(crate) struct HistogramCore {
    pub(crate) name: &'static str,
    pub(crate) unit: Unit,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCore {
    pub(crate) fn new(name: &'static str, unit: Unit) -> HistogramCore {
        HistogramCore {
            name,
            unit,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub(crate) fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// A latency distribution over fixed log2 buckets. Values are
/// nanoseconds in the recording handle's time domain — the SCM
/// emulator's virtual clock under `EmulationMode::Virtual`, the wall
/// clock otherwise. Cloning is cheap; obtain one from
/// [`crate::Telemetry::histogram`].
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.0.name)
            .field("count", &self.0.count())
            .field("sum", &self.0.sum())
            .finish()
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum()
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.0.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_accumulates() {
        let h = Histogram(Arc::new(HistogramCore::new("t.h", Unit::Nanoseconds)));
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(1 << 40);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10 + (1 << 40));
        let b = h.0.bucket_counts();
        assert_eq!(b[0], 1);
        assert_eq!(b[bucket_of(5)], 2);
        assert_eq!(b[41], 1);
    }

    #[test]
    fn upper_bounds_are_monotonic() {
        let mut prev = 0;
        for i in 0..HISTOGRAM_BUCKETS {
            let ub = bucket_upper_bound(i);
            assert!(ub >= prev);
            prev = ub;
        }
    }
}
