//! `mnemosyne-obs` — cross-layer telemetry for the Mnemosyne reproduction.
//!
//! The paper's evaluation (§6) is entirely about *where time goes*:
//! fences vs. flushes in the RAWL (Table 6), STM instrumentation vs.
//! durability cost (Fig 4/5), sync vs. async log truncation (Fig 6).
//! This crate provides the attribution layer every other crate records
//! into:
//!
//! * [`Counter`] — a lock-free, per-thread-sharded event counter;
//! * [`MaxGauge`] — a monotonic high-water mark (e.g. log occupancy);
//! * [`Histogram`] — a latency distribution over fixed log2 buckets,
//!   fed with nanoseconds from either the wall clock or the SCM
//!   emulator's virtual clock;
//! * [`Telemetry`] — the registry a simulated machine (and everything
//!   booted over it) records into, with [`Telemetry::snapshot`] /
//!   [`TelemetrySnapshot::since`] for phase measurement;
//! * text and JSON exporters ([`TelemetrySnapshot::to_text`],
//!   [`TelemetrySnapshot::to_json`], [`TelemetrySnapshot::from_json`])
//!   so every bench binary can emit a machine-readable
//!   `telemetry.json` sidecar that BENCH trajectories diff across PRs.
//!
//! Every metric is documented in the repository's `METRICS.md`; a test
//! diffs the registered names against that table so the documentation
//! cannot rot.
//!
//! # Example
//!
//! ```
//! use mnemosyne_obs::{Telemetry, Unit};
//!
//! let t = Telemetry::new();
//! let fences = t.counter("scm.fences", Unit::Count);
//! let lat = t.histogram("mtm.commit_ns", Unit::Nanoseconds);
//!
//! fences.inc();
//! lat.record(1200);
//!
//! let snap = t.snapshot();
//! assert_eq!(snap.counter("scm.fences"), 1);
//! let json = snap.to_json();
//! let back = mnemosyne_obs::TelemetrySnapshot::from_json(&json).unwrap();
//! assert_eq!(back, snap);
//! ```

#![warn(missing_docs)]

mod histogram;
mod json;
mod metric;
mod padded;
mod registry;
mod snapshot;

pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use metric::{Counter, Kind, MaxGauge, Unit};
pub use padded::PaddedAtomicU64;
pub use registry::Telemetry;
pub use snapshot::{CounterValue, HistogramValue, TelemetrySnapshot, SCHEMA};
