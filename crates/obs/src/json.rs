//! A minimal JSON subset, hand-rolled because the build environment has
//! no crates.io access (see the workspace `shims/` note). The writer
//! emits exactly what the telemetry exporter needs; the parser accepts
//! general JSON (objects, arrays, strings, unsigned integers, booleans,
//! null) so sidecar files round-trip and foreign keys are skippable.

use std::collections::BTreeMap;

/// A parsed JSON value (integer-only numbers — telemetry is all `u64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer. Floats and negatives are rejected: the
    /// telemetry format never produces them, and refusing them keeps
    /// counter identities exact.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order normalised).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The integer, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Why a JSON document was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub detail: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for embedding in JSON output.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            detail,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, detail: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(detail))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b'-') => Err(self.err("negative numbers are not valid telemetry")),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not valid telemetry"));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<u64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": {"b": [1, 2, 3]}, "c": "x\ny", "d": true, "e": null}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(
            obj["a"].as_obj().unwrap()["b"].as_arr().unwrap()[2],
            JsonValue::Num(3)
        );
        assert_eq!(obj["c"].as_str(), Some("x\ny"));
        assert_eq!(obj["d"], JsonValue::Bool(true));
        assert_eq!(obj["e"], JsonValue::Null);
    }

    #[test]
    fn rejects_floats_negatives_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("-3").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_roundtrips() {
        let s = "line\nquote\"slash\\tab\tend";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn u64_max_roundtrips() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
