//! Cache-line-padded atomics for contended hot-path counters.
//!
//! Adjacent `AtomicU64`s in a `Vec` or struct share 64-byte cache lines,
//! so independent counters bounced between cores false-share: every bump
//! invalidates its neighbours' lines. [`PaddedAtomicU64`] gives each
//! atomic its own line. Used by the mtm versioned-lock table and global
//! clock (commit hot path) and by the persistent heap's shard counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `AtomicU64` alone on its cache line.
///
/// Derefs to [`AtomicU64`], so the full atomic API is available:
///
/// ```
/// use mnemosyne_obs::PaddedAtomicU64;
/// use std::sync::atomic::Ordering;
///
/// let c = PaddedAtomicU64::new(41);
/// c.fetch_add(1, Ordering::Relaxed);
/// assert_eq!(c.load(Ordering::Relaxed), 42);
/// ```
#[repr(align(64))]
#[derive(Default)]
pub struct PaddedAtomicU64(AtomicU64);

impl PaddedAtomicU64 {
    /// Creates a padded atomic holding `v`.
    pub const fn new(v: u64) -> PaddedAtomicU64 {
        PaddedAtomicU64(AtomicU64::new(v))
    }
}

impl std::ops::Deref for PaddedAtomicU64 {
    type Target = AtomicU64;

    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

impl std::fmt::Debug for PaddedAtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PaddedAtomicU64({})", self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupies_a_full_cache_line() {
        assert_eq!(std::mem::size_of::<PaddedAtomicU64>(), 64);
        assert_eq!(std::mem::align_of::<PaddedAtomicU64>(), 64);
        // A vector of them puts each element on its own line.
        let v: Vec<PaddedAtomicU64> = (0..4).map(PaddedAtomicU64::new).collect();
        let base = &v[0] as *const _ as usize;
        for (i, slot) in v.iter().enumerate() {
            assert_eq!(slot as *const _ as usize - base, i * 64);
        }
    }

    #[test]
    fn behaves_like_an_atomic() {
        let c = PaddedAtomicU64::new(0);
        c.store(7, Ordering::Relaxed);
        assert_eq!(c.fetch_add(3, Ordering::Relaxed), 7);
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }
}
