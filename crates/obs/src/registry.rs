//! The telemetry registry.
//!
//! Each simulated machine ([`crate::Telemetry::new`] per `ScmSim` /
//! `PcmDisk`) gets its own registry so tests that boot independent
//! devices in the same process observe independent counters. Bench
//! binaries, which want one number per run regardless of how many
//! reboots the experiment performed, use
//! [`Telemetry::process_snapshot`], which folds every registry created
//! in this process — live or already dropped — into one snapshot.

use std::collections::BTreeMap;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::histogram::{Histogram, HistogramCore};
use crate::metric::{Counter, CounterCore, Kind, MaxGauge, Unit};
use crate::snapshot::TelemetrySnapshot;

/// Process-wide accounting: snapshots of dropped registries plus weak
/// handles to live ones.
struct Global {
    retired: TelemetrySnapshot,
    live: Vec<Weak<Inner>>,
}

fn global() -> &'static Mutex<Global> {
    static GLOBAL: std::sync::OnceLock<Mutex<Global>> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| {
        Mutex::new(Global {
            retired: TelemetrySnapshot::default(),
            live: Vec::new(),
        })
    })
}

pub(crate) struct Inner {
    counters: Mutex<BTreeMap<&'static str, Arc<CounterCore>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCore>>>,
}

impl Inner {
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::collect(&self.counters.lock(), &self.histograms.lock())
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Fold this registry's final state into the process totals so
        // sidecar exports survive crash/reboot cycles that rebuild the
        // simulated machine (and with it, the registry).
        let snap = TelemetrySnapshot::collect(self.counters.get_mut(), self.histograms.get_mut());
        let mut g = global().lock();
        g.retired.merge(&snap);
        g.live.retain(|w| w.strong_count() > 0);
    }
}

/// A registry of named metrics. Cloning is cheap (shared `Arc`); all
/// clones register into and snapshot the same underlying state.
///
/// Registration is idempotent by name: asking twice for the same name
/// returns handles to the same metric. Re-registering a name with a
/// different unit or kind is a programming error and panics.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("counters", &self.inner.counters.lock().len())
            .field("histograms", &self.inner.histograms.lock().len())
            .finish()
    }
}

impl Telemetry {
    /// Creates an empty registry and enrolls it in the process totals.
    pub fn new() -> Telemetry {
        let inner = Arc::new(Inner {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        });
        let mut g = global().lock();
        g.live.retain(|w| w.strong_count() > 0);
        g.live.push(Arc::downgrade(&inner));
        drop(g);
        Telemetry { inner }
    }

    /// Registers (or retrieves) a summing event counter.
    ///
    /// # Panics
    /// If `name` is already registered with a different unit or as a
    /// different metric type.
    pub fn counter(&self, name: &'static str, unit: Unit) -> Counter {
        Counter(self.counter_core(name, unit, Kind::Sum))
    }

    /// Registers (or retrieves) a high-water-mark gauge.
    ///
    /// # Panics
    /// If `name` is already registered with a different unit or as a
    /// different metric type.
    pub fn max_gauge(&self, name: &'static str, unit: Unit) -> MaxGauge {
        MaxGauge(self.counter_core(name, unit, Kind::Max))
    }

    fn counter_core(&self, name: &'static str, unit: Unit, kind: Kind) -> Arc<CounterCore> {
        if self.inner.histograms.lock().contains_key(name) {
            panic!("telemetry metric `{name}` already registered as a histogram");
        }
        let mut counters = self.inner.counters.lock();
        let core = counters
            .entry(name)
            .or_insert_with(|| Arc::new(CounterCore::new(name, unit, kind)));
        assert!(
            core.unit == unit && core.kind == kind,
            "telemetry metric `{name}` re-registered as {:?}/{:?} (was {:?}/{:?})",
            unit,
            kind,
            core.unit,
            core.kind,
        );
        Arc::clone(core)
    }

    /// Registers (or retrieves) a log2-bucket latency histogram.
    ///
    /// # Panics
    /// If `name` is already registered with a different unit or as a
    /// counter/gauge.
    pub fn histogram(&self, name: &'static str, unit: Unit) -> Histogram {
        if self.inner.counters.lock().contains_key(name) {
            panic!("telemetry metric `{name}` already registered as a counter");
        }
        let mut hists = self.inner.histograms.lock();
        let core = hists
            .entry(name)
            .or_insert_with(|| Arc::new(HistogramCore::new(name, unit)));
        assert!(
            core.unit == unit,
            "telemetry histogram `{name}` re-registered as {:?} (was {:?})",
            unit,
            core.unit,
        );
        Histogram(Arc::clone(core))
    }

    /// A point-in-time copy of every metric in *this* registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.inner.snapshot()
    }

    /// Sorted names of every metric registered in this registry.
    pub fn metric_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .inner
            .counters
            .lock()
            .keys()
            .chain(self.inner.histograms.lock().keys())
            .copied()
            .collect();
        names.sort_unstable();
        names
    }

    /// Everything recorded in this process so far: all live registries
    /// plus the final state of every registry already dropped (e.g. the
    /// pre-crash machine in a crash/reboot experiment).
    ///
    /// Intended for single-run bench binaries writing their
    /// `telemetry.json` sidecar; concurrent unit tests should prefer
    /// per-registry [`Telemetry::snapshot`], which is isolated.
    pub fn process_snapshot() -> TelemetrySnapshot {
        let mut g = global().lock();
        g.live.retain(|w| w.strong_count() > 0);
        let live: Vec<Arc<Inner>> = g.live.iter().filter_map(Weak::upgrade).collect();
        let mut snap = g.retired.clone();
        drop(g);
        for inner in live {
            snap.merge(&inner.snapshot());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let t = Telemetry::new();
        let a = t.counter("reg.a", Unit::Count);
        let b = t.counter("reg.a", Unit::Count);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(t.metric_names(), vec!["reg.a"]);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn unit_conflict_panics() {
        let t = Telemetry::new();
        let _ = t.counter("reg.conflict", Unit::Count);
        let _ = t.counter("reg.conflict", Unit::Words);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn type_conflict_panics() {
        let t = Telemetry::new();
        let _ = t.counter("reg.typed", Unit::Count);
        let _ = t.histogram("reg.typed", Unit::Nanoseconds);
    }

    #[test]
    fn registries_are_isolated() {
        let t1 = Telemetry::new();
        let t2 = Telemetry::new();
        t1.counter("reg.iso", Unit::Count).add(5);
        t2.counter("reg.iso", Unit::Count).add(7);
        assert_eq!(t1.snapshot().counter("reg.iso"), 5);
        assert_eq!(t2.snapshot().counter("reg.iso"), 7);
    }

    #[test]
    fn process_snapshot_survives_drop() {
        // Other tests run concurrently in this process, so only assert
        // on a name unique to this test.
        let t = Telemetry::new();
        t.counter("reg.dropped_then_counted", Unit::Count).add(3);
        drop(t);
        let t2 = Telemetry::new();
        t2.counter("reg.dropped_then_counted", Unit::Count).add(4);
        let snap = Telemetry::process_snapshot();
        assert_eq!(snap.counter("reg.dropped_then_counted"), 7);
    }

    #[test]
    fn max_gauge_process_merge_takes_max() {
        let t1 = Telemetry::new();
        t1.max_gauge("reg.peak_merge", Unit::Words).record(10);
        drop(t1);
        let t2 = Telemetry::new();
        t2.max_gauge("reg.peak_merge", Unit::Words).record(6);
        let snap = Telemetry::process_snapshot();
        assert_eq!(snap.counter("reg.peak_merge"), 10);
    }
}
