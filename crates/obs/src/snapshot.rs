//! Point-in-time snapshots, diffs, and the text/JSON exporters.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::histogram::{bucket_upper_bound, HistogramCore, HISTOGRAM_BUCKETS};
use crate::json::{self, escape, JsonError, JsonValue};
use crate::metric::{CounterCore, Kind, Unit};

/// Schema identifier written into (and required from) every JSON export.
pub const SCHEMA: &str = "mnemosyne-telemetry-v1";

/// A counter or gauge captured at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    /// The captured value.
    pub value: u64,
    /// What the value denominates.
    pub unit: Unit,
    /// How values combine across shards/devices (sum vs. max).
    pub kind: Kind,
}

/// A histogram captured at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// What recorded values denominate.
    pub unit: Unit,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries;
    /// bucket `i ≥ 1` covers `[2^(i-1), 2^i)`).
    pub buckets: Vec<u64>,
}

impl HistogramValue {
    /// Mean observation, or 0 with no observations.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// An upper bound on the `q`-quantile (`q` in 0..=100), derived from
    /// the bucket the quantile observation landed in.
    pub fn quantile_upper_bound(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * q.min(100)).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// An immutable copy of every metric a registry held at one instant.
///
/// Snapshots support [`since`](TelemetrySnapshot::since) for phase
/// deltas, [`merge`](TelemetrySnapshot::merge) for cross-device
/// aggregation, and lossless JSON round-tripping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Counters and gauges by metric name.
    pub counters: BTreeMap<String, CounterValue>,
    /// Histograms by metric name.
    pub histograms: BTreeMap<String, HistogramValue>,
}

impl TelemetrySnapshot {
    pub(crate) fn collect(
        counters: &BTreeMap<&'static str, Arc<CounterCore>>,
        histograms: &BTreeMap<&'static str, Arc<HistogramCore>>,
    ) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: counters
                .iter()
                .map(|(name, c)| {
                    (
                        name.to_string(),
                        CounterValue {
                            value: c.value(),
                            unit: c.unit,
                            kind: c.kind,
                        },
                    )
                })
                .collect(),
            histograms: histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.to_string(),
                        HistogramValue {
                            unit: h.unit,
                            count: h.count(),
                            sum: h.sum(),
                            buckets: h.bucket_counts(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// The value of a counter/gauge, or 0 if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.value)
    }

    /// The captured histogram, if one was registered under `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramValue> {
        self.histograms.get(name)
    }

    /// The delta accumulated between `earlier` and this snapshot.
    ///
    /// Sum counters and histograms subtract (saturating, so a metric
    /// that only exists in `self` passes through unchanged); max gauges
    /// keep the later value, since a high-water mark has no meaningful
    /// difference.
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, c)| {
                let base = earlier.counters.get(name).map_or(0, |e| e.value);
                let value = match c.kind {
                    Kind::Sum => c.value.saturating_sub(base),
                    Kind::Max => c.value,
                };
                (name.clone(), CounterValue { value, ..*c })
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let mut out = h.clone();
                if let Some(e) = earlier.histograms.get(name) {
                    out.count = out.count.saturating_sub(e.count);
                    out.sum = out.sum.saturating_sub(e.sum);
                    for (b, eb) in out.buckets.iter_mut().zip(&e.buckets) {
                        *b = b.saturating_sub(*eb);
                    }
                }
                (name.clone(), out)
            })
            .collect();
        TelemetrySnapshot {
            counters,
            histograms,
        }
    }

    /// Folds `other` into `self`: sums add, max gauges take the max,
    /// histogram buckets add element-wise.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, c) in &other.counters {
            match self.counters.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(c.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    mine.value = match mine.kind {
                        Kind::Sum => mine.value.saturating_add(c.value),
                        Kind::Max => mine.value.max(c.value),
                    };
                }
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    mine.count = mine.count.saturating_add(h.count);
                    mine.sum = mine.sum.saturating_add(h.sum);
                    if mine.buckets.len() < h.buckets.len() {
                        mine.buckets.resize(h.buckets.len(), 0);
                    }
                    for (b, ob) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b = b.saturating_add(*ob);
                    }
                }
            }
        }
    }

    /// A human-readable table, one metric per line, sorted by name.
    pub fn to_text(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, c) in &self.counters {
            out.push_str(&format!(
                "{name:<width$}  {:>12} {}\n",
                c.value,
                c.unit.as_str()
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<width$}  count={} sum={}{} mean={}{} p99<={}{}\n",
                h.count,
                h.sum,
                h.unit.as_str(),
                h.mean(),
                h.unit.as_str(),
                h.quantile_upper_bound(99),
                h.unit.as_str(),
            ));
        }
        out
    }

    /// Serializes to the `mnemosyne-telemetry-v1` JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// Like [`to_json`](TelemetrySnapshot::to_json), with extra
    /// top-level string fields (e.g. `experiment`, `scale`) that
    /// [`from_json`](TelemetrySnapshot::from_json) ignores.
    pub fn to_json_with(&self, tags: &[(&str, &str)]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        for (k, v) in tags {
            out.push_str(&format!("  \"{}\": \"{}\",\n", escape(k), escape(v)));
        }
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, c) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"value\": {}, \"unit\": \"{}\", \"kind\": \"{}\"}}",
                escape(name),
                c.value,
                c.unit.as_str(),
                c.kind.as_str()
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            // Trailing empty buckets are elided; from_json pads back.
            let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            let buckets: Vec<String> = h.buckets[..last].iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    \"{}\": {{\"unit\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                escape(name),
                h.unit.as_str(),
                h.count,
                h.sum,
                buckets.join(", ")
            ));
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Parses a document written by
    /// [`to_json`](TelemetrySnapshot::to_json) (or
    /// [`to_json_with`](TelemetrySnapshot::to_json_with) — tag fields
    /// and any other unknown top-level keys are ignored).
    ///
    /// # Errors
    /// Rejects malformed JSON, a missing/foreign `schema` field, and
    /// malformed metric entries.
    pub fn from_json(input: &str) -> Result<TelemetrySnapshot, JsonError> {
        fn bad(detail: &'static str) -> JsonError {
            JsonError { at: 0, detail }
        }
        let doc = json::parse(input)?;
        let obj = doc.as_obj().ok_or_else(|| bad("expected a JSON object"))?;
        match obj.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == SCHEMA => {}
            _ => return Err(bad("missing or unsupported schema")),
        }
        let mut snap = TelemetrySnapshot::default();
        if let Some(counters) = obj.get("counters") {
            let counters = counters
                .as_obj()
                .ok_or_else(|| bad("counters must be an object"))?;
            for (name, v) in counters {
                let m = v.as_obj().ok_or_else(|| bad("counter must be an object"))?;
                let value = m
                    .get("value")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("counter missing value"))?;
                let unit = m
                    .get("unit")
                    .and_then(JsonValue::as_str)
                    .and_then(Unit::parse)
                    .unwrap_or(Unit::Count);
                let kind = m
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .and_then(Kind::parse)
                    .unwrap_or(Kind::Sum);
                snap.counters
                    .insert(name.clone(), CounterValue { value, unit, kind });
            }
        }
        if let Some(hists) = obj.get("histograms") {
            let hists = hists
                .as_obj()
                .ok_or_else(|| bad("histograms must be an object"))?;
            for (name, v) in hists {
                let m = v
                    .as_obj()
                    .ok_or_else(|| bad("histogram must be an object"))?;
                let count = m
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("histogram missing count"))?;
                let sum = m
                    .get("sum")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("histogram missing sum"))?;
                let unit = m
                    .get("unit")
                    .and_then(JsonValue::as_str)
                    .and_then(Unit::parse)
                    .unwrap_or(Unit::Nanoseconds);
                let mut buckets = Vec::with_capacity(HISTOGRAM_BUCKETS);
                if let Some(arr) = m.get("buckets").and_then(JsonValue::as_arr) {
                    for b in arr.iter().take(HISTOGRAM_BUCKETS) {
                        buckets.push(b.as_u64().ok_or_else(|| bad("bucket must be a number"))?);
                    }
                }
                buckets.resize(HISTOGRAM_BUCKETS, 0);
                snap.histograms.insert(
                    name.clone(),
                    HistogramValue {
                        unit,
                        count,
                        sum,
                        buckets,
                    },
                );
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.counter("snap.a", Unit::Count).add(3);
        t.counter("snap.b_words", Unit::Words).add(100);
        t.max_gauge("snap.peak", Unit::Words).record(42);
        let h = t.histogram("snap.lat_ns", Unit::Nanoseconds);
        h.record(0);
        h.record(900);
        h.record(1 << 30);
        t.snapshot()
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let snap = sample();
        let json = snap.to_json();
        let back = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn tagged_json_roundtrips_and_ignores_tags() {
        let snap = sample();
        let json = snap.to_json_with(&[("experiment", "table6"), ("scale", "smoke")]);
        assert!(json.contains("\"experiment\": \"table6\""));
        let back = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_foreign_schema() {
        assert!(TelemetrySnapshot::from_json("{\"schema\": \"other\"}").is_err());
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        assert!(TelemetrySnapshot::from_json("[1]").is_err());
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = TelemetrySnapshot::default();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn since_subtracts_sums_and_keeps_max() {
        let t = Telemetry::new();
        let c = t.counter("diff.c", Unit::Count);
        let g = t.max_gauge("diff.peak", Unit::Words);
        let h = t.histogram("diff.h", Unit::Nanoseconds);
        c.add(5);
        g.record(10);
        h.record(8);
        let before = t.snapshot();
        c.add(2);
        g.record(7);
        h.record(8);
        h.record(16);
        let delta = t.snapshot().since(&before);
        assert_eq!(delta.counter("diff.c"), 2);
        assert_eq!(delta.counter("diff.peak"), 10);
        let dh = delta.histogram("diff.h").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 24);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("snap.a"), 6);
        assert_eq!(a.counter("snap.peak"), 42);
        assert_eq!(a.histogram("snap.lat_ns").unwrap().count, 6);
    }

    #[test]
    fn quantile_bounds_are_sane() {
        let snap = sample();
        let h = snap.histogram("snap.lat_ns").unwrap();
        assert_eq!(h.count, 3);
        // p99 lands in the top bucket used (2^30 observation).
        assert!(h.quantile_upper_bound(99) >= (1 << 30));
        // p0/p1 land in the zero bucket.
        assert_eq!(h.quantile_upper_bound(1), 0);
    }

    #[test]
    fn text_export_mentions_every_metric() {
        let snap = sample();
        let text = snap.to_text();
        for name in ["snap.a", "snap.b_words", "snap.peak", "snap.lat_ns"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
