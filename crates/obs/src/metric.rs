//! Lock-free counters and high-water-mark gauges.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of per-counter shards. Threads are striped across shards by a
/// cheap thread-local index, so concurrent bumps on the hot paths (every
/// store/flush/fence goes through a counter) do not contend on one cache
/// line.
pub(crate) const SHARDS: usize = 16;

/// What a metric's value denominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Plain event count.
    Count,
    /// 64-bit words.
    Words,
    /// Bytes.
    Bytes,
    /// Nanoseconds (wall or virtual clock, per the emulation mode).
    Nanoseconds,
    /// Milliseconds (coarse operational gauges, e.g. recovery replay time).
    Milliseconds,
}

impl Unit {
    /// Stable serialization token (used by the JSON exporter).
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Words => "words",
            Unit::Bytes => "bytes",
            Unit::Nanoseconds => "ns",
            Unit::Milliseconds => "ms",
        }
    }

    /// Parses the token written by [`Unit::as_str`].
    pub fn parse(s: &str) -> Option<Unit> {
        match s {
            "count" => Some(Unit::Count),
            "words" => Some(Unit::Words),
            "bytes" => Some(Unit::Bytes),
            "ns" => Some(Unit::Nanoseconds),
            "ms" => Some(Unit::Milliseconds),
            _ => None,
        }
    }
}

/// How shards (and snapshots from several devices) combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Values add (event counters).
    Sum,
    /// Values take the maximum (high-water marks).
    Max,
}

impl Kind {
    /// Stable serialization token.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Sum => "sum",
            Kind::Max => "max",
        }
    }

    /// Parses the token written by [`Kind::as_str`].
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "sum" => Some(Kind::Sum),
            "max" => Some(Kind::Max),
            _ => None,
        }
    }
}

/// One cache line per shard so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

pub(crate) struct CounterCore {
    pub(crate) name: &'static str,
    pub(crate) unit: Unit,
    pub(crate) kind: Kind,
    shards: [Shard; SHARDS],
}

impl CounterCore {
    pub(crate) fn new(name: &'static str, unit: Unit, kind: Kind) -> CounterCore {
        CounterCore {
            name,
            unit,
            kind,
            shards: Default::default(),
        }
    }

    /// This thread's shard index (assigned round-robin on first use).
    #[inline]
    fn shard() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static MY_SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        }
        MY_SHARD.with(|s| *s)
    }

    #[inline]
    pub(crate) fn add(&self, n: u64) {
        self.shards[Self::shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_max(&self, v: u64) {
        self.shards[Self::shard()].0.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn value(&self) -> u64 {
        let vals = self.shards.iter().map(|s| s.0.load(Ordering::Relaxed));
        match self.kind {
            Kind::Sum => vals.sum(),
            Kind::Max => vals.max().unwrap_or(0),
        }
    }
}

/// A lock-free event counter, sharded per thread. Cloning is cheap and
/// all clones observe the same value; obtain one from
/// [`crate::Telemetry::counter`].
#[derive(Clone)]
pub struct Counter(pub(crate) Arc<CounterCore>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("name", &self.0.name)
            .field("value", &self.0.value())
            .finish()
    }
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.add(n);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.0.value()
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.0.name
    }
}

/// A monotonic high-water mark (e.g. peak log occupancy). Obtain one from
/// [`crate::Telemetry::max_gauge`].
#[derive(Clone)]
pub struct MaxGauge(pub(crate) Arc<CounterCore>);

impl std::fmt::Debug for MaxGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaxGauge")
            .field("name", &self.0.name)
            .field("value", &self.0.value())
            .finish()
    }
}

impl MaxGauge {
    /// Raises the mark to `v` if `v` is higher.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record_max(v);
    }

    /// The highest value recorded so far.
    pub fn get(&self) -> u64 {
        self.0.value()
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.0.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter(Arc::new(CounterCore::new("t.c", Unit::Count, Kind::Sum)));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let c2 = c.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c2.inc();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn max_gauge_keeps_peak() {
        let g = MaxGauge(Arc::new(CounterCore::new("t.g", Unit::Words, Kind::Max)));
        g.record(10);
        g.record(3);
        g.record(42);
        g.record(7);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn unit_and_kind_roundtrip() {
        for u in [
            Unit::Count,
            Unit::Words,
            Unit::Bytes,
            Unit::Nanoseconds,
            Unit::Milliseconds,
        ] {
            assert_eq!(Unit::parse(u.as_str()), Some(u));
        }
        for k in [Kind::Sum, Kind::Max] {
            assert_eq!(Kind::parse(k.as_str()), Some(k));
        }
        assert_eq!(Unit::parse("bogus"), None);
    }
}
