//! Converted applications (§6.2 of the Mnemosyne paper).
//!
//! The paper evaluates persistent memory by converting two programs that
//! already keep a fast in-memory structure alongside a slower durable
//! store:
//!
//! * [`ldap`] — an OpenLDAP-like directory server: entries live in an AVL
//!   entry cache; three backends differ in how updates become durable
//!   (`back-bdb`: transactional Berkeley-DB-like store; `back-ldbm`: the
//!   same store without transactions, flushed periodically;
//!   `back-mnemosyne`: the cache itself is persistent — the backing store
//!   is removed entirely). A SLAMD-like generator produces the add
//!   workload of Table 4;
//! * [`tokyo`] — a Tokyo-Cabinet-like key-value store holding a B+ tree,
//!   either in a memory-mapped PCM-disk file `msync`ed after every update
//!   or in persistent memory with durable transactions.

#![warn(missing_docs)]

pub mod ldap;
pub mod tokyo;
