//! Tokyo-Cabinet-like key-value store (§6.2, Table 4).
//!
//! Tokyo Cabinet "stores data in a B+ tree and periodically calls msync
//! on a memory-mapped file". Two configurations are modelled:
//!
//! * [`MsyncTokyo`] — the unmodified design, configured (as in the Table 4
//!   comparison) "to save data with msync after every update": the tree
//!   lives in a PCM-disk-backed mapped file; each update rewrites its leaf
//!   page group and the header, then `msync`s. It "can suffer from torn
//!   writes if the system fails while flushing pages";
//! * [`MnemosyneTokyo`] — the conversion: the B+ tree is allocated in a
//!   persistent region, updates run in durable transactions, and the
//!   `msync` persistence code is gone.
//!
//! Both implement [`KvStore`], the insert/delete interface the Table 4
//! benchmark drives.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use mnemosyne::{Mnemosyne, TxThread};
use mnemosyne_pds::PBPlusTree;
use pcmdisk::SimpleFs;

/// The benchmark-facing interface: 64 B / 1024 B insert-delete queries.
pub trait KvStore: Send {
    /// Inserts (or replaces) a record durably per the store's policy.
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), String>;
    /// Deletes a record.
    fn delete(&mut self, key: u64) -> Result<bool, String>;
    /// Reads a record.
    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, String>;
}

/// Keys per mapped leaf-page group. With 64-byte values a group fits one
/// device block; with 1024-byte values it spans several — so larger
/// values force proportionally more page traffic per `msync`, the effect
/// behind Table 4's 64 B vs 1024 B gap.
const LEAF_FANOUT: u64 = 16;

/// The msync-mode store: a volatile B+ tree mirrored to a mapped file.
pub struct MsyncTokyo {
    fs: SimpleFs,
    file: String,
    inner: Arc<Mutex<MsyncInner>>,
}

struct MsyncInner {
    tree: BTreeMap<u64, Vec<u8>>,
    /// Fixed byte stride reserved per record in the mapped file.
    slot_bytes: u64,
}

impl MsyncTokyo {
    /// Creates the store over a PCM-disk file; `value_hint` sizes the
    /// mapped-file slots (Tokyo Cabinet tunes its page size similarly).
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn open(fs: SimpleFs, name: &str, value_hint: usize) -> Result<MsyncTokyo, String> {
        let file = format!("{name}.tcb");
        if !fs.exists(&file) {
            fs.create(&file).map_err(|e| e.to_string())?;
        }
        Ok(MsyncTokyo {
            fs,
            file,
            inner: Arc::new(Mutex::new(MsyncInner {
                tree: BTreeMap::new(),
                slot_bytes: (16 + value_hint as u64).div_ceil(8) * 8,
            })),
        })
    }

    /// Writes the leaf-page group containing `key` (all records of the
    /// group, at their slots) plus the header, then syncs — the msync of
    /// the dirty mapping pages.
    fn msync_group(&self, inner: &MsyncInner, key: u64) -> Result<(), String> {
        let group = key / LEAF_FANOUT;
        let start = group * LEAF_FANOUT;
        let mut buf = Vec::with_capacity((inner.slot_bytes * LEAF_FANOUT) as usize);
        for k in start..start + LEAF_FANOUT {
            let mut slot = vec![0u8; inner.slot_bytes as usize];
            if let Some(v) = inner.tree.get(&k) {
                let n = v.len().min(slot.len() - 16);
                slot[0..8].copy_from_slice(&k.to_le_bytes());
                slot[8..16].copy_from_slice(&(v.len() as u64).to_le_bytes());
                slot[16..16 + n].copy_from_slice(&v[..n]);
            }
            buf.extend_from_slice(&slot);
        }
        let off = 4096 + group * inner.slot_bytes * LEAF_FANOUT;
        self.fs
            .pwrite(&self.file, off, &buf)
            .map_err(|e| e.to_string())?;
        // Header page: record count.
        let mut hdr = [0u8; 16];
        hdr[0..8].copy_from_slice(b"TOKYOCAB");
        hdr[8..16].copy_from_slice(&(inner.tree.len() as u64).to_le_bytes());
        self.fs
            .pwrite(&self.file, 0, &hdr)
            .map_err(|e| e.to_string())?;
        self.fs.fsync(&self.file).map_err(|e| e.to_string())?;
        Ok(())
    }
}

impl KvStore for MsyncTokyo {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), String> {
        let inner = Arc::clone(&self.inner);
        let mut inner = inner.lock();
        inner.tree.insert(key, value.to_vec());
        self.msync_group(&inner, key)
    }

    fn delete(&mut self, key: u64) -> Result<bool, String> {
        let inner = Arc::clone(&self.inner);
        let mut inner = inner.lock();
        let existed = inner.tree.remove(&key).is_some();
        if existed {
            self.msync_group(&inner, key)?;
        }
        Ok(existed)
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, String> {
        Ok(self.inner.lock().tree.get(&key).cloned())
    }
}

/// The converted store: a persistent B+ tree with durable transactions —
/// "we completely removed the persistence code that calls msync … and
/// relied on transactions for concurrency control".
pub struct MnemosyneTokyo {
    tree: PBPlusTree,
    th: TxThread,
}

impl MnemosyneTokyo {
    /// Opens the store over a booted Mnemosyne stack. One handle per
    /// worker thread (transactions provide the concurrency control).
    ///
    /// # Errors
    /// Propagates stack errors.
    pub fn open(m: &Arc<Mnemosyne>, name: &str) -> Result<MnemosyneTokyo, String> {
        let mut th = m.register_thread().map_err(|e| e.to_string())?;
        let tree = PBPlusTree::open(m, &mut th, name).map_err(|e| e.to_string())?;
        Ok(MnemosyneTokyo { tree, th })
    }
}

impl KvStore for MnemosyneTokyo {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), String> {
        self.tree
            .insert(&mut self.th, key, value)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn delete(&mut self, key: u64) -> Result<bool, String> {
        self.tree
            .remove(&mut self.th, key)
            .map_err(|e| e.to_string())
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, String> {
        self.tree.get(&mut self.th, key).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmdisk::{DiskConfig, PcmDisk};

    fn fs() -> SimpleFs {
        SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(65536)))).unwrap()
    }

    fn exercise(store: &mut dyn KvStore) {
        for i in 0..100u64 {
            store.insert(i, &[(i % 251) as u8; 64]).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(store.get(i).unwrap().unwrap(), vec![(i % 251) as u8; 64]);
        }
        for i in 0..50u64 {
            assert!(store.delete(i * 2).unwrap());
        }
        for i in 0..100u64 {
            assert_eq!(store.get(i).unwrap().is_some(), i % 2 == 1);
        }
    }

    #[test]
    fn msync_mode_roundtrip() {
        let mut s = MsyncTokyo::open(fs(), "tc", 64).unwrap();
        exercise(&mut s);
    }

    #[test]
    fn msync_mode_writes_pages_per_update() {
        let fs = fs();
        let disk = Arc::clone(fs.disk());
        let mut s = MsyncTokyo::open(fs, "tc", 64).unwrap();
        let before = disk.stats().3;
        s.insert(1, &[0u8; 64]).unwrap();
        let after = disk.stats().3;
        assert!(after > before, "every update must sync pages");
    }

    #[test]
    fn mnemosyne_mode_roundtrip() {
        let d = std::env::temp_dir().join(format!(
            "tokyo-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        let m = Arc::new(Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap());
        let mut s = MnemosyneTokyo::open(&m, "tc").unwrap();
        exercise(&mut s);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn mnemosyne_mode_survives_crash_msync_mode_does_not() {
        use mnemosyne::CrashPolicy;
        let d = std::env::temp_dir().join(format!(
            "tokyo-crash-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        let m = Arc::new(Mnemosyne::builder(&d).scm_size(64 << 20).open().unwrap());
        {
            let mut s = MnemosyneTokyo::open(&m, "tc").unwrap();
            for i in 0..50u64 {
                s.insert(i, &[7u8; 64]).unwrap();
            }
        }
        let m = Arc::try_unwrap(m).expect("sole owner");
        let m2 = Arc::new(m.crash_reboot(CrashPolicy::random(3)).unwrap());
        let mut s = MnemosyneTokyo::open(&m2, "tc").unwrap();
        for i in 0..50u64 {
            assert_eq!(s.get(i).unwrap().unwrap(), vec![7u8; 64]);
        }
        std::fs::remove_dir_all(&d).ok();
    }
}
