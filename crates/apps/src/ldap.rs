//! OpenLDAP-like directory server core (§6.2, Table 4).
//!
//! OpenLDAP backends keep a read-mostly **entry cache** in front of the
//! store; the paper's insight is that with persistent memory "the backing
//! store can be removed, leaving only a persistent cache". Three backends
//! are modelled:
//!
//! * [`BackBdb`] — the default `back-bdb`: transactional storage via the
//!   Berkeley-DB-like store, plus a volatile AVL entry cache;
//! * [`BackLdbm`] — `back-ldbm`: the same store without transactions,
//!   periodically flushed ("a lower level of reliability");
//! * [`BackMnemosyne`] — the converted backend: the AVL entry cache is
//!   allocated with `pmalloc` and updated in durable transactions; no
//!   separate store exists.
//!
//! The SLAMD-like [`Workload`] generates directory entries from an
//! LDIF-style template ("a workload of 100,000 directory entries").

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use bdbstore::{BdbStore, Durability, StoreConfig};
use mnemosyne::{Mnemosyne, TxThread};
use mnemosyne_pds::PAvlTree;
use pcmdisk::SimpleFs;

/// A directory entry: a DN plus attribute pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Distinguished name.
    pub dn: String,
    /// Attribute `(type, value)` pairs.
    pub attrs: Vec<(String, String)>,
}

impl Entry {
    /// Serialises the entry to bytes (simple length-prefixed wire form).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.attrs.len() * 32);
        out.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        for (k, v) in &self.attrs {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        out
    }

    /// Deserialises an entry body for the given DN.
    pub fn from_bytes(dn: &str, data: &[u8]) -> Option<Entry> {
        let n = u32::from_le_bytes(data.get(0..4)?.try_into().ok()?) as usize;
        let mut attrs = Vec::with_capacity(n);
        let mut off = 4usize;
        for _ in 0..n {
            let klen = u32::from_le_bytes(data.get(off..off + 4)?.try_into().ok()?) as usize;
            let vlen = u32::from_le_bytes(data.get(off + 4..off + 8)?.try_into().ok()?) as usize;
            off += 8;
            let k = String::from_utf8(data.get(off..off + klen)?.to_vec()).ok()?;
            off += klen;
            let v = String::from_utf8(data.get(off..off + vlen)?.to_vec()).ok()?;
            off += vlen;
            attrs.push((k, v));
        }
        Some(Entry {
            dn: dn.to_string(),
            attrs,
        })
    }
}

/// One worker's connection to a backend. Mutable per-thread state (e.g. a
/// transaction context) lives here.
pub trait Session: Send {
    /// Adds (or replaces) a directory entry durably per the backend's
    /// policy.
    fn add(&mut self, entry: &Entry) -> Result<(), String>;
    /// Searches for an entry by DN.
    fn search(&mut self, dn: &str) -> Result<Option<Entry>, String>;
}

/// A directory backend: hands out per-worker sessions.
pub trait Backend: Send + Sync {
    /// Backend name as reported in Table 4.
    fn name(&self) -> &'static str;
    /// Opens a session for one worker thread.
    fn session(&self) -> Box<dyn Session>;
}

/// The volatile AVL-stand-in entry cache used by the Berkeley-DB-backed
/// backends (an ordered balanced tree keyed by DN).
type VolatileCache = Arc<RwLock<BTreeMap<String, Entry>>>;

/// `back-bdb`: transactional Berkeley-DB-like storage + volatile cache.
pub struct BackBdb {
    store: Arc<BdbStore>,
    cache: VolatileCache,
}

impl BackBdb {
    /// Opens the backend over the given PCM-disk file system.
    ///
    /// # Errors
    /// Propagates store errors.
    pub fn open(fs: SimpleFs) -> Result<BackBdb, String> {
        let store = BdbStore::open(
            fs,
            "ldap-bdb",
            StoreConfig {
                durability: Durability::Transactional,
                ..StoreConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        Ok(BackBdb {
            store: Arc::new(store),
            cache: Arc::new(RwLock::new(BTreeMap::new())),
        })
    }
}

impl Backend for BackBdb {
    fn name(&self) -> &'static str {
        "back-bdb"
    }

    fn session(&self) -> Box<dyn Session> {
        Box::new(BdbSession {
            store: Arc::clone(&self.store),
            cache: Arc::clone(&self.cache),
        })
    }
}

struct BdbSession {
    store: Arc<BdbStore>,
    cache: VolatileCache,
}

impl Session for BdbSession {
    fn add(&mut self, entry: &Entry) -> Result<(), String> {
        // Store first (commit), then cache.
        self.store
            .put(entry.dn.as_bytes(), &entry.to_bytes())
            .map_err(|e| e.to_string())?;
        self.cache.write().insert(entry.dn.clone(), entry.clone());
        Ok(())
    }

    fn search(&mut self, dn: &str) -> Result<Option<Entry>, String> {
        if let Some(e) = self.cache.read().get(dn) {
            return Ok(Some(e.clone()));
        }
        match self.store.get(dn.as_bytes()).map_err(|e| e.to_string())? {
            Some(raw) => Ok(Entry::from_bytes(dn, &raw)),
            None => Ok(None),
        }
    }
}

/// `back-ldbm`: the same store without transactions; dirty data flushed
/// every `flush_every` updates.
pub struct BackLdbm {
    store: Arc<BdbStore>,
    cache: VolatileCache,
}

impl BackLdbm {
    /// Opens the backend; `flush_every` is the periodic-flush interval.
    ///
    /// # Errors
    /// Propagates store errors.
    pub fn open(fs: SimpleFs, flush_every: u64) -> Result<BackLdbm, String> {
        let store = BdbStore::open(
            fs,
            "ldap-ldbm",
            StoreConfig {
                durability: Durability::Ldbm { flush_every },
                ..StoreConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        Ok(BackLdbm {
            store: Arc::new(store),
            cache: Arc::new(RwLock::new(BTreeMap::new())),
        })
    }
}

impl Backend for BackLdbm {
    fn name(&self) -> &'static str {
        "back-ldbm"
    }

    fn session(&self) -> Box<dyn Session> {
        Box::new(BdbSession {
            store: Arc::clone(&self.store),
            cache: Arc::clone(&self.cache),
        })
    }
}

/// `back-mnemosyne`: the entry cache *is* the store — a persistent AVL
/// tree updated in durable transactions (four atomic blocks in the real
/// conversion; here every cache update is one transaction).
pub struct BackMnemosyne {
    m: Arc<Mnemosyne>,
    tree: PAvlTree,
}

impl BackMnemosyne {
    /// Opens the backend over a booted Mnemosyne stack.
    ///
    /// # Errors
    /// Propagates stack errors.
    pub fn open(m: Arc<Mnemosyne>) -> Result<BackMnemosyne, String> {
        let tree = PAvlTree::open(&m, "ldap-cache").map_err(|e| e.to_string())?;
        Ok(BackMnemosyne { m, tree })
    }
}

impl Backend for BackMnemosyne {
    fn name(&self) -> &'static str {
        "back-mnemosyne"
    }

    fn session(&self) -> Box<dyn Session> {
        let th = self
            .m
            .register_thread()
            .expect("transaction thread slot for LDAP session");
        Box::new(MnemosyneSession {
            tree: self.tree,
            th,
        })
    }
}

struct MnemosyneSession {
    tree: PAvlTree,
    th: TxThread,
}

impl Session for MnemosyneSession {
    fn add(&mut self, entry: &Entry) -> Result<(), String> {
        self.tree
            .insert(&mut self.th, entry.dn.as_bytes(), &entry.to_bytes())
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn search(&mut self, dn: &str) -> Result<Option<Entry>, String> {
        match self
            .tree
            .get(&mut self.th, dn.as_bytes())
            .map_err(|e| e.to_string())?
        {
            Some(raw) => Ok(Entry::from_bytes(dn, &raw)),
            None => Ok(None),
        }
    }
}

/// SLAMD-like workload: entries generated from an LDIF template.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Base DN suffix.
    pub suffix: String,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            suffix: "ou=People,dc=example,dc=com".to_string(),
        }
    }
}

impl Workload {
    /// Generates the `i`-th directory entry of the template.
    pub fn entry(&self, i: u64) -> Entry {
        Entry {
            dn: format!("uid=user.{i},{}", self.suffix),
            attrs: vec![
                ("objectClass".into(), "inetOrgPerson".into()),
                ("uid".into(), format!("user.{i}")),
                ("cn".into(), format!("User {i}")),
                ("sn".into(), format!("Number{i}")),
                ("mail".into(), format!("user.{i}@example.com")),
                (
                    "telephoneNumber".into(),
                    format!("+1 555 {:07}", i % 10_000_000),
                ),
                (
                    "description".into(),
                    format!("Generated directory entry number {i} for the SLAMD-like add workload"),
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmdisk::{DiskConfig, PcmDisk};

    fn fs() -> SimpleFs {
        SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(32768)))).unwrap()
    }

    fn check_backend(b: &dyn Backend, n: u64) {
        let w = Workload::default();
        let mut s = b.session();
        for i in 0..n {
            s.add(&w.entry(i)).unwrap();
        }
        for i in 0..n {
            let e = s.search(&w.entry(i).dn).unwrap().expect("entry present");
            assert_eq!(e, w.entry(i), "{}: entry {i} mismatch", b.name());
        }
        assert!(s.search("uid=nobody,o=nowhere").unwrap().is_none());
    }

    #[test]
    fn entry_serialisation_roundtrip() {
        let e = Workload::default().entry(42);
        let bytes = e.to_bytes();
        assert_eq!(Entry::from_bytes(&e.dn, &bytes).unwrap(), e);
    }

    #[test]
    fn back_bdb_serves_adds_and_searches() {
        let b = BackBdb::open(fs()).unwrap();
        check_backend(&b, 50);
    }

    #[test]
    fn back_ldbm_serves_adds_and_searches() {
        let b = BackLdbm::open(fs(), 16).unwrap();
        check_backend(&b, 50);
    }

    #[test]
    fn back_mnemosyne_serves_adds_and_searches() {
        let d = std::env::temp_dir().join(format!(
            "ldap-mnemo-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        let m = Arc::new(
            mnemosyne::Mnemosyne::builder(&d)
                .scm_size(64 << 20)
                .open()
                .unwrap(),
        );
        let b = BackMnemosyne::open(m).unwrap();
        check_backend(&b, 50);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn concurrent_sessions_on_mnemosyne_backend() {
        let d = std::env::temp_dir().join(format!(
            "ldap-conc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        let m = Arc::new(
            mnemosyne::Mnemosyne::builder(&d)
                .scm_size(64 << 20)
                .open()
                .unwrap(),
        );
        let b = Arc::new(BackMnemosyne::open(m).unwrap());
        let w = Workload::default();
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let b = Arc::clone(&b);
            let w = w.clone();
            joins.push(std::thread::spawn(move || {
                let mut s = b.session();
                for i in 0..50u64 {
                    s.add(&w.entry(t * 1000 + i)).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut s = b.session();
        for t in 0..4u64 {
            for i in 0..50u64 {
                assert!(s.search(&w.entry(t * 1000 + i).dn).unwrap().is_some());
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }
}
