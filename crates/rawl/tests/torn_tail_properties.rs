//! Property test for the tornbit log's corruption-detection soundness:
//! flipping any single bit anywhere in the log body — committed records,
//! the torn tail of an unfenced append, or never-written space — must
//! never fabricate a record. Recovery may return a prefix of what was
//! appended (a flipped torn bit is indistinguishable from a genuine torn
//! write, by design) or a typed [`LogError::Corrupt`], but every record
//! it does return must be byte-identical to one that was appended, in
//! order.

use std::path::PathBuf;

use proptest::prelude::*;

use mnemosyne_rawl::{LogError, TornbitLog, LOG_HEADER_BYTES};
use mnemosyne_region::{RegionManager, Regions, VAddr};
use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};

const CAPACITY_WORDS: u64 = 256;

fn dir(n: u64) -> PathBuf {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let d = std::env::temp_dir().join(format!("rawl-prop-{}-{n}-{t:08x}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

struct Env {
    sim: ScmSim,
    regions: Regions,
    log_base: VAddr,
    dir: PathBuf,
}

impl Drop for Env {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn setup(case: u64) -> (Env, TornbitLog) {
    let dir = dir(case);
    std::fs::create_dir_all(&dir).unwrap();
    let sim = ScmSim::new(ScmConfig::for_testing(8 << 20));
    let mgr = RegionManager::boot(&sim, &dir).unwrap();
    let (regions, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
    let r = regions
        .pmap("log", LOG_HEADER_BYTES + CAPACITY_WORDS * 8, &pmem)
        .unwrap();
    let log = TornbitLog::create(pmem, r.addr, CAPACITY_WORDS).unwrap();
    (
        Env {
            sim,
            regions,
            log_base: r.addr,
            dir,
        },
        log,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_bit_flip_never_fabricates_a_record(
        case in any::<u64>(),
        n_committed in 1usize..5,
        lens in proptest::collection::vec(1usize..10, 5..6),
        final_len in 1usize..10,
        word in 0u64..CAPACITY_WORDS,
        bit in 0u32..64,
        crash_seed in any::<u64>(),
    ) {
        let (env, mut log) = setup(case);

        // Durable records: append + flush (the single tornbit fence).
        let mut appended: Vec<Vec<u64>> = Vec::new();
        for (i, &len) in lens.iter().enumerate().take(n_committed) {
            let payload: Vec<u64> = (0..len)
                .map(|j| (case ^ (i as u64) << 32).wrapping_add(j as u64 * 0x9e37))
                .collect();
            log.append(&payload).unwrap();
            log.flush();
            appended.push(payload);
        }
        // One unfenced append: its streaming stores are in flight at the
        // crash, so the tail is torn by whatever subset `crash_seed`
        // retires.
        let final_payload: Vec<u64> =
            (0..final_len).map(|j| case.wrapping_mul(31).wrapping_add(j as u64)).collect();
        log.append(&final_payload).unwrap();
        appended.push(final_payload);
        env.sim.crash(CrashPolicy::Random { seed: crash_seed, apply_probability: 0.5 });

        // Adversarial single-bit flip anywhere in the log body.
        let target = env.log_base.add(LOG_HEADER_BYTES + word * 8);
        let pa = env.regions.pmem_handle().try_translate(target).unwrap();
        env.sim.inject_bit_flip(pa, bit);

        match TornbitLog::recover(env.regions.pmem_handle(), env.log_base) {
            Ok((_log, records)) => {
                prop_assert!(
                    records.len() <= appended.len(),
                    "recovered {} records but only {} were ever appended",
                    records.len(),
                    appended.len()
                );
                for (i, r) in records.iter().enumerate() {
                    prop_assert_eq!(
                        r,
                        &appended[i],
                        "recovered record {} differs from what was appended",
                        i
                    );
                }
            }
            Err(LogError::Corrupt { .. }) => {} // typed rejection: fine
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }
}
