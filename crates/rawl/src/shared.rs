//! Shared circular-buffer state and the persistent log header.
//!
//! The log is a Lamport single-producer/single-consumer circular buffer
//! (§4.4, citing Lamport 1977): the producer appends at the tail, the
//! consumer truncates at the head, and no lock is needed because each side
//! writes only its own index. Stream positions are monotonically
//! increasing word counts; `position % capacity` is the buffer index and
//! `position / capacity` the pass number (which drives the torn-bit
//! sense).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mnemosyne_region::{PMem, VAddr};

use crate::error::LogError;

/// Largest stream position [`LogShared::read_header`] accepts as a head.
/// Positions are monotonic word counts, so 2^48 words (2 PiB of log
/// traffic) is far beyond anything a real run produces — a head above it
/// can only come from a corrupted header word.
pub const MAX_STREAM_POS: u64 = 1 << 48;

/// Largest capacity [`LogShared::read_header`] accepts (2^40 words = 8 TiB
/// buffer); anything above is a corrupted header word, and rejecting it
/// keeps the recovery scan's `head + capacity` arithmetic overflow-free.
pub const MAX_CAPACITY_WORDS: u64 = 1 << 40;

/// Bytes of the persistent log header preceding the buffer:
/// `[magic, capacity_words, head_position, kind]` padded to a cache line.
pub const LOG_HEADER_BYTES: u64 = 64;

/// Magic for a tornbit log region ("RAWLTORN").
pub const TORNBIT_MAGIC: u64 = u64::from_le_bytes(*b"RAWLTORN");

/// Magic for a commit-record log region ("RAWLCMIT").
pub const COMMIT_MAGIC: u64 = u64::from_le_bytes(*b"RAWLCMIT");

/// Volatile state shared between the producer and the (optional)
/// asynchronous truncator.
#[derive(Debug)]
pub struct LogShared {
    /// First address of the log region (header).
    pub base: VAddr,
    /// Buffer capacity in words.
    pub capacity: u64,
    /// Stream position of the oldest live word (truncate point).
    pub head: AtomicU64,
    /// Stream position one past the last appended word (may not be durable
    /// yet).
    pub tail: AtomicU64,
    /// Stream position up to which appends are durable (advanced by
    /// `log_flush`). The consumer must not read past this.
    pub fenced: AtomicU64,
    /// Set when the consumer detects media corruption in the durable
    /// region. A poisoned log stops accepting appends (the producer gets
    /// [`LogError::Corrupt`] instead of spinning on [`LogError::Full`]
    /// waiting for a truncation that will never come).
    pub poisoned: AtomicBool,
    /// Stream position below which every record's *data* is durable as
    /// well as the record itself (both fenced). Published by producers
    /// whose regime forces data inline (the synchronous transaction
    /// runtime, after its post-writeback fence); a checkpointer may
    /// truncate up to it without scanning the buffer.
    pub durable_wm: AtomicU64,
    /// Serializes concurrent truncators: the producer's inline watermark
    /// truncation and a background checkpointer may race on the head.
    trunc_lock: AtomicBool,
}

impl LogShared {
    /// Creates shared state with all positions at `pos`.
    pub fn new(base: VAddr, capacity: u64, pos: u64) -> Self {
        LogShared {
            base,
            capacity,
            head: AtomicU64::new(pos),
            tail: AtomicU64::new(pos),
            fenced: AtomicU64::new(pos),
            poisoned: AtomicBool::new(false),
            durable_wm: AtomicU64::new(pos),
            trunc_lock: AtomicBool::new(false),
        }
    }

    /// Virtual address of the buffer word at stream position `pos`.
    #[inline]
    pub fn word_addr(&self, pos: u64) -> VAddr {
        self.base.add(LOG_HEADER_BYTES + (pos % self.capacity) * 8)
    }

    /// Virtual address of the persistent head word in the header.
    #[inline]
    pub fn head_addr(&self) -> VAddr {
        self.base.add(16)
    }

    /// Free words from the producer's perspective.
    #[inline]
    pub fn free_words(&self) -> u64 {
        self.capacity - (self.tail.load(Ordering::Relaxed) - self.head.load(Ordering::Acquire))
    }

    /// Writes the header for a fresh log.
    pub fn write_header(pmem: &PMem, base: VAddr, magic: u64, capacity: u64) {
        pmem.wtstore_u64(base, magic);
        pmem.wtstore_u64(base.add(8), capacity);
        pmem.wtstore_u64(base.add(16), 0); // head position
        pmem.fence();
    }

    /// Reads and validates a header, returning `(capacity, head_position)`.
    ///
    /// # Errors
    /// [`LogError::BadHeader`] if the region is unmapped or the magic does
    /// not match; [`LogError::Corrupt`] if the magic is intact but the
    /// capacity or head word is implausible (a corrupted header must not
    /// send the recovery scan out of the mapped region or into overflowing
    /// arithmetic).
    pub fn read_header(pmem: &PMem, base: VAddr, magic: u64) -> Result<(u64, u64), LogError> {
        if pmem.try_translate(base).is_err() {
            return Err(LogError::BadHeader);
        }
        if pmem.read_u64(base) != magic {
            return Err(LogError::BadHeader);
        }
        let capacity = pmem.read_u64(base.add(8));
        let head = pmem.read_u64(base.add(16));
        if capacity == 0 || !capacity.is_multiple_of(2) || capacity > MAX_CAPACITY_WORDS {
            return Err(LogError::Corrupt {
                position: 0,
                detail: "implausible log capacity in header",
            });
        }
        // The whole buffer must lie inside the mapped region; a corrupted
        // capacity word would otherwise turn the recovery scan into a
        // persistent-memory fault (panic) instead of a typed error.
        let last = base.add(LOG_HEADER_BYTES + (capacity - 1) * 8);
        if pmem.try_translate(last).is_err() {
            return Err(LogError::Corrupt {
                position: 0,
                detail: "log capacity exceeds the mapped region",
            });
        }
        if head > MAX_STREAM_POS {
            return Err(LogError::Corrupt {
                position: head,
                detail: "implausible log head position in header",
            });
        }
        Ok((capacity, head))
    }

    /// Durably advances the persistent head to `pos` (one atomic word
    /// write plus one fence), then publishes it to the producer.
    ///
    /// Monotonic and safe under concurrent truncators: a `pos` at or
    /// below the current head is a no-op costing no durability
    /// primitives, and a short spinlock serializes the ones that do
    /// advance, so the head — volatile and persistent — only ever moves
    /// forward. (Two legitimate truncators can coexist: the producer's
    /// inline watermark truncation and a background checkpointer.)
    /// Returns the words reclaimed (0 for the no-op).
    pub fn truncate_to(&self, pmem: &PMem, pos: u64) -> u64 {
        if pos <= self.head.load(Ordering::Acquire) {
            return 0;
        }
        while self.trunc_lock.swap(true, Ordering::Acquire) {
            // If a fault-injected crash unwound the lock holder, die here
            // too instead of spinning forever on a lock nobody releases.
            pmem.poll_crash();
            std::hint::spin_loop();
        }
        let head = self.head.load(Ordering::Relaxed);
        let reclaimed = pos.saturating_sub(head);
        if reclaimed > 0 {
            debug_assert!(pos <= self.tail.load(Ordering::Relaxed));
            pmem.wtstore_u64(self.head_addr(), pos);
            pmem.fence();
            self.head.store(pos, Ordering::Release);
        }
        self.trunc_lock.store(false, Ordering::Release);
        reclaimed
    }

    /// Validates a requested capacity (words): at least 16, even (so the
    /// pass parity flips predictably), and sane.
    pub fn validate_capacity(capacity: u64) -> Result<(), LogError> {
        if capacity < 16 || !capacity.is_multiple_of(2) {
            return Err(LogError::BadCapacity(capacity));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_wrap() {
        let s = LogShared::new(VAddr(0x1000_0000_0000), 16, 0);
        assert_eq!(s.word_addr(0), s.word_addr(16));
        assert_eq!(s.word_addr(3).0, s.base.0 + LOG_HEADER_BYTES + 24);
    }

    #[test]
    fn free_words_accounting() {
        let s = LogShared::new(VAddr(0x1000_0000_0000), 16, 0);
        assert_eq!(s.free_words(), 16);
        s.tail.store(10, Ordering::Relaxed);
        assert_eq!(s.free_words(), 6);
        s.head.store(4, Ordering::Relaxed);
        assert_eq!(s.free_words(), 10);
    }

    #[test]
    fn capacity_validation() {
        assert!(LogShared::validate_capacity(16).is_ok());
        assert!(LogShared::validate_capacity(15).is_err());
        assert!(LogShared::validate_capacity(17).is_err());
        assert!(LogShared::validate_capacity(0).is_err());
    }
}
