//! Torn-bit bit-stream packing (§4.4).
//!
//! "The log manager treats the incoming 64-bit words to be written to the
//! log as a stream of bits. It forms and writes out to the log 64-bit
//! words that are composed of 63 bits taken from the head of the stream
//! and the proper torn bit."
//!
//! The torn bit occupies bit 63 of every log word. Its expected value for
//! a word at absolute stream position `p` in a buffer of `n` words is
//! [`torn_bit_for_pass`]`(p / n)`: pass 0 writes `1` (so zero-initialised,
//! never-written words mismatch), and the sense reverses every pass.

/// Mask selecting the 63 payload bits of a log word.
pub const PAYLOAD_MASK: u64 = (1 << 63) - 1;

/// Expected torn-bit value for the given pass over the buffer.
#[inline]
pub fn torn_bit_for_pass(pass: u64) -> u64 {
    1 - (pass & 1)
}

/// Number of 64-bit log words needed to pack `record_words` 64-bit payload
/// words at 63 payload bits per log word.
#[inline]
pub fn packed_len(record_words: u64) -> u64 {
    (record_words * 64).div_ceil(63)
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Integrity checksum over a record's payload (length mixed in), appended
/// to every log record and verified on recovery. The torn bit only detects
/// *missing* words; the checksum detects *damaged* ones — a flipped media
/// bit anywhere in a record changes the checksum, so corruption surfaces
/// as a typed error instead of silently-wrong replay data.
pub fn record_checksum(payload: &[u64]) -> u64 {
    let mut acc = splitmix(payload.len() as u64);
    for &w in payload {
        acc = splitmix(acc ^ w);
    }
    acc
}

/// Packs 64-bit payload words into 63-bit-payload log words, emitting each
/// finished log word (without the torn bit — the writer adds it, since it
/// depends on the word's buffer position).
#[derive(Debug, Default)]
pub struct BitPacker {
    acc: u128,
    bits: u32,
}

impl BitPacker {
    /// Creates an empty packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one payload word, invoking `emit` for each full 63-bit chunk.
    pub fn push(&mut self, word: u64, mut emit: impl FnMut(u64)) {
        self.acc |= (word as u128) << self.bits;
        self.bits += 64;
        while self.bits >= 63 {
            emit((self.acc as u64) & PAYLOAD_MASK);
            self.acc >>= 63;
            self.bits -= 63;
        }
    }

    /// Flushes any remaining bits as a final zero-padded chunk.
    pub fn finish(mut self, mut emit: impl FnMut(u64)) {
        if self.bits > 0 {
            emit((self.acc as u64) & PAYLOAD_MASK);
            self.acc = 0;
            self.bits = 0;
        }
    }
}

/// Reassembles 64-bit payload words from a sequence of 63-bit log-word
/// payloads.
#[derive(Debug, Default)]
pub struct BitUnpacker {
    acc: u128,
    bits: u32,
}

impl BitUnpacker {
    /// Creates an empty unpacker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the payload bits of one log word (torn bit already stripped),
    /// emitting every completed 64-bit word.
    pub fn push(&mut self, payload63: u64, mut emit: impl FnMut(u64)) {
        debug_assert_eq!(payload63 & !PAYLOAD_MASK, 0);
        self.acc |= (payload63 as u128) << self.bits;
        self.bits += 63;
        while self.bits >= 64 {
            emit(self.acc as u64);
            self.acc >>= 64;
            self.bits -= 64;
        }
    }
}

/// Packs a whole record into log-word payloads (a convenience built on
/// [`BitPacker`]). The output has exactly
/// [`packed_len`]`(record.len() as u64)` entries.
pub fn pack_record(record: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(packed_len(record.len() as u64) as usize);
    let mut packer = BitPacker::new();
    for &w in record {
        packer.push(w, |c| out.push(c));
    }
    packer.finish(|c| out.push(c));
    out
}

/// Unpacks `want` payload words from log-word payloads.
pub fn unpack_record(chunks: &[u64], want: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(want);
    let mut unpacker = BitUnpacker::new();
    for &c in chunks {
        if out.len() >= want {
            break;
        }
        unpacker.push(c & PAYLOAD_MASK, |w| {
            if out.len() < want {
                out.push(w)
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn torn_bit_alternates_from_one() {
        assert_eq!(torn_bit_for_pass(0), 1);
        assert_eq!(torn_bit_for_pass(1), 0);
        assert_eq!(torn_bit_for_pass(2), 1);
    }

    #[test]
    fn packed_len_matches_formula() {
        assert_eq!(packed_len(0), 0);
        assert_eq!(packed_len(1), 2); // 64 bits -> 2 chunks
        assert_eq!(packed_len(63), 64); // 63*64 = 4032 bits = 64 chunks
        assert_eq!(packed_len(64), 66);
    }

    #[test]
    fn roundtrip_simple() {
        let record = vec![u64::MAX, 0, 0xdead_beef, 1 << 63];
        let chunks = pack_record(&record);
        assert_eq!(chunks.len() as u64, packed_len(4));
        assert!(
            chunks.iter().all(|c| c & !PAYLOAD_MASK == 0),
            "no chunk uses bit 63"
        );
        assert_eq!(unpack_record(&chunks, 4), record);
    }

    #[test]
    fn empty_record() {
        assert!(pack_record(&[]).is_empty());
        assert!(unpack_record(&[], 0).is_empty());
    }

    #[test]
    fn checksum_is_bit_sensitive() {
        let base = record_checksum(&[1, 2, 3]);
        assert_ne!(base, record_checksum(&[1, 2, 2]));
        assert_ne!(base, record_checksum(&[1, 2]));
        assert_ne!(record_checksum(&[]), record_checksum(&[0]));
        for bit in 0..64u32 {
            assert_ne!(base, record_checksum(&[1u64 ^ (1u64 << bit), 2, 3]));
        }
    }

    proptest! {
        #[test]
        fn prop_pack_unpack_roundtrip(record in proptest::collection::vec(any::<u64>(), 0..200)) {
            let chunks = pack_record(&record);
            prop_assert_eq!(chunks.len() as u64, packed_len(record.len() as u64));
            for c in &chunks {
                prop_assert_eq!(c & !PAYLOAD_MASK, 0);
            }
            let back = unpack_record(&chunks, record.len());
            prop_assert_eq!(back, record);
        }

        #[test]
        fn prop_unpack_ignores_torn_bits(record in proptest::collection::vec(any::<u64>(), 1..50), torn in any::<bool>()) {
            let mut chunks = pack_record(&record);
            if torn {
                for c in &mut chunks {
                    *c |= 1 << 63;
                }
            }
            prop_assert_eq!(unpack_record(&chunks, record.len()), record);
        }
    }
}
