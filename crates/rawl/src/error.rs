//! Log error type.

use std::fmt;

/// Errors from RAWL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// Not enough free space for the record; truncate (or wait for the
    /// asynchronous truncator) and retry.
    Full {
        /// Words the append needs.
        needed: u64,
        /// Words currently free.
        free: u64,
    },
    /// The log region header is corrupt or has the wrong magic.
    BadHeader,
    /// The requested capacity is too small or not supported.
    BadCapacity(u64),
    /// A record exceeds the log capacity and can never be appended.
    RecordTooLarge {
        /// Words the record would occupy.
        needed: u64,
        /// Total capacity in words.
        capacity: u64,
    },
    /// Media corruption detected: the log structure was valid at some point
    /// but its current contents are provably inconsistent (checksum
    /// mismatch, implausible length, out-of-range header fields). The log
    /// must not be trusted; recovery should degrade gracefully rather than
    /// replay garbage.
    Corrupt {
        /// Stream position (or header field offset) where corruption was
        /// detected.
        position: u64,
        /// What was inconsistent.
        detail: &'static str,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Full { needed, free } => {
                write!(f, "log full: need {needed} words, {free} free")
            }
            LogError::BadHeader => write!(f, "corrupt log header"),
            LogError::BadCapacity(c) => write!(f, "unsupported log capacity {c}"),
            LogError::RecordTooLarge { needed, capacity } => {
                write!(
                    f,
                    "record of {needed} words exceeds log capacity {capacity}"
                )
            }
            LogError::Corrupt { position, detail } => {
                write!(f, "log corruption at stream position {position}: {detail}")
            }
        }
    }
}

impl std::error::Error for LogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LogError::Full {
            needed: 10,
            free: 3,
        };
        assert_eq!(e.to_string(), "log full: need 10 words, 3 free");
    }
}
