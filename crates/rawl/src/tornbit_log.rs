//! The tornbit RAWL: atomic log appends with a single fence (§4.4).
//!
//! Every 64-bit log word carries 63 payload bits plus a torn bit whose
//! sense flips on each pass over the circular buffer. A record is appended
//! as a stream of such words with weakly-ordered streaming stores; one
//! fence then makes the whole append durable. On recovery the log manager
//! scans forward from the head: a word whose torn bit is out of sequence
//! marks a partial (torn) append, which is discarded (Figure 2).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mnemosyne_region::{PMem, VAddr};

use crate::error::LogError;
use crate::metrics::LogMetrics;
use crate::shared::{LogShared, LOG_HEADER_BYTES, TORNBIT_MAGIC};
use crate::tornbit::{
    packed_len, record_checksum, torn_bit_for_pass, BitPacker, BitUnpacker, PAYLOAD_MASK,
};

/// Producer handle to a tornbit RAWL. Single producer: `&mut self` on
/// mutating operations enforces it.
pub struct TornbitLog {
    shared: Arc<LogShared>,
    pmem: PMem,
    records_appended: u64,
    metrics: LogMetrics,
}

impl std::fmt::Debug for TornbitLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TornbitLog")
            .field("capacity", &self.shared.capacity)
            .field("len_words", &self.len_words())
            .finish()
    }
}

/// Outcome of decoding one record from the torn-bit-consistent region.
///
/// The distinction between the two failure arms is the heart of the
/// corruption model: within the torn-consistent prefix every word is a
/// retired current-pass word, so a record that *ends beyond* the prefix is
/// a benign partial append (the crash interrupted it), while a record that
/// is fully present but internally inconsistent can only be media
/// corruption — a torn append never produces one.
enum Decoded {
    /// A complete, checksum-verified record and the next stream position.
    Record(Vec<u64>, u64),
    /// A benign torn tail: the record extends past the valid region (or
    /// the region is too short for even a header). Recovery discards it.
    Incomplete,
    /// Provable media corruption at `position`.
    Corrupt { position: u64, detail: &'static str },
}

/// Decodes the record starting at stream position `p` (which must be below
/// `end`). Records are packed as `[len, payload..., checksum]`.
fn decode_record(read_word: &impl Fn(u64) -> u64, p: u64, end: u64, capacity: u64) -> Decoded {
    if end - p < 2 {
        return Decoded::Incomplete; // even a zero-length record needs two chunks
    }
    // First two chunks yield the 64-bit length header.
    let mut header = None;
    let mut un = BitUnpacker::new();
    for i in 0..2 {
        un.push(read_word(p + i) & PAYLOAD_MASK, |w| {
            if header.is_none() {
                header = Some(w)
            }
        });
    }
    let len = match header {
        Some(l) => l,
        None => return Decoded::Incomplete,
    };
    // A length at or above the capacity cannot have been written by
    // `append` (it bounds-checks first), and a torn append still carries
    // its true length (words retire whole or not at all) — so an oversized
    // length inside the torn-consistent region is corruption. Checking
    // against `capacity` first also keeps `packed_len` overflow-free.
    if len >= capacity {
        return Decoded::Corrupt {
            position: p,
            detail: "implausible record length",
        };
    }
    let m = packed_len(2 + len);
    if m > capacity {
        return Decoded::Corrupt {
            position: p,
            detail: "record length exceeds log capacity",
        };
    }
    if p + m > end {
        return Decoded::Incomplete; // benign torn tail
    }
    // Decode the full record: length word, payload, checksum word.
    let want = 2 + len as usize;
    let mut words = Vec::with_capacity(want);
    let mut un = BitUnpacker::new();
    for i in 0..m {
        if words.len() >= want {
            break;
        }
        un.push(read_word(p + i) & PAYLOAD_MASK, |w| {
            if words.len() < want {
                words.push(w)
            }
        });
    }
    if words.len() != want {
        return Decoded::Corrupt {
            position: p,
            detail: "truncated record encoding",
        };
    }
    let payload = &words[1..1 + len as usize];
    if words[1 + len as usize] != record_checksum(payload) {
        return Decoded::Corrupt {
            position: p,
            detail: "record checksum mismatch",
        };
    }
    let mut payload = words;
    payload.pop();
    payload.remove(0);
    Decoded::Record(payload, p + m)
}

impl TornbitLog {
    /// Creates a fresh tornbit log at `base` with a buffer of
    /// `capacity_words` words. The buffer is zero-initialised (§4.4), so
    /// pass-0 writes (torn bit `1`) are distinguishable from never-written
    /// words.
    ///
    /// # Errors
    /// Fails if the capacity is invalid.
    ///
    /// # Panics
    /// Panics if the region at `base` is unmapped or too small.
    pub fn create(pmem: PMem, base: VAddr, capacity_words: u64) -> Result<TornbitLog, LogError> {
        LogShared::validate_capacity(capacity_words)?;
        for i in 0..capacity_words {
            pmem.wtstore_u64(base.add(LOG_HEADER_BYTES + i * 8), 0);
        }
        pmem.fence();
        LogShared::write_header(&pmem, base, TORNBIT_MAGIC, capacity_words);
        let metrics = LogMetrics::tornbit(pmem.telemetry());
        Ok(TornbitLog {
            shared: Arc::new(LogShared::new(base, capacity_words, 0)),
            pmem,
            records_appended: 0,
            metrics,
        })
    }

    /// Whether a tornbit log header is present at `base` (used to decide
    /// between [`TornbitLog::create`] and [`TornbitLog::recover`]).
    pub fn exists(pmem: &PMem, base: VAddr) -> bool {
        pmem.read_u64(base) == TORNBIT_MAGIC
    }

    /// Recovers the log at `base` if one exists there, otherwise creates a
    /// fresh one of `capacity_words`. Returns the producer handle plus any
    /// records recovered (empty for a fresh log). This is the open path
    /// for subsystems that keep a *set* of logs and may grow it between
    /// boots (e.g. the sharded persistent heap adding shard logs).
    ///
    /// # Errors
    /// Propagates [`TornbitLog::create`] / [`TornbitLog::recover`] errors.
    pub fn open_or_create(
        pmem: PMem,
        base: VAddr,
        capacity_words: u64,
    ) -> Result<(TornbitLog, Vec<Vec<u64>>), LogError> {
        if TornbitLog::exists(&pmem, base) {
            TornbitLog::recover(pmem, base)
        } else {
            TornbitLog::create(pmem, base, capacity_words).map(|log| (log, Vec::new()))
        }
    }

    /// Recovers a tornbit log after a failure: locates the head, scans
    /// forward while torn bits are in sequence, decodes the complete
    /// records (verifying each record's checksum), discards a trailing
    /// partial append, and sanitises the torn region so a repeated crash
    /// cannot resurrect it. Returns the log (positioned after the last
    /// complete record) and the recovered records in order.
    ///
    /// # Errors
    /// [`LogError::BadHeader`] / [`LogError::Corrupt`] if the header is
    /// damaged, and [`LogError::Corrupt`] if a record inside the durable
    /// region fails its checksum — a torn append can only truncate the
    /// tail, so an internally inconsistent record is media corruption and
    /// must not be replayed.
    pub fn recover(pmem: PMem, base: VAddr) -> Result<(TornbitLog, Vec<Vec<u64>>), LogError> {
        let metrics = LogMetrics::tornbit(pmem.telemetry());
        metrics.recoveries.inc();
        let header = LogShared::read_header(&pmem, base, TORNBIT_MAGIC);
        if header.is_err() {
            metrics.corruptions.inc();
        }
        let (capacity, head) = header?;
        let shared = LogShared::new(base, capacity, head);
        let read_word = |pos: u64| pmem.read_u64(shared.word_addr(pos));

        // Scan: the valid region is the maximal torn-bit-consistent prefix.
        let mut valid_end = head;
        while valid_end < head + capacity {
            let w = read_word(valid_end);
            if w >> 63 != torn_bit_for_pass(valid_end / capacity) {
                break;
            }
            valid_end += 1;
        }

        // Decode complete records.
        let mut records = Vec::new();
        let mut p = head;
        loop {
            match decode_record(&read_word, p, valid_end, capacity) {
                Decoded::Record(payload, next) => {
                    records.push(payload);
                    p = next;
                }
                Decoded::Incomplete => break,
                Decoded::Corrupt { position, detail } => {
                    metrics.corruptions.inc();
                    return Err(LogError::Corrupt { position, detail });
                }
            }
        }

        // Sanitise [p, valid_end): overwrite with the *opposite* torn bit
        // so the partial append can never be mistaken for live data by a
        // later recovery.
        for pos in p..valid_end {
            let bad = (1 - torn_bit_for_pass(pos / capacity)) << 63;
            pmem.wtstore_u64(shared.word_addr(pos), bad);
        }
        if p < valid_end {
            metrics.torn_tails.inc();
            pmem.fence();
        }
        metrics.recovered_records.add(records.len() as u64);

        let shared = Arc::new(LogShared::new(base, capacity, head));
        shared.tail.store(p, Ordering::Relaxed);
        shared.fenced.store(p, Ordering::Relaxed);
        Ok((
            TornbitLog {
                shared,
                pmem,
                records_appended: 0,
                metrics,
            },
            records,
        ))
    }

    /// Appends a record (`log_append`): queues streaming stores for the
    /// packed words (`[len, payload…, checksum]`). **Not durable** until
    /// [`TornbitLog::flush`]; separate appends become durable in order, so
    /// after a crash the log is always a prefix of what was appended.
    ///
    /// # Errors
    /// [`LogError::Full`] if the truncator has not freed enough space,
    /// [`LogError::RecordTooLarge`] if the record can never fit, or
    /// [`LogError::Corrupt`] if the truncator has poisoned the log after
    /// detecting media corruption (waiting for space would deadlock).
    pub fn append(&mut self, payload: &[u64]) -> Result<(), LogError> {
        if self.shared.poisoned.load(Ordering::Acquire) {
            return Err(LogError::Corrupt {
                position: self.shared.head.load(Ordering::Relaxed),
                detail: "log poisoned: truncator detected media corruption",
            });
        }
        let m = packed_len(2 + payload.len() as u64);
        if m > self.shared.capacity {
            return Err(LogError::RecordTooLarge {
                needed: m,
                capacity: self.shared.capacity,
            });
        }
        let free = self.shared.free_words();
        if m > free {
            return Err(LogError::Full { needed: m, free });
        }
        let mut pos = self.shared.tail.load(Ordering::Relaxed);
        let cap = self.shared.capacity;
        {
            let shared = &self.shared;
            let pmem = &self.pmem;
            let mut emit = |chunk: u64| {
                let torn = torn_bit_for_pass(pos / cap) << 63;
                pmem.wtstore_u64(shared.word_addr(pos), chunk | torn);
                pos += 1;
            };
            let mut packer = BitPacker::new();
            packer.push(payload.len() as u64, &mut emit);
            for &w in payload {
                packer.push(w, &mut emit);
            }
            packer.push(record_checksum(payload), &mut emit);
            packer.finish(&mut emit);
        }
        debug_assert_eq!(pos, self.shared.tail.load(Ordering::Relaxed) + m);
        let old_tail = self.shared.tail.load(Ordering::Relaxed);
        self.shared.tail.store(pos, Ordering::Relaxed);
        self.records_appended += 1;
        self.metrics.appends.inc();
        self.metrics.append_words.add(payload.len() as u64);
        // A pass boundary crossed by this append is a torn-bit sense
        // reversal (a wrap of the circular buffer).
        self.metrics.wraps.add(pos / cap - old_tail / cap);
        self.metrics.occupancy_hwm.record(self.len_words());
        Ok(())
    }

    /// `log_flush`: one fence makes every prior append durable and
    /// publishes them to the asynchronous truncator.
    pub fn flush(&mut self) {
        self.pmem.fence();
        self.shared
            .fenced
            .store(self.shared.tail.load(Ordering::Relaxed), Ordering::Release);
        self.metrics.flushes.inc();
    }

    /// Like [`TornbitLog::flush`], but does **not** publish the records to
    /// the asynchronous truncator yet. The transaction system uses this at
    /// commit: the redo record must be durable *before* values are written
    /// back, but the truncator must not consume (and truncate) the record
    /// until the write-back has happened — otherwise it would flush stale
    /// lines and discard the only copy of the data. Call
    /// [`TornbitLog::publish`] once the dependent writes are issued.
    pub fn flush_unpublished(&mut self) {
        self.pmem.fence();
        self.metrics.flushes.inc();
    }

    /// Publishes all fenced records to the asynchronous truncator; see
    /// [`TornbitLog::flush_unpublished`].
    pub fn publish(&mut self) {
        self.shared
            .fenced
            .store(self.shared.tail.load(Ordering::Relaxed), Ordering::Release);
    }

    /// Publishes the current tail as the *data-durable* watermark: the
    /// producer asserts that every record below it is fenced **and** the
    /// data writes those records describe have been flushed and fenced,
    /// so recovery no longer needs them. A background checkpointer (on
    /// another thread, holding a [`LogTruncator`]) may then reclaim the
    /// space with [`LogTruncator::truncate_to_durable_watermark`] without
    /// scanning the buffer — and without racing the producer's appends,
    /// because the watermark only ever covers retired stream positions.
    ///
    /// Costs no durability primitives; call it after the commit fence.
    pub fn publish_durable_watermark(&mut self) {
        self.shared
            .durable_wm
            .store(self.shared.tail.load(Ordering::Relaxed), Ordering::Release);
    }

    /// Synchronous truncation (`log_truncate`): durably drops every record
    /// written so far (one word write + one fence).
    pub fn truncate_all(&mut self) {
        self.flush();
        let tail = self.shared.tail.load(Ordering::Relaxed);
        self.shared.truncate_to(&self.pmem, tail);
        self.metrics.truncations.inc();
    }

    /// Stream position one past the last appended word — the producer's
    /// durable watermark once those appends have been fenced and their
    /// dependent data forced out.
    pub fn tail_pos(&self) -> u64 {
        self.shared.tail.load(Ordering::Relaxed)
    }

    /// Incremental truncation: durably advances the head to `watermark`
    /// (a stream position at a record boundary, at most [`tail_pos`]),
    /// dropping every record before it, for one word write + one fence —
    /// without the extra flush fence of [`TornbitLog::truncate_all`].
    ///
    /// The caller asserts that everything below `watermark` is durable
    /// *twice over*: the records themselves were fenced, and the data
    /// writes they describe were flushed and fenced, so recovery no
    /// longer needs them. The transaction runtime uses this to amortise
    /// truncation over many commits (the commit-pipeline batching)
    /// instead of dropping the whole log on every commit.
    ///
    /// A watermark at or below the current head is a no-op costing no
    /// durability primitives.
    ///
    /// [`tail_pos`]: TornbitLog::tail_pos
    pub fn truncate_to_watermark(&mut self, watermark: u64) {
        let head = self.shared.head.load(Ordering::Relaxed);
        if watermark <= head {
            return;
        }
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let wm = watermark.min(tail);
        self.shared.truncate_to(&self.pmem, wm);
        self.metrics.truncations.inc();
    }

    /// Creates the single consumer handle for asynchronous truncation from
    /// another thread. `pmem` must be a handle for that thread.
    pub fn truncator(&self, pmem: PMem) -> LogTruncator {
        let metrics = LogMetrics::tornbit(pmem.telemetry());
        LogTruncator {
            shared: Arc::clone(&self.shared),
            pmem,
            metrics,
        }
    }

    /// Words currently live (appended, not truncated).
    pub fn len_words(&self) -> u64 {
        self.shared.tail.load(Ordering::Relaxed) - self.shared.head.load(Ordering::Acquire)
    }

    /// Free words available for appends.
    pub fn free_words(&self) -> u64 {
        self.shared.free_words()
    }

    /// Buffer capacity in words.
    pub fn capacity(&self) -> u64 {
        self.shared.capacity
    }

    /// Records appended through this handle.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Whether the truncator has poisoned this log after detecting media
    /// corruption (appends now fail with [`LogError::Corrupt`]).
    pub fn poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }

    /// The producer-side persistent-memory handle (for callers that need
    /// to interleave other persistent operations on the same thread).
    pub fn pmem(&self) -> &PMem {
        &self.pmem
    }
}

/// Consumer handle: drains durable records and truncates the log from a
/// separate thread (§4.4 asynchronous truncation; §5's log-manager
/// thread).
pub struct LogTruncator {
    shared: Arc<LogShared>,
    pmem: PMem,
    metrics: LogMetrics,
}

impl std::fmt::Debug for LogTruncator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogTruncator")
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl LogTruncator {
    /// Reads every durable (fenced) record, invokes `f` on each, then
    /// durably truncates past them. Returns the number of records
    /// consumed.
    ///
    /// # Errors
    /// [`LogError::Corrupt`] if a fenced record fails its checksum. The
    /// records consumed before the corrupt one are still truncated (they
    /// were delivered to `f`), the log is poisoned so the producer stops
    /// appending, and the damaged region is left in place for recovery to
    /// report.
    pub fn drain(&self, f: impl FnMut(&[u64])) -> Result<usize, LogError> {
        self.drain_incremental(usize::MAX, f)
    }

    /// Like [`LogTruncator::drain`], but durably truncates every
    /// `step_records` records *during* the pass instead of once at the
    /// end, so a producer blocked on a full log sees freed space after a
    /// bounded amount of consumer work — the incremental "durable
    /// watermark" truncation the transaction runtime's log manager uses
    /// to keep `mtm.truncation_stalls` bounded under sustained load.
    ///
    /// Each intermediate truncation costs one word write + one fence on
    /// the consumer handle; `step_records == usize::MAX` recovers the
    /// single-truncation behaviour of `drain`. A `step_records` of 0 is
    /// treated as 1.
    ///
    /// # Errors
    /// Same contract as [`LogTruncator::drain`]: on a checksum failure the
    /// records consumed before the corrupt one are still truncated and the
    /// log is poisoned.
    pub fn drain_incremental(
        &self,
        step_records: usize,
        mut f: impl FnMut(&[u64]),
    ) -> Result<usize, LogError> {
        let step = step_records.max(1);
        let end = self.shared.fenced.load(Ordering::Acquire);
        let mut p = self.shared.head.load(Ordering::Relaxed);
        let read_word = |pos: u64| self.pmem.read_u64(self.shared.word_addr(pos));
        let mut n = 0;
        let mut since_truncate = 0;
        let mut truncated_to = p;
        let mut corrupt = None;
        while p < end {
            match decode_record(&read_word, p, end, self.shared.capacity) {
                Decoded::Record(payload, next) => {
                    f(&payload);
                    p = next;
                    n += 1;
                    since_truncate += 1;
                    if since_truncate >= step {
                        self.shared.truncate_to(&self.pmem, p);
                        self.metrics.truncations.inc();
                        truncated_to = p;
                        since_truncate = 0;
                    }
                }
                Decoded::Incomplete => break,
                Decoded::Corrupt { position, detail } => {
                    corrupt = Some(LogError::Corrupt { position, detail });
                    break;
                }
            }
        }
        if p > truncated_to {
            self.shared.truncate_to(&self.pmem, p);
            self.metrics.truncations.inc();
        }
        match corrupt {
            Some(e) => {
                self.metrics.corruptions.inc();
                self.shared.poisoned.store(true, Ordering::Release);
                Err(e)
            }
            None => Ok(n),
        }
    }

    /// Checkpoint truncation: durably advances the head to the producer's
    /// published data-durable watermark (see
    /// [`TornbitLog::publish_durable_watermark`]) and returns the words
    /// reclaimed. No buffer scan, no record decoding — one word write plus
    /// one fence when there is anything to reclaim, free otherwise. Safe
    /// to call concurrently with the producer's own inline truncation
    /// (the head advance is serialized and monotonic).
    pub fn truncate_to_durable_watermark(&self) -> u64 {
        let wm = self.shared.durable_wm.load(Ordering::Acquire);
        let reclaimed = self.shared.truncate_to(&self.pmem, wm);
        if reclaimed > 0 {
            self.metrics.truncations.inc();
        }
        reclaimed
    }

    /// Stream position of the oldest live word (the truncate point).
    pub fn head_pos(&self) -> u64 {
        self.shared.head.load(Ordering::Acquire)
    }

    /// Words awaiting consumption.
    pub fn backlog_words(&self) -> u64 {
        self.shared.fenced.load(Ordering::Acquire) - self.shared.head.load(Ordering::Relaxed)
    }

    /// Whether this log was poisoned by a corruption detection; a poisoned
    /// log should no longer be drained.
    pub fn poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }

    /// The consumer-side persistent-memory handle.
    pub fn pmem(&self) -> &PMem {
        &self.pmem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne_region::{RegionManager, Regions};
    use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};
    use std::fs;
    use std::path::PathBuf;

    struct Env {
        sim: ScmSim,
        regions: Regions,
        log_base: VAddr,
        dir: PathBuf,
    }

    fn setup(capacity_words: u64) -> (Env, TornbitLog) {
        let dir = std::env::temp_dir().join(format!(
            "rawl-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(8 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let (regions, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let r = regions
            .pmap("log", LOG_HEADER_BYTES + capacity_words * 8, &pmem)
            .unwrap();
        let log = TornbitLog::create(pmem, r.addr, capacity_words).unwrap();
        (
            Env {
                sim,
                regions,
                log_base: r.addr,
                dir,
            },
            log,
        )
    }

    impl Drop for Env {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.dir).ok();
        }
    }

    fn recover(env: &Env) -> (TornbitLog, Vec<Vec<u64>>) {
        TornbitLog::recover(env.regions.pmem_handle(), env.log_base).unwrap()
    }

    #[test]
    fn fenced_append_survives_crash() {
        let (env, mut log) = setup(256);
        log.append(&[1, 2, 3]).unwrap();
        log.flush();
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert_eq!(records, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn unfenced_append_discarded() {
        let (env, mut log) = setup(256);
        log.append(&[1, 2, 3]).unwrap();
        // No flush.
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert!(records.is_empty());
    }

    #[test]
    fn torn_append_discarded_but_prior_kept() {
        let (env, mut log) = setup(256);
        log.append(&[10, 20]).unwrap();
        log.flush();
        log.append(&[30, 40, 50, 60, 70]).unwrap();
        // Second append unfenced: random subset of its words retire.
        env.sim.crash(CrashPolicy::random(99));
        let (_log, records) = recover(&env);
        assert!(!records.is_empty(), "first (fenced) record must survive");
        assert_eq!(records[0], vec![10, 20]);
        // Second record either fully survived (all its words happened to
        // retire) or was discarded — never partially delivered.
        if records.len() > 1 {
            assert_eq!(records[1], vec![30, 40, 50, 60, 70]);
        }
    }

    #[test]
    fn single_fence_per_append_flush_cycle() {
        let (env, mut log) = setup(256);
        let before = env.sim.stats().fences;
        log.append(&[1, 2, 3, 4]).unwrap();
        log.flush();
        assert_eq!(
            env.sim.stats().fences - before,
            1,
            "tornbit needs ONE fence"
        );
    }

    #[test]
    fn multiple_records_roundtrip_in_order() {
        let (env, mut log) = setup(1024);
        for i in 0..10u64 {
            let rec: Vec<u64> = (0..=i).collect();
            log.append(&rec).unwrap();
        }
        log.flush();
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert_eq!(records.len(), 10);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.len(), i + 1);
        }
    }

    #[test]
    fn empty_record_supported() {
        let (env, mut log) = setup(64);
        log.append(&[]).unwrap();
        log.flush();
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert_eq!(records, vec![Vec::<u64>::new()]);
    }

    #[test]
    fn fills_up_and_reports_full() {
        let (_env, mut log) = setup(16);
        log.append(&[1, 2, 3, 4]).unwrap(); // 5 words -> 6 chunks
        match log.append(&[0; 12]) {
            Err(LogError::Full { .. }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        match log.append(&[0; 100]) {
            Err(LogError::RecordTooLarge { .. }) => {}
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncate_frees_space_and_drops_records() {
        let (env, mut log) = setup(32);
        log.append(&[1; 10]).unwrap();
        log.truncate_all();
        assert_eq!(log.free_words(), 32);
        env.sim.crash(CrashPolicy::DropAll);
        let (log2, records) = recover(&env);
        assert!(records.is_empty());
        assert_eq!(log2.free_words(), 32);
    }

    #[test]
    fn wraps_across_many_passes() {
        let (env, mut log) = setup(64);
        // 50 append+truncate cycles walk the buffer through multiple
        // passes, exercising torn-bit sense reversal.
        for i in 0..50u64 {
            log.append(&[i, i * 3, i * 7]).unwrap();
            log.truncate_all();
        }
        log.append(&[777, 888]).unwrap();
        log.flush();
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert_eq!(records, vec![vec![777, 888]]);
    }

    #[test]
    fn recovery_is_idempotent_after_sanitisation() {
        let (env, mut log) = setup(256);
        log.append(&[1]).unwrap();
        log.flush();
        log.append(&[2; 20]).unwrap(); // torn
        env.sim.crash(CrashPolicy::random(5));
        let (_l, r1) = recover(&env);
        // Crash again immediately (recovery state was sanitised+fenced).
        env.sim.crash(CrashPolicy::DropAll);
        let (_l, r2) = recover(&env);
        assert_eq!(r1.first(), r2.first());
        assert_eq!(r2.first(), Some(&vec![1]));
    }

    #[test]
    fn bit_flip_injection_detected() {
        let (env, mut log) = setup(256);
        log.append(&[5, 6, 7]).unwrap();
        log.flush();
        // Flip the torn bit of the second log word directly in media,
        // emulating the §6.2 fault-injection experiment.
        let pmem = env.regions.pmem_handle();
        let addr = env.log_base.add(LOG_HEADER_BYTES + 8);
        let w = pmem.read_u64(addr);
        pmem.store_u64(addr, w ^ (1 << 63));
        pmem.flush(addr);
        pmem.fence();
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert!(
            records.is_empty(),
            "a flipped torn bit must invalidate the append"
        );
    }

    #[test]
    fn async_truncator_drains_only_fenced_records() {
        let (_env, mut log) = setup(256);
        let tr = log.truncator(_env.regions.pmem_handle());
        log.append(&[1, 2]).unwrap();
        log.flush();
        log.append(&[3, 4]).unwrap(); // not fenced yet
        let mut seen = Vec::new();
        let n = tr.drain(|r| seen.push(r.to_vec())).unwrap();
        assert_eq!(n, 1);
        assert_eq!(seen, vec![vec![1, 2]]);
        log.flush();
        let n = tr.drain(|r| seen.push(r.to_vec())).unwrap();
        assert_eq!(n, 1);
        assert_eq!(seen[1], vec![3, 4]);
        // Space reclaimed for the producer.
        assert_eq!(log.free_words(), 256);
    }

    #[test]
    fn drain_incremental_frees_space_during_the_pass() {
        let (_env, mut log) = setup(256);
        let tr = log.truncator(_env.regions.pmem_handle());
        for i in 0..8u64 {
            log.append(&[i, i + 1]).unwrap();
        }
        log.flush();
        let backlog_at_start = tr.backlog_words();
        assert!(backlog_at_start > 0);
        // With step=1 the head must advance after every record, so the
        // backlog seen from inside the callback strictly shrinks: a
        // producer blocked on Full would observe freed space mid-pass.
        let mut backlogs = Vec::new();
        let n = tr
            .drain_incremental(1, |_| backlogs.push(tr.backlog_words()))
            .unwrap();
        assert_eq!(n, 8);
        // The callback for record k runs before record k's truncation, so
        // the first observation equals the full backlog and each later one
        // is strictly smaller than its predecessor.
        assert_eq!(backlogs[0], backlog_at_start);
        for w in backlogs.windows(2) {
            assert!(w[1] < w[0], "backlog must shrink mid-pass: {backlogs:?}");
        }
        assert_eq!(tr.backlog_words(), 0);
        assert_eq!(log.free_words(), 256);
    }

    #[test]
    fn drain_incremental_step_counts_truncation_fences() {
        let (env, mut log) = setup(512);
        let tr = log.truncator(env.regions.pmem_handle());
        for i in 0..9u64 {
            log.append(&[i]).unwrap();
        }
        log.flush();
        let before = env.sim.stats().fences;
        let n = tr.drain_incremental(4, |_| {}).unwrap();
        assert_eq!(n, 9);
        // 9 records at step 4: truncations after records 4 and 8, plus the
        // final catch-up truncation — one fence each.
        assert_eq!(env.sim.stats().fences - before, 3);
        assert_eq!(log.free_words(), 512);
    }

    #[test]
    fn producer_watermark_truncation_is_single_fence() {
        let (env, mut log) = setup(256);
        log.append(&[1, 2, 3]).unwrap();
        log.append(&[4, 5]).unwrap();
        log.flush();
        let wm = log.tail_pos();
        log.append(&[6]).unwrap();
        log.flush();
        let before = env.sim.stats().fences;
        log.truncate_to_watermark(wm);
        assert_eq!(
            env.sim.stats().fences - before,
            1,
            "watermark truncation must cost exactly one fence"
        );
        // Only the record past the watermark survives.
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert_eq!(records, vec![vec![6]]);
    }

    #[test]
    fn watermark_at_or_below_head_is_free_noop() {
        let (env, mut log) = setup(256);
        log.append(&[7, 8]).unwrap();
        log.flush();
        log.truncate_to_watermark(log.tail_pos());
        let before = env.sim.stats().fences;
        let stores = env.sim.stats().wtstore_words;
        log.truncate_to_watermark(0);
        log.truncate_to_watermark(log.tail_pos());
        assert_eq!(env.sim.stats().fences, before);
        assert_eq!(env.sim.stats().wtstore_words, stores);
    }

    #[test]
    fn checkpoint_truncates_to_durable_watermark_only() {
        let (env, mut log) = setup(256);
        let ckpt = log.truncator(env.regions.pmem_handle());
        log.append(&[1, 2, 3]).unwrap();
        log.flush();
        log.publish_durable_watermark();
        // A later record is fenced but its data is NOT yet declared
        // durable: the checkpointer must leave it alone.
        log.append(&[4, 5]).unwrap();
        log.flush();
        let reclaimed = ckpt.truncate_to_durable_watermark();
        assert!(reclaimed > 0);
        assert!(log.len_words() > 0, "unprotected record must survive");
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert_eq!(
            records,
            vec![vec![4, 5]],
            "only the post-watermark record remains"
        );
    }

    #[test]
    fn checkpoint_with_no_new_watermark_is_free_noop() {
        let (env, mut log) = setup(256);
        let ckpt = log.truncator(env.regions.pmem_handle());
        log.append(&[9]).unwrap();
        log.flush();
        log.publish_durable_watermark();
        assert!(ckpt.truncate_to_durable_watermark() > 0);
        let fences = env.sim.stats().fences;
        let stores = env.sim.stats().wtstore_words;
        // Nothing new below the watermark: both repeats are free.
        assert_eq!(ckpt.truncate_to_durable_watermark(), 0);
        assert_eq!(ckpt.truncate_to_durable_watermark(), 0);
        assert_eq!(env.sim.stats().fences, fences);
        assert_eq!(env.sim.stats().wtstore_words, stores);
    }

    #[test]
    fn checkpointer_races_producer_truncation_safely() {
        let (env, mut log) = setup(128);
        let ckpt = log.truncator(env.regions.pmem_handle());
        let total = 300u64;
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        // Background checkpointer hammers the durable watermark while the
        // producer appends, publishes, and occasionally truncates inline —
        // the two truncators must serialize and the head stay monotonic.
        let consumer = std::thread::spawn(move || {
            let mut reclaimed = 0u64;
            while !stop2.load(Ordering::Acquire) {
                reclaimed += ckpt.truncate_to_durable_watermark();
                std::thread::yield_now();
            }
            reclaimed + ckpt.truncate_to_durable_watermark()
        });
        for i in 0..total {
            loop {
                match log.append(&[i, i ^ 0xff]) {
                    Ok(()) => break,
                    Err(LogError::Full { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("{e}"),
                }
            }
            log.flush();
            log.publish_durable_watermark();
            if i % 17 == 0 {
                log.truncate_to_watermark(log.tail_pos());
            }
        }
        stop.store(true, Ordering::Release);
        consumer.join().unwrap();
        // Everything published durable was (eventually) reclaimable.
        assert_eq!(log.free_words(), 128);
        env.sim.crash(CrashPolicy::DropAll);
        let (_log, records) = recover(&env);
        assert!(records.is_empty(), "all records were checkpointed");
    }

    #[test]
    fn async_truncation_across_threads() {
        let (env, mut log) = setup(128);
        let tr = log.truncator(env.regions.pmem_handle());
        let total = 200u64;
        let consumer = std::thread::spawn(move || {
            let mut sum = 0u64;
            let mut seen = 0u64;
            while seen < total {
                seen += tr.drain(|r| sum += r[0]).unwrap() as u64;
                std::thread::yield_now();
            }
            sum
        });
        let mut expect = 0u64;
        for i in 0..total {
            loop {
                match log.append(&[i, i, i]) {
                    Ok(()) => break,
                    Err(LogError::Full { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("{e}"),
                }
            }
            log.flush();
            expect += i;
        }
        assert_eq!(consumer.join().unwrap(), expect);
    }

    #[test]
    fn payload_bit_flip_yields_typed_corruption_error() {
        let (env, mut log) = setup(256);
        log.append(&[5, 6, 7]).unwrap();
        log.flush();
        // Flip a *payload* bit (not the torn bit) of a durable record: the
        // torn-bit scan still accepts the word, so only the checksum can
        // catch it.
        let pmem = env.regions.pmem_handle();
        let addr = env.log_base.add(LOG_HEADER_BYTES + 2 * 8);
        let w = pmem.read_u64(addr);
        pmem.store_u64(addr, w ^ 1);
        pmem.flush(addr);
        pmem.fence();
        env.sim.crash(mnemosyne_scm::CrashPolicy::DropAll);
        match TornbitLog::recover(env.regions.pmem_handle(), env.log_base) {
            Err(LogError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "unexpected detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_capacity_in_header_is_typed_not_panic() {
        let (env, mut log) = setup(64);
        log.append(&[1]).unwrap();
        log.flush();
        let pmem = env.regions.pmem_handle();
        // Overwrite the capacity header word with garbage far beyond the
        // mapped region.
        pmem.store_u64(env.log_base.add(8), 1 << 30);
        pmem.flush(env.log_base.add(8));
        pmem.fence();
        env.sim.crash(mnemosyne_scm::CrashPolicy::DropAll);
        assert!(matches!(
            TornbitLog::recover(env.regions.pmem_handle(), env.log_base),
            Err(LogError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncator_poisons_log_on_corrupt_record() {
        let (env, mut log) = setup(256);
        let tr = log.truncator(env.regions.pmem_handle());
        log.append(&[11, 22, 33]).unwrap();
        log.flush();
        // Corrupt a payload word of the fenced record in place.
        let pmem = env.regions.pmem_handle();
        let addr = env.log_base.add(LOG_HEADER_BYTES + 2 * 8);
        let w = pmem.read_u64(addr);
        pmem.store_u64(addr, w ^ (1 << 17));
        pmem.flush(addr);
        pmem.fence();
        assert!(matches!(tr.drain(|_| {}), Err(LogError::Corrupt { .. })));
        // The producer must now get a typed error instead of spinning on
        // Full forever.
        assert!(matches!(log.append(&[1]), Err(LogError::Corrupt { .. })));
    }

    #[test]
    fn recover_rejects_wrong_magic() {
        let (env, _log) = setup(64);
        let pmem = env.regions.pmem_handle();
        pmem.store_u64(env.log_base, 0x1234);
        pmem.flush(env.log_base);
        pmem.fence();
        assert!(matches!(
            TornbitLog::recover(env.regions.pmem_handle(), env.log_base),
            Err(LogError::BadHeader)
        ));
    }
}
