//! RAWL — the raw word log (§4.4 of the Mnemosyne paper).
//!
//! A RAWL logs uninterpreted word-size values into a fixed-size
//! single-producer/single-consumer Lamport circular buffer, written with
//! streaming stores. Two implementations are provided:
//!
//! * [`TornbitLog`] — the paper's novel design: every 64-bit log word
//!   reserves one **torn bit** whose sense flips on each pass over the
//!   buffer, so an append is made atomic with a *single* fence (Figure 2);
//! * [`CommitRecordLog`] — the conventional baseline: payload, fence,
//!   commit record, second fence. Table 6 compares the two.
//!
//! Appends (`log_append`) queue streaming stores and guarantee nothing;
//! [`TornbitLog::flush`] (`log_flush`) issues the fence that makes all
//! prior appends durable. Truncation can be synchronous (producer-side
//! [`TornbitLog::truncate_all`]) or asynchronous via a [`LogTruncator`]
//! drained from another thread, exactly the three usage patterns of §4.4.
//!
//! # Example
//!
//! ```
//! use mnemosyne_scm::{ScmSim, ScmConfig};
//! use mnemosyne_region::{RegionManager, Regions};
//! use mnemosyne_rawl::TornbitLog;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("rawl-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir)?;
//! let sim = ScmSim::new(ScmConfig::for_testing(8 << 20));
//! let mgr = RegionManager::boot(&sim, &dir)?;
//! let (regions, pmem) = Regions::open(&mgr, 1 << 16)?;
//! let r = regions.pmap("log", 64 * 1024, &pmem)?;
//!
//! let mut log = TornbitLog::create(pmem, r.addr, 4096)?;
//! log.append(&[0xcafe, 0xf00d])?;
//! log.flush(); // one fence: the append is now atomic and durable
//!
//! // Simulate a failure: only what reached the media survives. Recovery
//! // scans the torn bits and returns every durably appended record.
//! sim.crash(mnemosyne_scm::CrashPolicy::DropAll);
//! let (log, records) = TornbitLog::recover(regions.pmem_handle(), r.addr)?;
//! assert_eq!(records, vec![vec![0xcafe, 0xf00d]]);
//! assert_eq!(log.records_appended(), 0); // fresh producer handle
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod commit_log;
pub mod error;
mod metrics;
pub mod multi;
pub mod shared;
pub mod tornbit;
pub mod tornbit_log;

pub use commit_log::CommitRecordLog;
pub use error::LogError;
pub use multi::{recover_all, RecoveredLog};
pub use shared::LOG_HEADER_BYTES;
pub use tornbit_log::{LogTruncator, TornbitLog};
