//! Parallel recovery of a set of tornbit RAWLs.
//!
//! A subsystem that shards its durable state over N logs (one
//! single-producer log per shard, as the sharded persistent heap does)
//! must replay all N on reboot. The logs are independent — disjoint
//! buffers, one producer each — so their recovery scans can run
//! concurrently; [`recover_all`] spawns one thread per log and returns the
//! results in input order.
//!
//! Threads are joined individually (not via [`std::thread::scope`], which
//! replaces child panic payloads with its own): if a worker unwinds — in
//! particular with the SCM simulator's `CrashRequested` payload during a
//! fault-injection sweep — the original payload is re-raised on the
//! calling thread so crash classification in the sweep harness still
//! works.

use mnemosyne_region::{PMem, VAddr};

use crate::error::LogError;
use crate::tornbit_log::TornbitLog;

/// What recovering one log yields: the producer handle plus the durably
/// appended records, exactly as [`TornbitLog::recover`] returns them.
pub type RecoveredLog = (TornbitLog, Vec<Vec<u64>>);

/// Recovers every log in `parts` (a `(pmem, base)` pair per log)
/// concurrently, one thread per log. The result vector is in the same
/// order as `parts`; each entry is the recovered producer handle plus the
/// durably appended records, exactly as [`TornbitLog::recover`] returns
/// them.
///
/// Each log needs its own [`PMem`] because handles are per-thread.
///
/// # Errors
/// The first [`LogError`] in input order, if any log's header or contents
/// are damaged. All workers are joined before the error is returned.
///
/// # Panics
/// Re-raises a worker's panic payload on the calling thread (preserving
/// e.g. a simulated-crash payload).
pub fn recover_all(parts: Vec<(PMem, VAddr)>) -> Result<Vec<RecoveredLog>, LogError> {
    let handles: Vec<_> = parts
        .into_iter()
        .map(|(pmem, base)| std::thread::spawn(move || TornbitLog::recover(pmem, base)))
        .collect();
    // Join everything first so no worker outlives this call, then surface
    // panics before errors (a simulated crash trumps a corrupt log).
    let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
    let mut out = Vec::with_capacity(joined.len());
    for r in joined {
        match r {
            Ok(res) => out.push(res?),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::LOG_HEADER_BYTES;
    use mnemosyne_region::{RegionManager, Regions};
    use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};

    fn setup(nlogs: usize) -> (ScmSim, Regions, Vec<VAddr>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "rawl-multi-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(8 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let (regions, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let bases: Vec<VAddr> = (0..nlogs)
            .map(|i| {
                regions
                    .pmap(&format!("log{i}"), LOG_HEADER_BYTES + 256 * 8, &pmem)
                    .unwrap()
                    .addr
            })
            .collect();
        (sim, regions, bases, dir)
    }

    #[test]
    fn recovers_many_logs_in_input_order() {
        let (sim, regions, bases, dir) = setup(4);
        for (i, &base) in bases.iter().enumerate() {
            let mut log = TornbitLog::create(regions.pmem_handle(), base, 256).unwrap();
            log.append(&[i as u64 * 100, i as u64 * 100 + 1]).unwrap();
            log.flush();
        }
        sim.crash(CrashPolicy::DropAll);
        let parts = bases.iter().map(|&b| (regions.pmem_handle(), b)).collect();
        let recovered = recover_all(parts).unwrap();
        assert_eq!(recovered.len(), 4);
        for (i, (_log, records)) in recovered.iter().enumerate() {
            assert_eq!(records, &vec![vec![i as u64 * 100, i as u64 * 100 + 1]]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_or_create_round_trip() {
        let (sim, regions, bases, dir) = setup(1);
        let (mut log, records) =
            TornbitLog::open_or_create(regions.pmem_handle(), bases[0], 256).unwrap();
        assert!(records.is_empty(), "fresh log has no records");
        log.append(&[7, 8, 9]).unwrap();
        log.flush();
        sim.crash(CrashPolicy::DropAll);
        let (_log, records) =
            TornbitLog::open_or_create(regions.pmem_handle(), bases[0], 256).unwrap();
        assert_eq!(records, vec![vec![7, 8, 9]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_in_one_log_is_reported() {
        let (sim, regions, bases, dir) = setup(2);
        for &base in &bases {
            let mut log = TornbitLog::create(regions.pmem_handle(), base, 256).unwrap();
            log.append(&[1]).unwrap();
            log.flush();
        }
        // Smash the second log's magic.
        let pmem = regions.pmem_handle();
        pmem.store_u64(bases[1], 0xdead);
        pmem.flush(bases[1]);
        pmem.fence();
        sim.crash(CrashPolicy::DropAll);
        let parts = bases.iter().map(|&b| (regions.pmem_handle(), b)).collect();
        assert!(matches!(recover_all(parts), Err(LogError::BadHeader)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
