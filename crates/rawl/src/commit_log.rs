//! Baseline RAWL using commit records and two fences per append.
//!
//! This is the conventional file-system/database solution to torn writes
//! that §4.4 describes: "write the data, wait for the data writes to
//! complete with a fence, then write a commit record, and wait for the
//! commit record to complete with a fence". Table 6 measures it against
//! the tornbit log; §6.3.1 finds the tornbit log up to 100% faster below
//! 2 KB records and slower above (bit manipulation scales with data, the
//! extra fence is constant).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mnemosyne_region::{PMem, VAddr};

use crate::error::LogError;
use crate::metrics::LogMetrics;
use crate::shared::{LogShared, COMMIT_MAGIC};
use crate::tornbit::record_checksum;

/// Tag mixed with the stream position to form a commit word; including the
/// position keeps a stale commit word from a previous pass from validating
/// a new record.
const COMMIT_TAG: u64 = 0xc0a1_77ed_5ea1_ed00;

#[inline]
fn commit_word(pos: u64) -> u64 {
    COMMIT_TAG ^ pos
}

/// A commit-record log. Records are stored unpacked (full 64-bit payload
/// words), followed by a checksum word and one commit word; each append
/// costs two fences. The commit word proves the append completed; the
/// checksum proves the payload was not damaged afterwards (a committed
/// record failing its checksum is media corruption, reported as a typed
/// error rather than replayed).
pub struct CommitRecordLog {
    shared: Arc<LogShared>,
    pmem: PMem,
    records_appended: u64,
    metrics: LogMetrics,
}

impl std::fmt::Debug for CommitRecordLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitRecordLog")
            .field("capacity", &self.shared.capacity)
            .field("len_words", &self.len_words())
            .finish()
    }
}

impl CommitRecordLog {
    /// Creates a fresh commit-record log at `base` with `capacity_words`
    /// buffer words.
    ///
    /// # Errors
    /// Fails if the capacity is invalid.
    ///
    /// # Panics
    /// Panics if the region at `base` is unmapped or too small.
    pub fn create(
        pmem: PMem,
        base: VAddr,
        capacity_words: u64,
    ) -> Result<CommitRecordLog, LogError> {
        LogShared::validate_capacity(capacity_words)?;
        for i in 0..capacity_words {
            pmem.wtstore_u64(base.add(crate::shared::LOG_HEADER_BYTES + i * 8), 0);
        }
        pmem.fence();
        LogShared::write_header(&pmem, base, COMMIT_MAGIC, capacity_words);
        let metrics = LogMetrics::commit_record(pmem.telemetry());
        Ok(CommitRecordLog {
            shared: Arc::new(LogShared::new(base, capacity_words, 0)),
            pmem,
            records_appended: 0,
            metrics,
        })
    }

    /// Recovers the log after a failure: walks records from the head,
    /// accepting each only if its commit word is present and matches its
    /// position, then verifying its payload checksum. Returns the log and
    /// the recovered records.
    ///
    /// # Errors
    /// [`LogError::BadHeader`] / [`LogError::Corrupt`] if the header is
    /// damaged, and [`LogError::Corrupt`] if a *committed* record fails
    /// its checksum — the commit word proves the append finished, so an
    /// inconsistent payload can only be media corruption.
    pub fn recover(pmem: PMem, base: VAddr) -> Result<(CommitRecordLog, Vec<Vec<u64>>), LogError> {
        let metrics = LogMetrics::commit_record(pmem.telemetry());
        metrics.recoveries.inc();
        let header = LogShared::read_header(&pmem, base, COMMIT_MAGIC);
        if header.is_err() {
            metrics.corruptions.inc();
        }
        let (capacity, head) = header?;
        let shared = LogShared::new(base, capacity, head);
        let mut records = Vec::new();
        let mut p = head;
        loop {
            if head + capacity - p < 3 {
                break;
            }
            let len = pmem.read_u64(shared.word_addr(p));
            let total = match len.checked_add(3) {
                Some(t) if t <= capacity && p + t <= head + capacity => t,
                _ => break,
            };
            let cksum_pos = p + 1 + len;
            let commit_pos = cksum_pos + 1;
            if pmem.read_u64(shared.word_addr(commit_pos)) != commit_word(commit_pos) {
                break;
            }
            let mut payload = Vec::with_capacity(len as usize);
            for i in 0..len {
                payload.push(pmem.read_u64(shared.word_addr(p + 1 + i)));
            }
            if pmem.read_u64(shared.word_addr(cksum_pos)) != record_checksum(&payload) {
                metrics.corruptions.inc();
                return Err(LogError::Corrupt {
                    position: p,
                    detail: "committed record failed its checksum",
                });
            }
            records.push(payload);
            p += total;
        }
        // Sanitise the word right after the last record so a stale length
        // word cannot chain into garbage on the next recovery.
        metrics.recovered_records.add(records.len() as u64);
        let shared = Arc::new(LogShared::new(base, capacity, head));
        shared.tail.store(p, Ordering::Relaxed);
        shared.fenced.store(p, Ordering::Relaxed);
        Ok((
            CommitRecordLog {
                shared,
                pmem,
                records_appended: 0,
                metrics,
            },
            records,
        ))
    }

    /// Appends a record atomically: payload words + checksum, fence,
    /// commit word, fence (the two-fence baseline protocol).
    ///
    /// # Errors
    /// [`LogError::Full`] / [`LogError::RecordTooLarge`] as for the
    /// tornbit log.
    pub fn append(&mut self, payload: &[u64]) -> Result<(), LogError> {
        let m = payload.len() as u64 + 3;
        if m > self.shared.capacity {
            return Err(LogError::RecordTooLarge {
                needed: m,
                capacity: self.shared.capacity,
            });
        }
        let free = self.shared.free_words();
        if m > free {
            return Err(LogError::Full { needed: m, free });
        }
        let p = self.shared.tail.load(Ordering::Relaxed);
        self.pmem
            .wtstore_u64(self.shared.word_addr(p), payload.len() as u64);
        for (i, &w) in payload.iter().enumerate() {
            self.pmem
                .wtstore_u64(self.shared.word_addr(p + 1 + i as u64), w);
        }
        let cksum_pos = p + 1 + payload.len() as u64;
        self.pmem
            .wtstore_u64(self.shared.word_addr(cksum_pos), record_checksum(payload));
        self.pmem.fence(); // fence #1: data stable
        let commit_pos = cksum_pos + 1;
        self.pmem
            .wtstore_u64(self.shared.word_addr(commit_pos), commit_word(commit_pos));
        self.pmem.fence(); // fence #2: commit record stable
        let old_tail = self.shared.tail.load(Ordering::Relaxed);
        self.shared.tail.store(p + m, Ordering::Relaxed);
        self.shared.fenced.store(p + m, Ordering::Release);
        self.records_appended += 1;
        self.metrics.appends.inc();
        self.metrics.append_words.add(payload.len() as u64);
        // Both fences belong to this append; count them as one flush of
        // the record plus the wrap/occupancy accounting the tornbit log
        // also keeps.
        self.metrics.flushes.add(2);
        self.metrics
            .wraps
            .add((p + m) / self.shared.capacity - old_tail / self.shared.capacity);
        self.metrics.occupancy_hwm.record(self.len_words());
        Ok(())
    }

    /// Durably drops all records (one word write + fence).
    pub fn truncate_all(&mut self) {
        let tail = self.shared.tail.load(Ordering::Relaxed);
        self.shared.truncate_to(&self.pmem, tail);
        self.metrics.truncations.inc();
    }

    /// Words currently live.
    pub fn len_words(&self) -> u64 {
        self.shared.tail.load(Ordering::Relaxed) - self.shared.head.load(Ordering::Acquire)
    }

    /// Free words available.
    pub fn free_words(&self) -> u64 {
        self.shared.free_words()
    }

    /// Buffer capacity in words.
    pub fn capacity(&self) -> u64 {
        self.shared.capacity
    }

    /// Records appended through this handle.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne_region::{RegionManager, Regions};
    use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};
    use std::fs;
    use std::path::PathBuf;

    struct Env {
        sim: ScmSim,
        regions: Regions,
        log_base: VAddr,
        dir: PathBuf,
    }

    impl Drop for Env {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.dir).ok();
        }
    }

    fn setup(capacity_words: u64) -> (Env, CommitRecordLog) {
        let dir = std::env::temp_dir().join(format!(
            "crawl-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(8 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let (regions, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        let r = regions
            .pmap(
                "clog",
                crate::shared::LOG_HEADER_BYTES + capacity_words * 8,
                &pmem,
            )
            .unwrap();
        let log = CommitRecordLog::create(pmem, r.addr, capacity_words).unwrap();
        (
            Env {
                sim,
                regions,
                log_base: r.addr,
                dir,
            },
            log,
        )
    }

    fn recover(env: &Env) -> (CommitRecordLog, Vec<Vec<u64>>) {
        CommitRecordLog::recover(env.regions.pmem_handle(), env.log_base).unwrap()
    }

    #[test]
    fn append_is_durable_without_explicit_flush() {
        let (env, mut log) = setup(256);
        log.append(&[9, 8, 7]).unwrap();
        env.sim.crash(CrashPolicy::DropAll);
        let (_l, records) = recover(&env);
        assert_eq!(records, vec![vec![9, 8, 7]]);
    }

    #[test]
    fn two_fences_per_append() {
        let (env, mut log) = setup(256);
        let before = env.sim.stats().fences;
        log.append(&[1, 2, 3]).unwrap();
        assert_eq!(env.sim.stats().fences - before, 2);
    }

    #[test]
    fn torn_append_discarded() {
        let (env, mut log) = setup(256);
        log.append(&[1]).unwrap();
        // Hand-roll a torn append: data words without the commit word.
        let p = log.shared.tail.load(Ordering::Relaxed);
        log.pmem.wtstore_u64(log.shared.word_addr(p), 2); // len
        log.pmem.wtstore_u64(log.shared.word_addr(p + 1), 42);
        log.pmem.fence();
        // Crash before the commit word.
        env.sim.crash(CrashPolicy::DropAll);
        let (_l, records) = recover(&env);
        assert_eq!(records, vec![vec![1]]);
    }

    #[test]
    fn stale_commit_from_prior_pass_rejected() {
        let (env, mut log) = setup(32);
        // Fill a full pass worth, truncating as we go.
        for i in 0..20u64 {
            log.append(&[i; 5]).unwrap();
            log.truncate_all();
        }
        env.sim.crash(CrashPolicy::DropAll);
        let (_l, records) = recover(&env);
        assert!(
            records.is_empty(),
            "stale pass data must not be replayed: {records:?}"
        );
    }

    #[test]
    fn full_and_too_large() {
        let (_env, mut log) = setup(16);
        log.append(&[0; 10]).unwrap();
        assert!(matches!(log.append(&[0; 10]), Err(LogError::Full { .. })));
        assert!(matches!(
            log.append(&[0; 64]),
            Err(LogError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn truncate_then_recover_empty() {
        let (env, mut log) = setup(64);
        log.append(&[5; 8]).unwrap();
        log.truncate_all();
        env.sim.crash(CrashPolicy::DropAll);
        let (_l, records) = recover(&env);
        assert!(records.is_empty());
    }

    #[test]
    fn committed_record_bit_flip_is_typed_corruption() {
        let (env, mut log) = setup(256);
        log.append(&[9, 8, 7]).unwrap();
        // Flip one payload bit of the committed record: the commit word is
        // intact, so only the checksum can catch the damage.
        let addr = log.shared.word_addr(1);
        let pmem = env.regions.pmem_handle();
        let w = pmem.read_u64(addr);
        pmem.store_u64(addr, w ^ (1 << 40));
        pmem.flush(addr);
        pmem.fence();
        env.sim.crash(CrashPolicy::DropAll);
        match CommitRecordLog::recover(env.regions.pmem_handle(), env.log_base) {
            Err(LogError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "unexpected detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn many_records_in_order() {
        let (env, mut log) = setup(1024);
        for i in 0..50u64 {
            log.append(&[i, i + 1]).unwrap();
        }
        env.sim.crash(CrashPolicy::DropAll);
        let (_l, records) = recover(&env);
        assert_eq!(records.len(), 50);
        assert_eq!(records[49], vec![49, 50]);
    }
}
