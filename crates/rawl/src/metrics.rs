//! `rawl.*` telemetry registered in the owning machine's registry.

use mnemosyne_obs::{Counter, MaxGauge, Telemetry, Unit};

/// Per-log handles into the machine-wide registry. Every tornbit log of
/// one machine shares the same underlying counters (the registry is
/// keyed by name), which is what the paper's tables want: totals per
/// machine, not per log.
pub(crate) struct LogMetrics {
    /// Records appended (`log_append`).
    pub(crate) appends: Counter,
    /// Payload words appended (before torn-bit packing).
    pub(crate) append_words: Counter,
    /// `log_flush` calls (each is exactly one fence in the tornbit design).
    pub(crate) flushes: Counter,
    /// Durable truncations (synchronous or by the async truncator).
    pub(crate) truncations: Counter,
    /// Passes over the circular buffer (torn-bit sense reversals).
    pub(crate) wraps: Counter,
    /// High-water mark of live words in the buffer.
    pub(crate) occupancy_hwm: MaxGauge,
    /// Torn tails discarded by recovery (partial appends detected).
    pub(crate) torn_tails: Counter,
    /// Media corruptions detected (checksum/header failures).
    pub(crate) corruptions: Counter,
    /// Recovery scans performed.
    pub(crate) recoveries: Counter,
    /// Complete records returned by recovery scans.
    pub(crate) recovered_records: Counter,
}

impl LogMetrics {
    pub(crate) fn tornbit(telemetry: &Telemetry) -> LogMetrics {
        LogMetrics {
            appends: telemetry.counter("rawl.appends", Unit::Count),
            append_words: telemetry.counter("rawl.append_words", Unit::Words),
            flushes: telemetry.counter("rawl.flushes", Unit::Count),
            truncations: telemetry.counter("rawl.truncations", Unit::Count),
            wraps: telemetry.counter("rawl.wraps", Unit::Count),
            occupancy_hwm: telemetry.max_gauge("rawl.occupancy_hwm_words", Unit::Words),
            torn_tails: telemetry.counter("rawl.torn_tails", Unit::Count),
            corruptions: telemetry.counter("rawl.corruptions", Unit::Count),
            recoveries: telemetry.counter("rawl.recoveries", Unit::Count),
            recovered_records: telemetry.counter("rawl.recovered_records", Unit::Count),
        }
    }

    /// The commit-record baseline gets its own namespace so Table 6's
    /// tornbit-vs-baseline comparison falls straight out of one snapshot.
    pub(crate) fn commit_record(telemetry: &Telemetry) -> LogMetrics {
        LogMetrics {
            appends: telemetry.counter("rawl.cr.appends", Unit::Count),
            append_words: telemetry.counter("rawl.cr.append_words", Unit::Words),
            flushes: telemetry.counter("rawl.cr.flushes", Unit::Count),
            truncations: telemetry.counter("rawl.cr.truncations", Unit::Count),
            wraps: telemetry.counter("rawl.cr.wraps", Unit::Count),
            occupancy_hwm: telemetry.max_gauge("rawl.cr.occupancy_hwm_words", Unit::Words),
            torn_tails: telemetry.counter("rawl.cr.torn_tails", Unit::Count),
            corruptions: telemetry.counter("rawl.cr.corruptions", Unit::Count),
            recoveries: telemetry.counter("rawl.cr.recoveries", Unit::Count),
            recovered_records: telemetry.counter("rawl.cr.recovered_records", Unit::Count),
        }
    }
}
