//! Experiment harness regenerating every table and figure of §6 of the
//! Mnemosyne paper.
//!
//! Each experiment lives in [`exp`] as a `run(scale)` function that
//! prints the same rows/series the paper reports, annotated with the
//! paper's own numbers for comparison. One binary per table/figure wraps
//! each function; `benches/repro.rs` runs the whole suite under
//! `cargo bench`.
//!
//! Absolute numbers are not expected to match the paper (different host,
//! software PCM emulation); the *shape* — who wins, by roughly what
//! factor, where crossovers fall — is what the harness validates and what
//! `EXPERIMENTS.md` records.

#![warn(missing_docs)]

pub mod exp;
pub mod gate;
pub mod util;

pub use gate::ScalingGate;
pub use util::{Scale, TestRig};
