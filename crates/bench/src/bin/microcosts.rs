//! Regenerates microcosts of the Mnemosyne paper. Pass --full (or set
//! REPRO_SCALE=full) for paper-sized runs.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    mnemosyne_bench::util::run_experiment(
        "microcosts",
        scale,
        mnemosyne_bench::exp::microcosts::run,
    );
}
