//! Regenerates fig7 of the Mnemosyne paper. Pass --full (or set
//! REPRO_SCALE=full) for paper-sized runs.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    mnemosyne_bench::util::run_experiment("fig7", scale, mnemosyne_bench::exp::fig7::run);
}
