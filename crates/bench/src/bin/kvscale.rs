//! KV-service scaling bench: acknowledged requests per virtual second
//! for a live `mnemosyned` service at 1/2/4/8 batcher workers, driven by
//! 8 pipelined loopback TCP clients. Emits `BENCH_svc.json` at the
//! repository root and the standard `target/repro/kvscale/telemetry.json`
//! sidecar.
//!
//! With `--smoke`, exits non-zero unless 4-worker batched write
//! throughput reaches at least 2× the single-worker throughput (the
//! group-commit dividend), or if the scaling ratio regressed more than
//! 10% below the `BENCH_BASELINE_DIR` baseline.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    mnemosyne_bench::util::run_experiment("kvscale", scale, mnemosyne_bench::exp::kvscale::run);
    if !smoke {
        return;
    }
    let gate = mnemosyne_bench::gate::gate_for("kvscale").expect("kvscale gate");
    if let Err(why) = gate.enforce_repo_root() {
        eprintln!("smoke FAILED: {why}");
        std::process::exit(1);
    }
    println!("smoke OK");
}
