//! Recovery SLO bench: outstanding-log bytes replayed per virtual
//! second at 1/2/4 parallel replay threads, rebooting one crash image
//! with a known redo backlog. Emits `BENCH_recovery.json` at the
//! repository root and the standard `target/repro/recovery/telemetry.json`
//! sidecar.
//!
//! With `--smoke`, exits non-zero unless 4-thread replay reaches at
//! least 2× the single-threaded recovery rate, or if the scaling ratio
//! regressed more than 10% below the `BENCH_BASELINE_DIR` baseline.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    mnemosyne_bench::util::run_experiment("recovery", scale, mnemosyne_bench::exp::recovery::run);
    if !smoke {
        return;
    }
    let gate = mnemosyne_bench::gate::gate_for("recovery").expect("recovery gate");
    if let Err(why) = gate.enforce_repo_root() {
        eprintln!("smoke FAILED: {why}");
        std::process::exit(1);
    }
    println!("smoke OK");
}
