//! Transaction scaling bench: durable-transaction commit throughput at
//! 1/2/4/8 threads over disjoint and contended working sets, in the
//! emulator's virtual time domain. Emits `BENCH_mtm.json` at the
//! repository root and the standard `target/repro/txscale/telemetry.json`
//! sidecar.
//!
//! With `--smoke`, exits non-zero if 4-thread disjoint commit throughput
//! drops below single-thread throughput — the anti-regression gate CI
//! runs over the commit pipeline.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    mnemosyne_bench::util::run_experiment("txscale", scale, mnemosyne_bench::exp::txscale::run);
    if !smoke {
        return;
    }
    // Re-read the just-written datapoints and gate on them, so the smoke
    // check exercises exactly what trajectory tooling will consume.
    let path = mnemosyne_bench::exp::txscale::bench_json_path();
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("smoke: cannot read {}: {e}", path.display()));
    let v = mnemosyne_scm::obs::parse_json(&json).expect("smoke: BENCH_mtm.json must parse");
    let obj = v.as_obj().expect("smoke: top-level object");
    let points = obj["disjoint"].as_arr().expect("smoke: disjoint array");
    let field = |p: &mnemosyne_scm::obs::JsonValue, k: &str| {
        p.as_obj().and_then(|o| o.get(k)).and_then(|x| x.as_u64())
    };
    let at = |n: u64| {
        points
            .iter()
            .find(|p| field(p, "threads") == Some(n))
            .and_then(|p| field(p, "tx_per_vsec"))
            .unwrap_or_else(|| panic!("smoke: {n}-thread point"))
    };
    let (single, four) = (at(1), at(4));
    println!("smoke: disjoint 1-thread {single} tx/vsec, 4-thread {four} tx/vsec");
    if four < single {
        eprintln!("smoke FAILED: 4-thread disjoint throughput dropped below single-thread");
        std::process::exit(1);
    }
    println!("smoke OK");
}
