//! Transaction scaling bench: durable-transaction commit throughput at
//! 1/2/4/8 threads over disjoint and contended working sets, in the
//! emulator's virtual time domain. Emits `BENCH_mtm.json` at the
//! repository root and the standard `target/repro/txscale/telemetry.json`
//! sidecar.
//!
//! With `--smoke`, exits non-zero if 4-thread disjoint commit throughput
//! drops below single-thread throughput, or if the scaling ratio
//! regressed more than 10% below the `BENCH_BASELINE_DIR` baseline — the
//! anti-regression gate CI runs over the commit pipeline.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    mnemosyne_bench::util::run_experiment("txscale", scale, mnemosyne_bench::exp::txscale::run);
    if !smoke {
        return;
    }
    let gate = mnemosyne_bench::gate::gate_for("txscale").expect("txscale gate");
    if let Err(why) = gate.enforce_repo_root() {
        eprintln!("smoke FAILED: {why}");
        std::process::exit(1);
    }
    println!("smoke OK");
}
