//! Allocator scaling bench: sharded-heap `pmalloc`/`pfree` throughput at
//! 1/2/4/8 threads, in the emulator's virtual time domain. Emits
//! `BENCH_pheap.json` at the repository root and the standard
//! `target/repro/allocscale/telemetry.json` sidecar.
//!
//! With `--smoke`, exits non-zero if the best multi-thread throughput
//! fails to beat the single-thread throughput, or if the scaling ratio
//! regressed more than 10% below the `BENCH_BASELINE_DIR` baseline — the
//! coarse anti-regression gate CI runs.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    mnemosyne_bench::util::run_experiment(
        "allocscale",
        scale,
        mnemosyne_bench::exp::allocscale::run,
    );
    if !smoke {
        return;
    }
    let gate = mnemosyne_bench::gate::gate_for("allocscale").expect("allocscale gate");
    if let Err(why) = gate.enforce_repo_root() {
        eprintln!("smoke FAILED: {why}");
        std::process::exit(1);
    }
    println!("smoke OK");
}
