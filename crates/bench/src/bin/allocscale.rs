//! Allocator scaling bench: sharded-heap `pmalloc`/`pfree` throughput at
//! 1/2/4/8 threads, in the emulator's virtual time domain. Emits
//! `BENCH_pheap.json` at the repository root and the standard
//! `target/repro/allocscale/telemetry.json` sidecar.
//!
//! With `--smoke`, exits non-zero if the best multi-thread throughput
//! fails to beat the single-thread throughput — the coarse anti-regression
//! gate CI runs.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    mnemosyne_bench::util::run_experiment(
        "allocscale",
        scale,
        mnemosyne_bench::exp::allocscale::run,
    );
    if !smoke {
        return;
    }
    // Re-read the just-written datapoints and gate on them, so the smoke
    // check exercises exactly what trajectory tooling will consume.
    let path = mnemosyne_bench::exp::allocscale::bench_json_path();
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("smoke: cannot read {}: {e}", path.display()));
    let v = mnemosyne_scm::obs::parse_json(&json).expect("smoke: BENCH_pheap.json must parse");
    let obj = v.as_obj().expect("smoke: top-level object");
    let points = obj["points"].as_arr().expect("smoke: points array");
    let field = |p: &mnemosyne_scm::obs::JsonValue, k: &str| {
        p.as_obj().and_then(|o| o.get(k)).and_then(|x| x.as_u64())
    };
    let single = points
        .iter()
        .find(|p| field(p, "threads") == Some(1))
        .and_then(|p| field(p, "ops_per_vsec"))
        .expect("smoke: 1-thread point");
    let multi = points
        .iter()
        .filter(|p| field(p, "threads").unwrap_or(0) > 1)
        .filter_map(|p| field(p, "ops_per_vsec"))
        .max()
        .expect("smoke: multi-thread point");
    println!("smoke: single-thread {single} ops/vsec, best multi-thread {multi} ops/vsec");
    if multi < single {
        eprintln!("smoke FAILED: multi-thread throughput dropped below single-thread");
        std::process::exit(1);
    }
    println!("smoke OK");
}
