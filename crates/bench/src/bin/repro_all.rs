//! Runs the full experiment suite: every table and figure of §6.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    mnemosyne_bench::exp::table1::run(scale);
    mnemosyne_bench::exp::table4::run(scale);
    mnemosyne_bench::exp::table5::run(scale);
    mnemosyne_bench::exp::table6::run(scale);
    mnemosyne_bench::exp::fig4::run(scale);
    mnemosyne_bench::exp::fig5::run(scale);
    mnemosyne_bench::exp::fig6::run(scale);
    mnemosyne_bench::exp::fig7::run(scale);
    mnemosyne_bench::exp::microcosts::run(scale);
    mnemosyne_bench::exp::reincarnation::run(scale);
    mnemosyne_bench::exp::reliability::run(scale);
}
