//! Runs the full experiment suite: every table and figure of §6.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    mnemosyne_bench::util::run_experiment("table1", scale, mnemosyne_bench::exp::table1::run);
    mnemosyne_bench::util::run_experiment("table4", scale, mnemosyne_bench::exp::table4::run);
    mnemosyne_bench::util::run_experiment("table5", scale, mnemosyne_bench::exp::table5::run);
    mnemosyne_bench::util::run_experiment("table6", scale, mnemosyne_bench::exp::table6::run);
    mnemosyne_bench::util::run_experiment("fig4", scale, mnemosyne_bench::exp::fig4::run);
    mnemosyne_bench::util::run_experiment("fig5", scale, mnemosyne_bench::exp::fig5::run);
    mnemosyne_bench::util::run_experiment("fig6", scale, mnemosyne_bench::exp::fig6::run);
    mnemosyne_bench::util::run_experiment("fig7", scale, mnemosyne_bench::exp::fig7::run);
    mnemosyne_bench::util::run_experiment(
        "microcosts",
        scale,
        mnemosyne_bench::exp::microcosts::run,
    );
    mnemosyne_bench::util::run_experiment(
        "reincarnation",
        scale,
        mnemosyne_bench::exp::reincarnation::run,
    );
    mnemosyne_bench::util::run_experiment(
        "reliability",
        scale,
        mnemosyne_bench::exp::reliability::run,
    );
    mnemosyne_bench::util::run_experiment(
        "allocscale",
        scale,
        mnemosyne_bench::exp::allocscale::run,
    );
    mnemosyne_bench::util::run_experiment("txscale", scale, mnemosyne_bench::exp::txscale::run);
}
