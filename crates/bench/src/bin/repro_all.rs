//! Runs the full experiment suite: every table and figure of §6, plus
//! the scaling benches and their smoke gates.
//!
//! Unlike a plain script of bench invocations, failures are *contained
//! and propagated*: each experiment runs under
//! [`mnemosyne_bench::util::run_experiment_checked`], so one panicking
//! experiment still lets the rest run, every experiment still writes its
//! telemetry sidecar, and the process exits non-zero with a per-
//! experiment pass/fail summary if anything failed. The three scaling
//! benches additionally run their `--smoke` gates (absolute scaling
//! floor + optional `BENCH_BASELINE_DIR` regression check).

use mnemosyne_bench::util::run_experiment_checked;
use mnemosyne_bench::{exp, gate, Scale};

type Experiment = (&'static str, fn(Scale));

fn main() {
    let scale = Scale::from_env();
    let suite: Vec<Experiment> = vec![
        ("table1", exp::table1::run),
        ("table4", exp::table4::run),
        ("table5", exp::table5::run),
        ("table6", exp::table6::run),
        ("fig4", exp::fig4::run),
        ("fig5", exp::fig5::run),
        ("fig6", exp::fig6::run),
        ("fig7", exp::fig7::run),
        ("microcosts", exp::microcosts::run),
        ("reincarnation", exp::reincarnation::run),
        ("reliability", exp::reliability::run),
        ("allocscale", exp::allocscale::run),
        ("txscale", exp::txscale::run),
        ("kvscale", exp::kvscale::run),
        ("recovery", exp::recovery::run),
    ];

    let mut results: Vec<(String, Result<(), String>)> = Vec::new();
    for (name, run) in suite {
        let mut outcome = run_experiment_checked(name, scale, run);
        // Scaling benches carry a smoke gate; a bench that ran but no
        // longer scales is as much a failure as one that panicked.
        if outcome.is_ok() {
            if let Some(g) = gate::gate_for(name) {
                outcome = g.enforce_repo_root();
            }
        }
        results.push((name.to_string(), outcome));
    }

    println!("\n=== repro_all summary ===");
    let mut failed = 0;
    for (name, outcome) in &results {
        match outcome {
            Ok(()) => println!("  PASS  {name}"),
            Err(why) => {
                failed += 1;
                println!("  FAIL  {name}: {why}");
            }
        }
    }
    println!(
        "{} experiments, {} passed, {failed} failed",
        results.len(),
        results.len() - failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
