//! Runs the §6.2 reliability sweep: systematic crash-point enumeration
//! plus seeded corruption injection. Pass --full (or set
//! REPRO_SCALE=full) for the 512-point sweep.

fn main() {
    let scale = mnemosyne_bench::Scale::from_env();
    mnemosyne_bench::util::run_experiment(
        "reliability",
        scale,
        mnemosyne_bench::exp::reliability::run,
    );
}
