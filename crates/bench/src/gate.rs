//! The consolidated bench smoke gate: one declarative scaling check per
//! bench, shared by the `--smoke` mode of every scaling binary and by
//! `repro_all`.
//!
//! A gate re-reads the `BENCH_*.json` the bench just wrote — so it
//! exercises exactly what trajectory tooling consumes — and enforces two
//! things:
//!
//! 1. **Absolute scaling floor.** The throughput ratio between the `hi`
//!    and `lo` thread counts must reach `min_ratio_milli` (thousandths;
//!    2000 = "at least 2×").
//! 2. **No regression vs. baseline.** When `BENCH_BASELINE_DIR` names a
//!    directory holding a previous run's JSON (CI stashes the committed
//!    repo-root copy there before the bench overwrites it), the current
//!    ratio must stay within [`BASELINE_SLACK_MILLI`] of the baseline's
//!    ratio. An absent or unparsable baseline file is skipped, not
//!    failed — first runs and schema migrations shouldn't wedge CI.

use std::path::Path;

use mnemosyne_scm::obs::{parse_json, JsonValue};

/// Tolerated fractional drop vs. the baseline ratio, in thousandths
/// (100 = a 10% regression fails the gate; scaling ratios on a shared
/// CI box genuinely wobble a few percent run to run).
pub const BASELINE_SLACK_MILLI: u64 = 100;

/// Environment variable naming the directory that holds baseline
/// `BENCH_*.json` files to compare against.
pub const BASELINE_DIR_ENV: &str = "BENCH_BASELINE_DIR";

/// A declarative scaling check over one series of one `BENCH_*.json`.
#[derive(Debug, Clone, Copy)]
pub struct ScalingGate {
    /// Bench name, for messages.
    pub bench: &'static str,
    /// File name at the repository root (also looked up in the baseline
    /// directory), e.g. `BENCH_svc.json`.
    pub json_file: &'static str,
    /// Top-level key of the points array, e.g. `"points"`.
    pub series: &'static str,
    /// Per-point key holding the swept parallelism, e.g. `"threads"`.
    pub axis_key: &'static str,
    /// Per-point key holding the throughput, e.g. `"tx_per_vsec"`.
    pub value_key: &'static str,
    /// Axis value of the denominator point (usually 1).
    pub lo: u64,
    /// Axis value of the numerator point; `None` takes the best point
    /// with axis > `lo` (the historical allocscale semantics).
    pub hi: Option<u64>,
    /// Required `hi/lo` throughput ratio in thousandths.
    pub min_ratio_milli: u64,
}

/// The gates CI runs, one per scaling bench.
pub const GATES: [ScalingGate; 4] = [
    ScalingGate {
        bench: "allocscale",
        json_file: "BENCH_pheap.json",
        series: "points",
        axis_key: "threads",
        value_key: "ops_per_vsec",
        lo: 1,
        hi: None,
        min_ratio_milli: 1000,
    },
    ScalingGate {
        bench: "txscale",
        json_file: "BENCH_mtm.json",
        series: "disjoint",
        axis_key: "threads",
        value_key: "tx_per_vsec",
        lo: 1,
        hi: Some(4),
        min_ratio_milli: 1000,
    },
    ScalingGate {
        bench: "kvscale",
        json_file: "BENCH_svc.json",
        series: "points",
        axis_key: "workers",
        value_key: "req_per_vsec",
        lo: 1,
        hi: Some(4),
        min_ratio_milli: 2000,
    },
    ScalingGate {
        bench: "recovery",
        json_file: "BENCH_recovery.json",
        series: "points",
        axis_key: "threads",
        value_key: "bytes_per_vsec",
        lo: 1,
        hi: Some(4),
        min_ratio_milli: 2000,
    },
];

/// Looks up the gate for a bench by name.
pub fn gate_for(bench: &str) -> Option<ScalingGate> {
    GATES.into_iter().find(|g| g.bench == bench)
}

/// Runs `measure` three times and returns the run with the median
/// `key`. Gated experiments compare single points, so one descheduled
/// worker thread on a loaded CI box can sink a whole run; the median of
/// three is robust to a single outlier in either direction while
/// staying honest (no best-of cherry-picking).
pub fn median_of_3<T>(mut measure: impl FnMut() -> T, key: impl Fn(&T) -> u64) -> T {
    let mut runs = vec![measure(), measure(), measure()];
    runs.sort_by_key(&key);
    runs.swap_remove(1)
}

fn field(p: &JsonValue, k: &str) -> Option<u64> {
    p.as_obj().and_then(|o| o.get(k)).and_then(|x| x.as_u64())
}

impl ScalingGate {
    /// Extracts the `hi/lo` throughput ratio (thousandths) from a bench
    /// JSON document.
    ///
    /// # Errors
    /// A description of whatever makes the document unusable (parse
    /// failure, missing series or points).
    pub fn ratio_milli(&self, json: &str) -> Result<u64, String> {
        let v = parse_json(json).map_err(|e| format!("{}: unparsable JSON: {e}", self.bench))?;
        let points = v
            .as_obj()
            .and_then(|o| o.get(self.series))
            .and_then(|s| s.as_arr())
            .ok_or_else(|| format!("{}: no '{}' array", self.bench, self.series))?;
        let at_lo = points
            .iter()
            .find(|p| field(p, self.axis_key) == Some(self.lo))
            .and_then(|p| field(p, self.value_key))
            .ok_or_else(|| format!("{}: no {}={} point", self.bench, self.axis_key, self.lo))?
            .max(1);
        let at_hi = match self.hi {
            Some(hi) => points
                .iter()
                .find(|p| field(p, self.axis_key) == Some(hi))
                .and_then(|p| field(p, self.value_key))
                .ok_or_else(|| format!("{}: no {}={} point", self.bench, self.axis_key, hi))?,
            None => points
                .iter()
                .filter(|p| field(p, self.axis_key).unwrap_or(0) > self.lo)
                .filter_map(|p| field(p, self.value_key))
                .max()
                .ok_or_else(|| format!("{}: no {}>{} point", self.bench, self.axis_key, self.lo))?,
        };
        Ok(at_hi * 1000 / at_lo)
    }

    /// Reads the bench's JSON at `root` and enforces the scaling floor
    /// and — when `BENCH_BASELINE_DIR` provides one — the
    /// no-regression-vs-baseline check.
    ///
    /// # Errors
    /// A human-readable description of the first violated check.
    pub fn enforce(&self, root: &Path) -> Result<(), String> {
        let path = root.join(self.json_file);
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: cannot read {}: {e}", self.bench, path.display()))?;
        let ratio = self.ratio_milli(&json)?;
        let hi_label = match self.hi {
            Some(hi) => format!("{}={hi}", self.axis_key),
            None => format!("best {}>{}", self.axis_key, self.lo),
        };
        println!(
            "smoke[{}]: {hi_label} vs {}={} scaling ratio {}.{:03}x (floor {}.{:03}x)",
            self.bench,
            self.axis_key,
            self.lo,
            ratio / 1000,
            ratio % 1000,
            self.min_ratio_milli / 1000,
            self.min_ratio_milli % 1000,
        );
        if ratio < self.min_ratio_milli {
            return Err(format!(
                "{}: scaling ratio {ratio} milli below the {} floor",
                self.bench, self.min_ratio_milli
            ));
        }
        if let Some(base_dir) = std::env::var_os(BASELINE_DIR_ENV) {
            let base_path = Path::new(&base_dir).join(self.json_file);
            match std::fs::read_to_string(&base_path) {
                Ok(base_json) => match self.ratio_milli(&base_json) {
                    Ok(base_ratio) => {
                        let floor =
                            base_ratio.saturating_sub(base_ratio * BASELINE_SLACK_MILLI / 1000);
                        println!(
                            "smoke[{}]: baseline ratio {base_ratio} milli, regression floor {floor}",
                            self.bench
                        );
                        if ratio < floor {
                            return Err(format!(
                                "{}: ratio {ratio} milli regressed below baseline \
                                 {base_ratio} (floor {floor} after 10% slack)",
                                self.bench
                            ));
                        }
                    }
                    Err(why) => println!(
                        "smoke[{}]: baseline {} skipped ({why})",
                        self.bench,
                        base_path.display()
                    ),
                },
                Err(_) => println!(
                    "smoke[{}]: no baseline at {}, skipping regression check",
                    self.bench,
                    base_path.display()
                ),
            }
        }
        Ok(())
    }

    /// [`ScalingGate::enforce`] against the repository root (where the
    /// bench binaries write their JSON).
    ///
    /// # Errors
    /// See [`ScalingGate::enforce`].
    pub fn enforce_repo_root(&self) -> Result<(), String> {
        self.enforce(Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "bench": "kvscale",
      "points": [
        {"workers": 1, "req_per_vsec": 1000},
        {"workers": 2, "req_per_vsec": 1800},
        {"workers": 4, "req_per_vsec": 2600}
      ]
    }"#;

    fn kv() -> ScalingGate {
        gate_for("kvscale").unwrap()
    }

    #[test]
    fn ratio_extraction() {
        assert_eq!(kv().ratio_milli(GOOD).unwrap(), 2600);
    }

    #[test]
    fn best_multi_semantics() {
        let g = ScalingGate { hi: None, ..kv() };
        // Best point above lo is workers=4 at 2600.
        assert_eq!(g.ratio_milli(GOOD).unwrap(), 2600);
    }

    #[test]
    fn missing_series_is_an_error() {
        let g = kv();
        assert!(g.ratio_milli("{\"bench\": \"kvscale\"}").is_err());
        assert!(g.ratio_milli("not json").is_err());
        assert!(g
            .ratio_milli("{\"points\": [{\"workers\": 4, \"req_per_vsec\": 5}]}")
            .is_err());
    }

    #[test]
    fn every_gate_has_a_distinct_bench_and_file() {
        for (i, a) in GATES.iter().enumerate() {
            for b in &GATES[i + 1..] {
                assert_ne!(a.bench, b.bench);
                assert_ne!(a.json_file, b.json_file);
            }
        }
    }

    #[test]
    fn enforce_applies_floor_and_baseline() {
        let dir = std::env::temp_dir().join(format!(
            "mnemo-gate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_svc.json"), GOOD).unwrap();
        let g = kv();
        // 2.6x beats the 2.0x floor.
        assert!(g.enforce(&dir).is_ok());
        // A 3.0x floor fails it.
        let strict = ScalingGate {
            min_ratio_milli: 3000,
            ..g
        };
        assert!(strict.enforce(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
