//! Shared experiment plumbing: rigs, workloads, timing and printing.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bdbstore::{BdbStore, StoreConfig};
use mnemosyne::{EmulationMode, Mnemosyne, ScmConfig, Telemetry, Truncation};
use pcmdisk::{DiskConfig, PcmDisk, SimpleFs};

/// Experiment scale: `Quick` keeps the whole suite under a few minutes;
/// `Full` approaches the paper's iteration counts. Selected with the
/// `REPRO_SCALE=full` environment variable or a `--full` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced iteration counts (CI-friendly).
    Quick,
    /// Paper-sized runs.
    Full,
}

impl Scale {
    /// Reads the scale from `REPRO_SCALE` / argv.
    pub fn from_env() -> Scale {
        let arg_full = std::env::args().any(|a| a == "--full");
        let env_full = std::env::var("REPRO_SCALE")
            .map(|v| v == "full")
            .unwrap_or(false);
        if arg_full || env_full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Picks a count by scale.
    pub fn pick(self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// A disposable experiment rig: fresh temp directory per instantiation,
/// removed on drop.
pub struct TestRig {
    /// Backing-file directory.
    pub dir: PathBuf,
}

impl Default for TestRig {
    fn default() -> Self {
        Self::new()
    }
}

impl TestRig {
    /// Creates a fresh rig directory.
    pub fn new() -> TestRig {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mnemo-bench-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TestRig { dir }
    }

    /// Boots a Mnemosyne stack with the paper's §6.1 emulation (spin
    /// delays, `latency_ns` extra write latency, 4 GB/s).
    pub fn mnemosyne(
        &self,
        scm_mb: u64,
        latency_ns: u64,
        truncation: Truncation,
    ) -> Arc<Mnemosyne> {
        let mut config = ScmConfig::paper_default(scm_mb << 20);
        config.write_latency_ns = latency_ns;
        config.mode = EmulationMode::Spin;
        Arc::new(
            Mnemosyne::builder(&self.dir.join(format!("m{latency_ns}")))
                .scm_config(config)
                .heap_sizes(scm_mb.saturating_sub(16).max(8) << 19, scm_mb.max(8) << 19)
                .max_threads(18)
                .log_words(1 << 16)
                .truncation(truncation)
                .open()
                .expect("boot mnemosyne rig"),
        )
    }

    /// Creates a PCM-disk + SimpleFs with the §6.1 block-device model.
    pub fn pcmdisk_fs(&self, blocks: u64, latency_ns: u64) -> SimpleFs {
        let disk = Arc::new(PcmDisk::new(
            DiskConfig::paper_default(blocks).with_write_latency_ns(latency_ns),
        ));
        SimpleFs::format(disk).expect("format pcm-disk")
    }

    /// Opens a transactional Berkeley-DB-like store on a fresh PCM-disk.
    pub fn bdb(&self, blocks: u64, latency_ns: u64) -> Arc<BdbStore> {
        let fs = self.pcmdisk_fs(blocks, latency_ns);
        Arc::new(BdbStore::open(fs, "bench", StoreConfig::default()).expect("open bdb store"))
    }
}

impl Drop for TestRig {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Mean microseconds per call of `f` over `n` calls.
pub fn time_per_op_us(n: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        f(i);
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

/// Wall-clock throughput (ops/s) of `total` operations executed by
/// `threads` workers, each running `make_worker(t)() -> ops_done`.
pub fn throughput_ops_per_s(
    threads: usize,
    make_worker: impl Fn(usize) -> Box<dyn FnOnce() -> u64 + Send>,
) -> f64 {
    let start = Instant::now();
    let mut joins = Vec::new();
    for t in 0..threads {
        let w = make_worker(t);
        joins.push(std::thread::spawn(w));
    }
    let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    total as f64 / start.elapsed().as_secs_f64()
}

/// Directory experiment sidecars land in: `$REPRO_OUT`, or
/// `target/repro` relative to the working directory.
pub fn repro_out_dir() -> PathBuf {
    std::env::var_os("REPRO_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("repro"))
}

/// Runs one experiment and writes its machine-readable telemetry
/// sidecar to `<repro_out_dir>/<name>/telemetry.json`.
///
/// The sidecar holds the *delta* of the process-wide telemetry across
/// the call — crash/reboot cycles inside the experiment rebuild the
/// machine (and its registry), so per-machine snapshots would miss the
/// pre-crash half; [`Telemetry::process_snapshot`] aggregates retired
/// and live registries, and `since()` subtracts whatever earlier
/// experiments in the same process (e.g. `repro_all`) already counted.
/// See METRICS.md for the schema and every metric's meaning.
pub fn run_experiment(name: &str, scale: Scale, f: impl FnOnce(Scale)) {
    let before = Telemetry::process_snapshot();
    f(scale);
    let delta = Telemetry::process_snapshot().since(&before);
    let scale_tag = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let json = delta.to_json_with(&[("experiment", name), ("scale", scale_tag)]);
    let dir = repro_out_dir().join(name);
    let path = dir.join("telemetry.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!(
            "warning: could not write telemetry sidecar {}: {e}",
            path.display()
        );
    } else {
        println!("telemetry: {}", path.display());
    }
}

/// Like [`run_experiment`], but contains the experiment's failures
/// instead of letting them take down the whole suite: a panic inside `f`
/// is caught and reported as `Err`. The telemetry sidecar is written
/// either way — a partial sidecar is exactly what you want when
/// diagnosing the failure.
///
/// # Errors
/// The experiment's panic message.
pub fn run_experiment_checked(
    name: &str,
    scale: Scale,
    f: impl FnOnce(Scale),
) -> Result<(), String> {
    let mut result = Ok(());
    run_experiment(name, scale, |scale| {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(scale)));
        if let Err(payload) = outcome {
            let why = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            result = Err(format!("{name}: {why}"));
        }
    });
    result
}

/// Prints an experiment banner.
pub fn banner(title: &str, scale: Scale) {
    println!();
    println!("=== {title} [{:?} scale] ===", scale);
}

/// Formats a number with thousands separators.
pub fn commas(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if n < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(10, 100), 10);
        assert_eq!(Scale::Full.pick(10, 100), 100);
    }

    #[test]
    fn commas_formats() {
        assert_eq!(commas(1234567.0), "1,234,567");
        assert_eq!(commas(42.0), "42");
    }

    #[test]
    fn rig_cleans_up() {
        let dir = {
            let rig = TestRig::new();
            assert!(rig.dir.exists());
            rig.dir.clone()
        };
        assert!(!dir.exists());
    }
}
