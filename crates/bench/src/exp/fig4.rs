//! Figure 4: hashtable write latency, durable transactions vs Berkeley DB.

use mnemosyne::Truncation;

use crate::exp::hashbench::{bdb_hash, fresh_mtm_cell, mtm_hash};
use crate::util::{banner, Scale, TestRig};

/// Value sizes swept by Figures 4, 5 and 7.
pub const SIZES: [usize; 6] = [8, 64, 256, 1024, 2048, 4096];

/// Thread counts swept by Figures 4 and 5.
pub const THREADS: [usize; 3] = [1, 2, 4];

/// Paper's qualitative expectations, printed alongside.
const PAPER_NOTE: &str = "paper: MTM ~6x lower latency than BDB below 2048 B (1 thread); \
BDB lower at >2048 B; MTM latency roughly flat with threads";

/// Runs and prints Figure 4.
pub fn run(scale: Scale) {
    banner(
        "Figure 4: hashtable write latency (us), MTM vs Berkeley DB",
        scale,
    );
    println!("{PAPER_NOTE}");
    let inserts = scale.pick(300, 3000);
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "value size", "BDB-1T", "BDB-2T", "BDB-4T", "MTM-1T", "MTM-2T", "MTM-4T"
    );
    for &size in &SIZES {
        let mut row = format!("{:<12}", size);
        for &t in &THREADS {
            let rig = TestRig::new();
            let store = rig.bdb(1 << 15, 150);
            let r = bdb_hash(&store, t, size, inserts);
            row += &format!(" {:>10.1}", r.write_latency_us);
        }
        for &t in &THREADS {
            let rig = TestRig::new();
            let (m, table) = fresh_mtm_cell(&rig, 150, Truncation::Sync);
            let r = mtm_hash(&m, table, t, size, inserts);
            row += &format!(" {:>10.1}", r.write_latency_us);
        }
        println!("{row}");
    }
}
