//! Durable-transaction scaling: committed transactions per virtual
//! second vs. thread count, over disjoint and contended `pds::phash`
//! working sets.
//!
//! The mtm commit path batches work three ways (see DESIGN.md §5): the
//! redo-record append is one per-thread fence, the post-writeback data
//! fence is shared across a commit group, and log truncation is
//! amortised to the durable watermark. This experiment measures what
//! that buys at 1/2/4/8 threads and emits `BENCH_mtm.json`.
//!
//! ## Methodology: virtual-time throughput
//!
//! Same time domain as `allocscale` (see that module's header): under
//! the SCM emulator's virtual clock every persistent primitive charges
//! its modelled latency to the issuing handle. All of a transaction's
//! commit-path primitives (log append fence, data flushes, data fence,
//! truncation) are charged to the committing thread's redo-log handle,
//! and its heap operations to the owning heap shard's handle, so
//!
//! ```text
//! committed_tx / max-over-handles(busy_ns delta)
//! ```
//!
//! is the critical-path throughput an ideal parallel machine would see.
//! A commit path that serialised all threads through one handle would
//! show flat scaling; per-thread logs plus the batched fences scale it
//! with the thread count.
//!
//! ## Workloads
//!
//! * **disjoint** — each thread owns a private hash table and key range:
//!   no lock conflicts, the pure commit-path scaling limit.
//! * **contended** — one shared 4-bucket table, all threads hammering
//!   the same 16 keys: conflicts are the norm, so throughput measures
//!   the adaptive contention manager (bounded backoff + conflict-site
//!   hints) rather than raw commit bandwidth.
//!
//! Every `put`/`remove` is one durable transaction; committed counts
//! come from [`MtmRuntime::stats`], so internal conflict retries are
//! not double-counted.
//!
//! [`MtmRuntime::stats`]: mnemosyne::MtmRuntime::stats

use std::sync::{Arc, Barrier};

use mnemosyne::{Mnemosyne, ScmConfig, Truncation};
use mnemosyne_pds::PHashTable;

use crate::util::{banner, commas, Scale, TestRig};

/// Heap shards for every run (same geometry across thread counts).
const SHARDS: usize = 8;

/// Thread counts swept.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Buckets in the shared contended-mode table: deliberately few, so
/// chains collide and encounter-time conflicts are the common case.
const CONTENDED_BUCKETS: u64 = 4;

/// Shared keys the contended workload cycles over.
const CONTENDED_KEYS: u64 = 16;

/// One thread-count measurement of one workload.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Worker threads.
    pub threads: usize,
    /// Transactions committed (from `MtmStats`, excludes aborted
    /// attempts).
    pub commits: u64,
    /// Critical-path busy time: max over redo-log and heap-shard handles
    /// of accounted ns.
    pub busy_ns: u64,
    /// `commits / busy_ns` in committed transactions per virtual second.
    pub tx_per_vsec: f64,
}

fn table_name(contended: bool, t: usize) -> String {
    if contended {
        "txc".to_string()
    } else {
        format!("txd{t}")
    }
}

fn key_for(contended: bool, t: usize, i: u64) -> [u8; 8] {
    if contended {
        (i % CONTENDED_KEYS).to_le_bytes()
    } else {
        ((t as u64) << 40 | i).to_le_bytes()
    }
}

fn run_point(threads: usize, contended: bool, scale: Scale) -> Point {
    let rig = TestRig::new();
    let m = Arc::new(
        Mnemosyne::builder(&rig.dir)
            .scm_config(ScmConfig::virtual_clock(64 << 20))
            .heap_sizes(16 << 20, 8 << 20)
            .heap_shards(SHARDS)
            .max_threads(8)
            .log_words(1 << 12)
            .truncation(Truncation::Sync)
            .open()
            .expect("boot mnemosyne"),
    );
    // Create the tables up front so worker-side opens are read-only.
    {
        let mut th = m.register_thread().expect("setup slot");
        if contended {
            PHashTable::open(&m, &mut th, "txc", CONTENDED_BUCKETS).expect("create table");
        } else {
            for t in 0..threads {
                PHashTable::open(&m, &mut th, &table_name(false, t), 64).expect("create table");
            }
        }
    }

    // Contended rounds are smaller: every operation fights over 16 keys,
    // so the same wall budget covers fewer committed transactions.
    let rounds = scale.pick(3, 6);
    let batch = if contended {
        scale.pick(24, 96)
    } else {
        scale.pick(48, 160)
    };

    let slot_before = m.mtm().slot_busy_ns();
    let shard_before = m.heap().shard_busy_ns();
    let commits_before = m.mtm().stats().commits;

    let barrier = Arc::new(Barrier::new(threads));
    let mut joins = Vec::with_capacity(threads);
    for t in 0..threads {
        let m = Arc::clone(&m);
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut th = m.register_thread().expect("worker slot");
            let buckets = if contended { CONTENDED_BUCKETS } else { 64 };
            let table =
                PHashTable::open(&m, &mut th, &table_name(contended, t), buckets).expect("open");
            let value = [0xabu8; 8];
            barrier.wait();
            for _ in 0..rounds {
                for i in 0..batch {
                    let key = key_for(contended, t, i);
                    table.put(&mut th, &key, &value).expect("put");
                }
                for i in 0..batch {
                    let key = key_for(contended, t, i);
                    // In contended mode another thread may have removed
                    // the key already; the transaction still commits.
                    let _ = table.remove(&mut th, &key).expect("remove");
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let commits = m.mtm().stats().commits - commits_before;
    let slot_after = m.mtm().slot_busy_ns();
    let shard_after = m.heap().shard_busy_ns();
    let busy_ns = slot_after
        .iter()
        .zip(&slot_before)
        .chain(shard_after.iter().zip(&shard_before))
        .map(|(a, b)| a.saturating_sub(*b))
        .max()
        .unwrap_or(0)
        .max(1);
    Point {
        threads,
        commits,
        busy_ns,
        tx_per_vsec: commits as f64 * 1e9 / busy_ns as f64,
    }
}

/// Runs both sweeps; returns `(disjoint, contended)`, one [`Point`] per
/// entry of [`THREADS`].
pub fn measure(scale: Scale) -> (Vec<Point>, Vec<Point>) {
    let disjoint = THREADS
        .iter()
        .map(|&t| run_point(t, false, scale))
        .collect();
    let contended = THREADS.iter().map(|&t| run_point(t, true, scale)).collect();
    (disjoint, contended)
}

fn rows_json(points: &[Point]) -> String {
    let one = points
        .iter()
        .find(|p| p.threads == 1)
        .map(|p| p.tx_per_vsec)
        .unwrap_or(1.0);
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"threads\": {}, \"commits\": {}, \"busy_ns\": {}, \"tx_per_vsec\": {}, \"speedup_milli\": {}}}",
            p.threads,
            p.commits,
            p.busy_ns,
            p.tx_per_vsec.round() as u64,
            (p.tx_per_vsec / one * 1000.0).round() as u64
        ));
    }
    rows
}

/// Serialises both sweeps as the `BENCH_mtm.json` payload. All numbers
/// are integers (speedup in thousandths) so the repository's telemetry
/// JSON parser — which rejects floats by design — can consume the file.
pub fn to_bench_json(disjoint: &[Point], contended: &[Point]) -> String {
    format!(
        "{{\n  \"bench\": \"txscale\",\n  \"unit\": \"committed transactions per virtual second\",\n  \"heap_shards\": {SHARDS},\n  \"disjoint\": [{}\n  ],\n  \"contended\": [{}\n  ]\n}}\n",
        rows_json(disjoint),
        rows_json(contended)
    )
}

/// Repo-root path for `BENCH_mtm.json` (the bench crate lives at
/// `crates/bench`).
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mtm.json")
}

fn print_table(label: &str, points: &[Point]) {
    let one = points[0].tx_per_vsec;
    println!("{label}");
    println!("threads  commits   busy-ms(max handle)      tx/vsec  speedup");
    for p in points {
        println!(
            "{:>7} {:>8} {:>21.2} {:>12} {:>8.2}x",
            p.threads,
            p.commits,
            p.busy_ns as f64 / 1e6,
            commas(p.tx_per_vsec),
            p.tx_per_vsec / one
        );
    }
}

/// Runs the experiment, prints both tables, and writes `BENCH_mtm.json`
/// at the repository root.
pub fn run(scale: Scale) {
    banner("txscale: durable-transaction commit scaling", scale);
    let (disjoint, contended) = measure(scale);
    print_table("disjoint working sets:", &disjoint);
    println!();
    print_table("contended working set (16 shared keys):", &contended);
    let path = bench_json_path();
    match std::fs::write(&path, to_bench_json(&disjoint, &contended)) {
        Ok(()) => println!("bench json: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
