//! KV-service scaling: acknowledged requests per virtual second vs.
//! batcher worker count, for a live `mnemosyned` service driven by
//! pipelined loopback TCP clients. Emits `BENCH_svc.json`.
//!
//! ## Methodology: virtual-time throughput
//!
//! Same time domain as `allocscale`/`txscale`: under the SCM emulator's
//! virtual clock every persistent primitive charges its modelled latency
//! to the issuing handle, and
//!
//! ```text
//! acked_requests / max-over-handles(busy_ns delta)
//! ```
//!
//! is the critical-path throughput an ideal parallel machine would see.
//! The network and thread-scheduling costs of the loopback TCP path are
//! wall-clock noise the virtual domain deliberately excludes — the
//! question here is what the *durability* cost per acknowledged request
//! is, and how it scales.
//!
//! ## Why it scales
//!
//! The service batches: a worker drains up to `max_batch` queued
//! requests and commits them as ONE durable transaction, so N writes
//! share one redo-append fence; concurrent workers additionally collapse
//! their post-writeback data fences through the mtm commit groups
//! (`GroupFence`, PR 4). One worker bounds throughput by one handle's
//! serial commit stream; K workers split the same request load over K
//! redo-log handles, so the max-handle busy time — the critical path —
//! drops toward 1/K.
//!
//! Per-request latency (`svc.request_ns`, p50/p99 below) is the batch
//! commit latency in the same virtual domain: batching trades a little
//! p50 for a lot of throughput, exactly the group-commit bargain.

use std::sync::{Arc, Barrier};

use mnemosyne::{Mnemosyne, ScmConfig, Truncation};
use mnemosyne_svc::proto::{Request, Response};
use mnemosyne_svc::{Client, KvServer, KvService, SvcConfig};

use crate::util::{banner, commas, Scale, TestRig};

/// Batcher worker counts swept.
pub const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Loopback TCP client connections driving every point.
pub const CLIENTS: usize = 8;

/// Requests each client keeps in flight (pipeline window).
const WINDOW: usize = 32;

/// One worker-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Batcher workers.
    pub workers: usize,
    /// Requests acknowledged to clients.
    pub requests: u64,
    /// Critical-path busy time: max over redo-log and heap-shard handles
    /// of accounted ns.
    pub busy_ns: u64,
    /// `requests / busy_ns`, in acknowledged requests per virtual second.
    pub req_per_vsec: f64,
    /// Median per-request commit latency (virtual ns, upper bound).
    pub p50_ns: u64,
    /// Tail per-request commit latency (virtual ns, upper bound).
    pub p99_ns: u64,
    /// Mean requests coalesced per durable transaction.
    pub mean_batch: u64,
}

fn run_point(workers: usize, scale: Scale) -> Point {
    let rig = TestRig::new();
    let m = Mnemosyne::builder(&rig.dir)
        .scm_config(ScmConfig::virtual_clock(64 << 20))
        .heap_sizes(16 << 20, 8 << 20)
        .heap_shards(8)
        .max_threads(WORKERS[WORKERS.len() - 1] + 2)
        .log_words(1 << 12)
        .truncation(Truncation::Sync)
        .open()
        .expect("boot mnemosyne");
    let svc = KvService::start(
        &m,
        SvcConfig {
            workers,
            max_batch: 64,
            // Run with the background checkpointer on: the gate then
            // doubles as the "throughput holds while a checkpoint runs
            // concurrently" acceptance check.
            ckpt_interval: std::time::Duration::from_millis(5),
            ..SvcConfig::default()
        },
    )
    .expect("start kv service");
    let server = KvServer::bind(svc.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let per_client = scale.pick(192, 1536);

    let snap_before = m.telemetry().snapshot();
    let slot_before = m.mtm().slot_busy_ns();
    let shard_before = m.heap().shard_busy_ns();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let joins: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                barrier.wait();
                let (mut sent, mut acked) = (0u64, 0u64);
                while acked < per_client {
                    while sent < per_client && sent - acked < WINDOW as u64 {
                        let mut key = vec![b'k', t as u8];
                        key.extend_from_slice(&sent.to_le_bytes());
                        c.send(&Request::Put(key, vec![0xab; 16])).expect("send");
                        sent += 1;
                    }
                    match c.recv().expect("recv") {
                        Response::Ok => acked += 1,
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                acked
            })
        })
        .collect();
    let requests: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();

    let slot_after = m.mtm().slot_busy_ns();
    let shard_after = m.heap().shard_busy_ns();
    let busy_ns = slot_after
        .iter()
        .zip(&slot_before)
        .chain(shard_after.iter().zip(&shard_before))
        .map(|(a, b)| a.saturating_sub(*b))
        .max()
        .unwrap_or(0)
        .max(1);
    let delta = m.telemetry().snapshot().since(&snap_before);
    let lat = delta
        .histogram("svc.request_ns")
        .expect("svc.request_ns histogram");
    let batch = delta
        .histogram("svc.batch_size")
        .expect("svc.batch_size histogram");
    server.stop();
    svc.stop();

    Point {
        workers,
        requests,
        busy_ns,
        req_per_vsec: requests as f64 * 1e9 / busy_ns as f64,
        p50_ns: lat.quantile_upper_bound(50),
        p99_ns: lat.quantile_upper_bound(99),
        mean_batch: batch.mean(),
    }
}

/// Runs the sweep: one [`Point`] per entry of [`WORKERS`], each the
/// median of three runs — loopback TCP scheduling makes single runs
/// (the 8-worker point especially) too noisy to gate on directly.
pub fn measure(scale: Scale) -> Vec<Point> {
    WORKERS
        .iter()
        .map(|&w| crate::gate::median_of_3(|| run_point(w, scale), |p| p.req_per_vsec as u64))
        .collect()
}

/// Serialises the sweep as the `BENCH_svc.json` payload. All numbers are
/// integers (speedup in thousandths) so the repository's telemetry JSON
/// parser — which rejects floats by design — can consume the file.
pub fn to_bench_json(points: &[Point]) -> String {
    let one = points
        .iter()
        .find(|p| p.workers == 1)
        .map(|p| p.req_per_vsec)
        .unwrap_or(1.0);
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"workers\": {}, \"requests\": {}, \"busy_ns\": {}, \"req_per_vsec\": {}, \"speedup_milli\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"mean_batch\": {}}}",
            p.workers,
            p.requests,
            p.busy_ns,
            p.req_per_vsec.round() as u64,
            (p.req_per_vsec / one * 1000.0).round() as u64,
            p.p50_ns,
            p.p99_ns,
            p.mean_batch
        ));
    }
    format!(
        "{{\n  \"bench\": \"kvscale\",\n  \"unit\": \"acknowledged requests per virtual second\",\n  \"clients\": {CLIENTS},\n  \"points\": [{rows}\n  ]\n}}\n"
    )
}

/// Repo-root path for `BENCH_svc.json` (the bench crate lives at
/// `crates/bench`).
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_svc.json")
}

fn print_table(points: &[Point]) {
    let one = points[0].req_per_vsec;
    println!("workers requests  busy-ms(max handle)     req/vsec  speedup  p50-us  p99-us  batch");
    for p in points {
        println!(
            "{:>7} {:>8} {:>20.2} {:>12} {:>7.2}x {:>7.1} {:>7.1} {:>6}",
            p.workers,
            p.requests,
            p.busy_ns as f64 / 1e6,
            commas(p.req_per_vsec),
            p.req_per_vsec / one,
            p.p50_ns as f64 / 1e3,
            p.p99_ns as f64 / 1e3,
            p.mean_batch
        );
    }
}

/// Runs the experiment, prints the table, and writes `BENCH_svc.json` at
/// the repository root.
pub fn run(scale: Scale) {
    banner(
        "kvscale: mnemosyned group-commit serving scaling (8 pipelined clients)",
        scale,
    );
    let points = measure(scale);
    print_table(&points);
    let path = bench_json_path();
    match std::fs::write(&path, to_bench_json(&points)) {
        Ok(()) => println!("bench json: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
