//! Table 5: red-black tree updates vs Boost-style serialization.

use mnemosyne::Truncation;
use mnemosyne_pds::rbtree::PRbTree;
use mnemosyne_pds::serial::VolatileTree;

use crate::util::{banner, commas, Scale, TestRig};

const PAPER_NOTE: &str = "paper: inserts 4.7-5.8 us; serialising 1K/8K/64K/256K nodes costs \
517 us / 3.4 ms / 34 ms / 144 ms — 189 to 24,788 inserts per serialization";

/// Runs and prints Table 5.
pub fn run(scale: Scale) {
    banner(
        "Table 5: Mnemosyne red-black-tree inserts vs Boost-style serialization",
        scale,
    );
    println!("{PAPER_NOTE}");
    let sizes: &[u64] = match scale {
        Scale::Quick => &[1_000, 8_000],
        Scale::Full => &[1_000, 8_000, 64_000, 256_000],
    };
    println!(
        "{:<10} {:>14} {:>16} {:>18}",
        "tree size", "insert (us)", "serialize (us)", "inserts/serialize"
    );
    for &size in sizes {
        // Persistent tree: measure insert latency at this tree size.
        let rig = TestRig::new();
        let m = rig.mnemosyne(192, 150, Truncation::Sync);
        let tree = PRbTree::open(&m, "t5").expect("open tree");
        let mut th = m.register_thread().expect("thread");
        let payload = [0x42u8; 88];
        let warm = size.saturating_sub(1000);
        for i in 0..warm {
            tree.insert(&mut th, i, &payload).expect("insert");
        }
        let t0 = std::time::Instant::now();
        for i in warm..size {
            tree.insert(&mut th, i, &payload).expect("insert");
        }
        let insert_us = t0.elapsed().as_secs_f64() * 1e6 / (size - warm) as f64;
        drop(th);
        drop(m);

        // Volatile tree + archive to PCM-disk.
        let fs = rig.pcmdisk_fs((size * 192 / 4096 + 4096).next_power_of_two(), 150);
        let mut vt = VolatileTree::new();
        for i in 0..size {
            vt.insert(i, payload.to_vec());
        }
        let t0 = std::time::Instant::now();
        vt.archive(&fs, "tree.arc").expect("archive");
        let ser_us = t0.elapsed().as_secs_f64() * 1e6;

        println!(
            "{:<10} {:>14.1} {:>16.0} {:>18}",
            commas(size as f64),
            insert_us,
            ser_us,
            commas(ser_us / insert_us)
        );
    }
}
