//! Recovery SLO: how fast a reboot replays an outstanding redo-log
//! backlog, and how that speeds up with parallel replay threads. Emits
//! `BENCH_recovery.json`.
//!
//! ## Methodology
//!
//! One machine builds a known backlog: four producer threads commit
//! write transactions with `sync_truncate_pct(90)`, so committed records
//! linger in the per-thread logs instead of being truncated per commit.
//! The machine is then crashed with `CrashPolicy::DropAll` — every
//! committed-but-unflushed data line is lost, which is exactly the state
//! recovery exists for — and the *same media image* is rebooted at
//! 1/2/4 replay threads.
//!
//! Replay time comes from [`mnemosyne::RecoveryStats`] in the emulator's
//! virtual domain: the scan phase's critical path is the slowest
//! scanner's accounted time, the replay phase's the slowest replayer's.
//! The headline figure is **milliseconds per MB of outstanding log**
//! (`ms_per_mb_milli`, in thousandths) — multiply by a crash-time
//! backlog bound (which the background checkpointer enforces, see
//! `mtm.ckpt.outstanding_hwm`) and you have the recovery-time SLO.
//!
//! ## Why it scales
//!
//! Recovery is two embarrassingly parallel passes over per-thread logs:
//! scanning the logs (round-robin over replay workers) and re-applying
//! the merged write stream (partitioned by address, which preserves the
//! per-address timestamp order a serial replay would use). Both split
//! their SCM traffic across handles, so the critical path drops toward
//! `1/threads`.

use mnemosyne::{CrashPolicy, Mnemosyne, ScmConfig, Truncation};

use crate::util::{banner, commas, Scale, TestRig};

/// Replay thread counts swept over the same crash image.
pub const THREADS: [usize; 3] = [1, 2, 4];

/// Producer threads building the redo backlog (and hence log count).
const PRODUCERS: usize = 4;

/// Words each producer writes per transaction.
const WRITES_PER_TX: u64 = 8;

/// One replay-thread-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Parallel replay threads.
    pub threads: usize,
    /// Redo records replayed.
    pub replayed: u64,
    /// Outstanding log backlog scanned, in bytes.
    pub log_bytes: u64,
    /// Recovery time (scan + replay critical path), virtual ns.
    pub replay_ns: u64,
    /// Milliseconds of recovery per MB of outstanding log, thousandths.
    pub ms_per_mb_milli: u64,
    /// Backlog bytes recovered per virtual second.
    pub bytes_per_vsec: u64,
}

fn builder(dir: &std::path::Path) -> mnemosyne::MnemosyneBuilder {
    Mnemosyne::builder(dir)
        .scm_config(ScmConfig::virtual_clock(64 << 20))
        .max_threads(PRODUCERS + 2)
        .log_words(1 << 15)
        .truncation(Truncation::Sync)
        // Let committed records linger: nothing truncates below 90%
        // occupancy, so the backlog survives until the crash.
        .sync_truncate_pct(90)
}

/// Commits enough write transactions to leave a multi-log redo backlog,
/// then crashes dropping every unflushed data line. Returns the media
/// image and the backlog size in words.
fn build_backlog(dir: &std::path::Path, scale: Scale) -> (Vec<u8>, u64) {
    let m = builder(dir).open().expect("boot backlog machine");
    let txs = scale.pick(400, 1200);
    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let m = &m;
            s.spawn(move || {
                let area = m
                    .pstatic(&format!("rcv{t}"), 256 * 8)
                    .expect("pstatic area");
                let mut th = m.register_thread().expect("register producer");
                for i in 0..txs {
                    th.atomic(|tx| {
                        for w in 0..WRITES_PER_TX {
                            let off = (i * WRITES_PER_TX + w) % 256;
                            tx.write_u64(area.add(off * 8), i * WRITES_PER_TX + w)?;
                        }
                        Ok(())
                    })
                    .expect("producer commit");
                }
            });
        }
    });
    let outstanding = m.mtm().outstanding_log_words();
    assert!(outstanding > 0, "backlog machine truncated its own logs");
    let (_dir, image) = m.crash(CrashPolicy::DropAll);
    (image, outstanding)
}

fn replay_point(dir: &std::path::Path, image: &[u8], threads: usize) -> Point {
    let m = builder(dir)
        .from_image(image.to_vec())
        .recovery_threads(threads)
        .open()
        .expect("reboot from crash image");
    let rs = m.mtm().recovery_stats();
    assert!(rs.replayed > 0, "nothing to replay: backlog was lost");
    let log_bytes = rs.scanned_words * 8;
    let replay_ns = rs.replay_ns.max(1);
    drop(m);
    Point {
        threads,
        replayed: rs.replayed,
        log_bytes,
        replay_ns,
        // milli(ms/MB) = 1000 * (ns/1e6) / (bytes/2^20)
        ms_per_mb_milli: replay_ns.saturating_mul(1 << 20) / (1000 * log_bytes.max(1)),
        bytes_per_vsec: log_bytes.saturating_mul(1_000_000_000) / replay_ns,
    }
}

/// Runs the sweep: one backlog image, one [`Point`] per [`THREADS`]
/// entry rebooting that same image.
pub fn measure(scale: Scale) -> Vec<Point> {
    let rig = TestRig::new();
    let (image, _words) = build_backlog(&rig.dir, scale);
    THREADS
        .iter()
        .map(|&t| replay_point(&rig.dir, &image, t))
        .collect()
}

/// Serialises the sweep as the `BENCH_recovery.json` payload. All
/// numbers are integers (ratios in thousandths) so the repository's
/// telemetry JSON parser — which rejects floats by design — can consume
/// the file.
pub fn to_bench_json(points: &[Point]) -> String {
    let one = points
        .iter()
        .find(|p| p.threads == 1)
        .map(|p| p.bytes_per_vsec)
        .unwrap_or(1)
        .max(1);
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"threads\": {}, \"replayed\": {}, \"log_bytes\": {}, \"replay_ns\": {}, \"ms_per_mb_milli\": {}, \"bytes_per_vsec\": {}, \"speedup_milli\": {}}}",
            p.threads,
            p.replayed,
            p.log_bytes,
            p.replay_ns,
            p.ms_per_mb_milli,
            p.bytes_per_vsec,
            p.bytes_per_vsec * 1000 / one,
        ));
    }
    format!(
        "{{\n  \"bench\": \"recovery\",\n  \"unit\": \"outstanding-log bytes recovered per virtual second\",\n  \"producers\": {PRODUCERS},\n  \"points\": [{rows}\n  ]\n}}\n"
    )
}

/// Repo-root path for `BENCH_recovery.json` (the bench crate lives at
/// `crates/bench`).
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json")
}

fn print_table(points: &[Point]) {
    let one = points[0].bytes_per_vsec.max(1);
    println!("threads replayed  log-KB  replay-ms     ms/MB  bytes/vsec  speedup");
    for p in points {
        println!(
            "{:>7} {:>8} {:>7} {:>10.3} {:>9.3} {:>11} {:>6.2}x",
            p.threads,
            p.replayed,
            p.log_bytes >> 10,
            p.replay_ns as f64 / 1e6,
            p.ms_per_mb_milli as f64 / 1e3,
            commas(p.bytes_per_vsec as f64),
            p.bytes_per_vsec as f64 / one as f64,
        );
    }
}

/// Runs the experiment, prints the table, and writes
/// `BENCH_recovery.json` at the repository root.
pub fn run(scale: Scale) {
    banner(
        "recovery: parallel redo-log replay after a dropped-writeback crash",
        scale,
    );
    let points = measure(scale);
    print_table(&points);
    let path = bench_json_path();
    match std::fs::write(&path, to_bench_json(&points)) {
        Ok(()) => println!("bench json: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
