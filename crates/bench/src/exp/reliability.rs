//! §6.2 reliability, mechanised: systematic crash-point sweep coverage
//! and seeded media-corruption injection.
//!
//! The paper argues Mnemosyne's consistency informally and spot-checks it
//! with a seeded random-update program. This experiment replaces the spot
//! check with exhaustive enumeration: every durability primitive the
//! workload issues is a crash point, a strided subset of them is actually
//! crashed, and each reboot's state is checked against the transactional
//! invariant. A second pass flips seeded bits in the redo-log pages and
//! reports how recovery degrades (typed error vs. intact recovery — a
//! panic or silently wrong data would fail the run).

use std::time::Instant;

use mnemosyne::{crash_sweep, CrashPolicy, Error, Mnemosyne, ScmConfig, SweepConfig, Truncation};

use crate::util::{banner, Scale, TestRig};

const CELLS: u64 = 32;
const ROUNDS: u64 = 6;

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

fn workload(m: &Mnemosyne) -> Result<(), Error> {
    let area = m.pstatic("cells", CELLS * 8)?;
    let round_cell = m.pstatic("round", 8)?;
    let mut th = m.register_thread()?;
    for round in 1..=ROUNDS {
        th.atomic(|tx| {
            let mut x = lcg(round);
            for i in 0..CELLS {
                x = lcg(x);
                tx.write_u64(area.add(i * 8), x)?;
            }
            tx.write_u64(round_cell, round)?;
            Ok(())
        })?;
    }
    Ok(())
}

fn check(m: &Mnemosyne) -> Result<(), String> {
    let area = m.pstatic("cells", CELLS * 8).map_err(|e| e.to_string())?;
    let round_cell = m.pstatic("round", 8).map_err(|e| e.to_string())?;
    let mut th = m.register_thread().map_err(|e| e.to_string())?;
    let r = th
        .atomic(|tx| tx.read_u64(round_cell))
        .map_err(|e| e.to_string())?;
    if r > ROUNDS {
        return Err(format!("recovered round {r} was never committed"));
    }
    let mut x = lcg(r);
    for i in 0..CELLS {
        x = lcg(x);
        let want = if r == 0 { 0 } else { x };
        let got = th
            .atomic(|tx| tx.read_u64(area.add(i * 8)))
            .map_err(|e| e.to_string())?;
        if got != want {
            return Err(format!("cell {i} torn: {got:#x} != {want:#x} (round {r})"));
        }
    }
    Ok(())
}

/// Runs and prints the reliability sweep.
pub fn run(scale: Scale) {
    banner(
        "§6.2 reliability: crash-point sweep + corruption injection",
        scale,
    );

    let rig = TestRig::new();
    let cfg = SweepConfig {
        max_points: scale.pick(64, 512) as usize,
        recovery_points: scale.pick(0, 2) as usize,
        policy: CrashPolicy::DropAll,
        keep_failing_dirs: false,
    };
    let t0 = Instant::now();
    let report = crash_sweep(
        &rig.dir.join("sweep"),
        &cfg,
        |p| {
            Mnemosyne::builder(p)
                .scm_config(ScmConfig::virtual_clock(8 << 20))
                .truncation(Truncation::Sync)
        },
        workload,
        check,
    )
    .expect("sweep harness");
    let dt = t0.elapsed();
    println!("\ncrash-point sweep: {report}");
    println!(
        "coverage: {}/{} primitives crashed directly ({:.1}%), {:.1} s total, {:.1} ms/point",
        report.points_tested,
        report.workload_primitives,
        100.0 * report.points_tested as f64 / report.workload_primitives.max(1) as f64,
        dt.as_secs_f64(),
        dt.as_secs_f64() * 1e3 / report.points_tested.max(1) as f64
    );
    for f in &report.failures {
        println!("FAILURE: {f}");
    }
    assert!(report.passed(), "crash sweep found recovery failures");

    // Seeded corruption injection: flip bits in live redo-log pages and
    // classify how recovery degrades.
    let seeds = scale.pick(8, 64);
    let mut typed = 0u64;
    let mut intact = 0u64;
    for seed in 0..seeds {
        let d = rig.dir.join(format!("flip{seed}"));
        let m = Mnemosyne::builder(&d)
            .scm_size(32 << 20)
            .truncation(Truncation::Async)
            .open()
            .expect("boot");
        m.mtm().kill(); // keep committed records in the logs
        if workload(&m).is_err() {
            panic!("workload failed under async truncation");
        }
        let log0 = m.regions().find("mtm.log0").expect("log region");
        let pmem = m.pmem_handle();
        let body = pmem.try_translate(log0.addr.add(64)).expect("mapped");
        m.sim().inject_corruption(body, 4096 - 64, seed, 8);
        match m.crash_reboot(CrashPolicy::DropAll) {
            Ok(m2) => {
                intact += 1;
                check(&m2).expect("silent corruption after clean-looking recovery");
            }
            Err(Error::Tx(_) | Error::Log(_) | Error::Heap(_)) => typed += 1,
            Err(e) => panic!("seed {seed}: unexpected error class: {e}"),
        }
        std::fs::remove_dir_all(&d).ok();
    }
    println!(
        "corruption injection: {seeds} seeded 8-bit-flip runs -> {typed} typed rejections, \
         {intact} intact recoveries, 0 panics, 0 silent corruptions"
    );
}
