//! §6.3.2 reincarnation costs: OS boot, process start, and replay.
//!
//! The paper measures (i) reconstructing persistent regions at OS boot
//! (~734 ms per GB of claimed SCM), and (ii) process start: remapping
//! regions (~1.1 ms), scavenging the heap (~89 ms), and replaying a
//! committed-but-unflushed transaction (3-76 µs each).

use std::time::Instant;

use mnemosyne::{CrashPolicy, Mnemosyne, ScmConfig, Truncation};
use mnemosyne_region::{RegionManager, Regions};
use mnemosyne_scm::ScmSim;

use crate::util::{banner, Scale, TestRig};

const PAPER_NOTE: &str = "paper: boot reconstruction ~734 ms/GB; remap ~1.1 ms; heap \
scavenge ~89 ms; replay 3-76 us per transaction";

/// Runs and prints the reincarnation measurements.
pub fn run(scale: Scale) {
    banner("§6.3.2 reincarnation costs", scale);
    println!("{PAPER_NOTE}");

    // (i) OS-boot reconstruction: claim every frame, then time boot.
    let device_mb = scale.pick(64, 512);
    {
        let rig = TestRig::new();
        let sim = ScmSim::new(ScmConfig::for_testing(device_mb << 20));
        let mgr = RegionManager::boot(&sim, &rig.dir).expect("boot");
        let (regions, pmem) = Regions::open(&mgr, 1 << 16).expect("regions");
        // Claim (nearly) all frames with one big region.
        let free = mgr.free_frames() as u64;
        let r = regions
            .pmap("fill", free.saturating_sub(64) * 4096, &pmem)
            .expect("fill region");
        regions.aspace().prefault(r.addr).expect("prefault");
        let img = sim.image();
        let sim2 = ScmSim::from_image(&img, ScmConfig::for_testing(device_mb << 20));
        let t0 = Instant::now();
        let _mgr2 = RegionManager::boot(&sim2, &rig.dir).expect("reboot");
        let boot = t0.elapsed();
        let per_gb = boot.as_secs_f64() * 1024.0 / device_mb as f64;
        println!(
            "\nOS boot reconstruction ({device_mb} MB claimed): {:.1} ms  (~{:.0} ms/GB)",
            boot.as_secs_f64() * 1e3,
            per_gb * 1e3
        );
    }

    // (ii) process start: remap + heap scavenge + transaction replay.
    let rig = TestRig::new();
    let dir = rig.dir.join("stack");
    let allocs = scale.pick(2_000, 50_000);
    let txs = scale.pick(50, 500);
    let img = {
        let m = Mnemosyne::builder(&dir)
            .scm_size(256 << 20)
            .heap_sizes(64 << 20, 32 << 20)
            .truncation(Truncation::Async)
            .open()
            .expect("open");
        let area = m.pstatic("cells", 8 * 4096).expect("cells");
        let heap = m.heap();
        for i in 0..allocs {
            heap.pmalloc(64, area.add((i % 4096) * 8)).expect("pmalloc");
        }
        // Committed-but-unflushed transactions for replay.
        let mut th = m.register_thread().expect("thread");
        for i in 0..txs {
            th.atomic(|tx| {
                for w in 0..16u64 {
                    tx.write_u64(area.add(((i * 16 + w) % 4096) * 8), i * w)?;
                }
                Ok(())
            })
            .expect("tx");
        }
        drop(th);
        let (_, img) = m.crash(CrashPolicy::ApplyAll);
        img
    };

    let t0 = Instant::now();
    let m2 = Mnemosyne::builder(&dir)
        .scm_size(256 << 20)
        .heap_sizes(64 << 20, 32 << 20)
        .from_image(img)
        .open()
        .expect("recover");
    let total = t0.elapsed();
    let replayed = m2.mtm().stats().replayed;
    println!(
        "process start after crash ({allocs} live allocations, {replayed} transactions replayed):"
    );
    println!(
        "  total open (remap + heap scavenge + log replay): {:.1} ms",
        total.as_secs_f64() * 1e3
    );
    if replayed > 0 {
        println!(
            "  (averaged over the whole open: {:.0} us per replayed transaction, upper bound)",
            total.as_secs_f64() * 1e6 / replayed as f64
        );
    }

    // Isolate the replay cost: same crash image, no heap traffic.
    let rig2 = TestRig::new();
    let dir2 = rig2.dir.join("replay");
    let img2 = {
        let m = Mnemosyne::builder(&dir2)
            .scm_size(64 << 20)
            .truncation(Truncation::Async)
            .open()
            .expect("open");
        let area = m.pstatic("cells", 8 * 4096).expect("cells");
        let mut th = m.register_thread().expect("thread");
        for i in 0..txs {
            th.atomic(|tx| {
                for w in 0..16u64 {
                    tx.write_u64(area.add(((i * 16 + w) % 4096) * 8), i)?;
                }
                Ok(())
            })
            .expect("tx");
        }
        drop(th);
        let (_, img) = m.crash(CrashPolicy::ApplyAll);
        img
    };
    // Baseline open with nothing to replay.
    let t_base = {
        let t0 = Instant::now();
        let m = Mnemosyne::builder(&dir2)
            .scm_size(64 << 20)
            .from_image(img2.clone())
            .open()
            .expect("recover");
        let dt = t0.elapsed();
        assert!(
            m.mtm().stats().replayed > 0,
            "expected pending transactions"
        );
        // Second boot from the *recovered* state has nothing to replay.
        let (_, img3) = m.crash(CrashPolicy::DropAll);
        let t1 = Instant::now();
        let _m2 = Mnemosyne::builder(&dir2)
            .scm_size(64 << 20)
            .from_image(img3)
            .open()
            .expect("reopen");
        (dt, t1.elapsed())
    };
    let (with_replay, without) = t_base;
    let per_tx = (with_replay.as_secs_f64() - without.as_secs_f64()).max(0.0) * 1e6 / txs as f64;
    println!(
        "  isolated replay cost: {per_tx:.1} us per transaction ({txs} x 16-word transactions)"
    );
}
