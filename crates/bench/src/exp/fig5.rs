//! Figure 5: hashtable update throughput, durable transactions vs
//! Berkeley DB.

use mnemosyne::Truncation;

use crate::exp::fig4::{SIZES, THREADS};
use crate::exp::hashbench::{bdb_hash, fresh_mtm_cell, mtm_hash};
use crate::util::{banner, commas, Scale, TestRig};

const PAPER_NOTE: &str = "paper: MTM 10-14x BDB throughput with 4 threads; MTM scales \
near-linearly with threads; BDB plateaus beyond 2 (central log buffer)";

/// Runs and prints Figure 5.
pub fn run(scale: Scale) {
    banner(
        "Figure 5: hashtable update throughput (updates/s), MTM vs Berkeley DB",
        scale,
    );
    println!("{PAPER_NOTE}");
    let inserts = scale.pick(300, 3000);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "value size", "BDB-1T", "BDB-2T", "BDB-4T", "MTM-1T", "MTM-2T", "MTM-4T"
    );
    for &size in &SIZES {
        let mut row = format!("{:<12}", size);
        for &t in &THREADS {
            let rig = TestRig::new();
            let store = rig.bdb(1 << 15, 150);
            let r = bdb_hash(&store, t, size, inserts);
            row += &format!(" {:>12}", commas(r.updates_per_s));
        }
        for &t in &THREADS {
            let rig = TestRig::new();
            let (m, table) = fresh_mtm_cell(&rig, 150, Truncation::Sync);
            let r = mtm_hash(&m, table, t, size, inserts);
            row += &format!(" {:>12}", commas(r.updates_per_s));
        }
        println!("{row}");
    }
}
