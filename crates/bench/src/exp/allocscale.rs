//! Allocator scaling: `pmalloc`/`pfree` throughput vs. thread count over
//! the sharded persistent heap.
//!
//! The paper's heap is Hoard-derived precisely so allocation scales with
//! threads (§4.3); this experiment measures that scaling and emits the
//! repository's first `BENCH_*.json` perf datapoint. Threads hash to heap
//! shards, each with its own allocator log, so concurrent durable
//! allocations no longer serialise on one lock/log.
//!
//! ## Methodology: virtual-time throughput
//!
//! CI machines (and this container) may expose a single core, where
//! wall-clock multi-thread scaling is meaningless. The SCM emulator's
//! **virtual clock** gives a machine-independent alternative, the same
//! time domain the repository's other experiments use: every persistent
//! primitive charges its modelled latency to the issuing handle, so a
//! shard's allocator-log handle accumulates exactly the serial-resource
//! busy time of that shard. Throughput is then
//!
//! ```text
//! total_ops / max-over-shards(busy_ns delta)
//! ```
//!
//! — the critical-path time an ideal parallel machine would need. A
//! single-lock/single-log heap funnels every operation through one handle
//! (flat scaling); the sharded heap divides the busy time by the number of
//! active shards.
//!
//! Each round, every thread allocates a batch of 64-byte blocks into its
//! own slice of persistent cells, then frees a batch: on even rounds its
//! own previous batch (local frees), on odd rounds the next thread's
//! batch (remote frees routed to the owning shard's log).

use std::sync::{Arc, Barrier};

use mnemosyne_pheap::{HeapConfig, PHeap};
use mnemosyne_region::{RegionManager, Regions};
use mnemosyne_scm::{ScmConfig, ScmSim};

use crate::util::{banner, commas, Scale, TestRig};

/// Shard count used for every run, so thread counts are compared over
/// identical heap geometry.
const SHARDS: usize = 8;

/// Thread counts swept.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One thread-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Worker threads.
    pub threads: usize,
    /// pmalloc + pfree operations completed.
    pub ops: u64,
    /// Critical-path busy time: max over shard logs of accounted ns.
    pub busy_ns: u64,
    /// `ops / busy_ns` in ops per virtual second.
    pub ops_per_vsec: f64,
}

fn run_point(threads: usize, scale: Scale) -> Point {
    let rig = TestRig::new();
    let sim = ScmSim::new(ScmConfig::virtual_clock(64 << 20));
    let mgr = RegionManager::boot(&sim, &rig.dir).unwrap();
    let (regions, _pmem) = Regions::open(&mgr, 1 << 16).unwrap();
    let heap = Arc::new(
        PHeap::open(
            &regions,
            HeapConfig::default()
                .with_sizes(8 << 20, 4 << 20)
                .with_shards(SHARDS),
        )
        .unwrap(),
    );
    let (cell_area, _) = regions.static_area();

    let batch = scale.pick(96, 384);
    let rounds = scale.pick(4, 8);
    let busy_before: u64 = heap.shard_busy_ns().into_iter().max().unwrap_or(0);

    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let heap = Arc::clone(&heap);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let my_cells = |i: u64, owner: usize| cell_area.add((owner as u64 * batch + i) * 8);
            let mut ops = 0u64;
            for round in 0..rounds {
                for i in 0..batch {
                    heap.pmalloc(64, my_cells(i, t)).unwrap();
                    ops += 1;
                }
                barrier.wait();
                // Even rounds free locally; odd rounds free the next
                // thread's batch — a remote free unless that shard happens
                // to be this thread's home too.
                let victim = if round % 2 == 0 { t } else { (t + 1) % threads };
                for i in 0..batch {
                    heap.pfree(my_cells(i, victim)).unwrap();
                    ops += 1;
                }
                barrier.wait();
            }
            ops
        }));
    }
    let ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let busy_ns = heap
        .shard_busy_ns()
        .into_iter()
        .max()
        .unwrap_or(0)
        .saturating_sub(busy_before)
        .max(1);
    Point {
        threads,
        ops,
        busy_ns,
        ops_per_vsec: ops as f64 * 1e9 / busy_ns as f64,
    }
}

/// Runs the sweep and returns one [`Point`] per entry of [`THREADS`].
pub fn measure(scale: Scale) -> Vec<Point> {
    THREADS.iter().map(|&t| run_point(t, scale)).collect()
}

/// Serialises the sweep as the `BENCH_pheap.json` payload. All numbers
/// are integers (speedup in thousandths) so the repository's telemetry
/// JSON parser — which rejects floats by design — can consume the file.
pub fn to_bench_json(points: &[Point]) -> String {
    let one = points
        .iter()
        .find(|p| p.threads == 1)
        .map(|p| p.ops_per_vsec)
        .unwrap_or(1.0);
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"threads\": {}, \"ops\": {}, \"busy_ns\": {}, \"ops_per_vsec\": {}, \"speedup_milli\": {}}}",
            p.threads,
            p.ops,
            p.busy_ns,
            p.ops_per_vsec.round() as u64,
            (p.ops_per_vsec / one * 1000.0).round() as u64
        ));
    }
    format!(
        "{{\n  \"bench\": \"allocscale\",\n  \"unit\": \"pmalloc+pfree ops per virtual second\",\n  \"shards\": {SHARDS},\n  \"points\": [{rows}\n  ]\n}}\n"
    )
}

/// Repo-root path for `BENCH_pheap.json` (the bench crate lives at
/// `crates/bench`).
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pheap.json")
}

/// Runs the experiment, prints the table, and writes `BENCH_pheap.json`
/// at the repository root.
pub fn run(scale: Scale) {
    banner("allocscale: sharded-heap pmalloc/pfree scaling", scale);
    let points = measure(scale);
    let one = points[0].ops_per_vsec;
    println!("threads      ops   busy-ms(max shard)     ops/vsec  speedup");
    for p in &points {
        println!(
            "{:>7} {:>8} {:>20.2} {:>12} {:>8.2}x",
            p.threads,
            p.ops,
            p.busy_ns as f64 / 1e6,
            commas(p.ops_per_vsec),
            p.ops_per_vsec / one
        );
    }
    let path = bench_json_path();
    match std::fs::write(&path, to_bench_json(&points)) {
        Ok(()) => println!("bench json: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
