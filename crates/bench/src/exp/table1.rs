//! Table 1: access latency and endurance of memory technologies.
//!
//! Not an experiment — the table documents the technology parameters the
//! emulator is configured from. Printing it from the [`TechPreset`] data
//! keeps the configuration and the paper's table verifiably in sync.

use mnemosyne::TechPreset;

use crate::util::{banner, Scale};

/// Prints Table 1.
pub fn run(scale: Scale) {
    banner("Table 1: memory technology latency and endurance", scale);
    println!(
        "{:<18} {:>14} {:>18} {:>14} {:>6}",
        "technology", "read", "write", "endurance", "era"
    );
    for preset in TechPreset::all() {
        let s = preset.spec();
        let fmt_range = |(lo, hi): (u64, u64)| {
            if lo == hi {
                format_ns(lo)
            } else {
                format!("{}-{}", format_ns(lo), format_ns(hi))
            }
        };
        let fmt_end = |(lo, hi): (f64, f64)| {
            if lo == hi {
                format!("1e{}", lo.log10().round() as i64)
            } else {
                format!(
                    "1e{}-1e{}",
                    lo.log10().round() as i64,
                    hi.log10().round() as i64
                )
            }
        };
        println!(
            "{:<18} {:>14} {:>18} {:>14} {:>6}",
            s.name,
            fmt_range(s.read_ns),
            fmt_range(s.write_ns),
            fmt_end(s.endurance),
            if s.prospective { "proj." } else { "today" }
        );
    }
    println!("\nemulator default: PCM prototype, 150 ns extra write latency, 4 GB/s streaming");
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{} ms", ns / 1_000_000)
    } else if ns >= 1_000 {
        format!("{} us", ns / 1_000)
    } else {
        format!("{ns} ns")
    }
}
