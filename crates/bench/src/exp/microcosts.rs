//! §6.3 micro-costs: per-word logging cost and per-cache-line commit cost.
//!
//! The paper measures "the cost of instrumenting and logging each word
//! written as 190 ns when the transaction's write set is smaller than 128
//! cache lines" and "the cost of committing a transaction … up to 250 ns
//! per distinct cache line flushed". We isolate the same two slopes by
//! varying the write-set size along each dimension.

use mnemosyne::Truncation;

use crate::util::{banner, Scale, TestRig};

const PAPER_NOTE: &str = "paper: ~190 ns/word logged (write sets < 128 lines); commit adds \
up to ~250 ns per distinct cache line flushed; a 64 B hashtable insert (~15 updates, 5 lines) \
totals ~4.3 us";

/// Mean transaction latency (ns) writing `words` words spread over
/// `lines` distinct cache lines.
fn tx_latency_ns(
    m: &std::sync::Arc<mnemosyne::Mnemosyne>,
    base: mnemosyne::VAddr,
    words: u64,
    lines: u64,
    iters: u64,
) -> f64 {
    let mut th = m.register_thread().expect("thread");
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        th.atomic(|tx| {
            for w in 0..words {
                // Spread writes over `lines` cache lines.
                let line = w % lines;
                let slot = w / lines;
                tx.write_u64(base.add(line * 64 + (slot % 8) * 8), w)?;
            }
            Ok(())
        })
        .expect("tx");
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs and prints the micro-cost measurements.
pub fn run(scale: Scale) {
    banner(
        "§6.3 micro-costs: per-word logging and per-line commit",
        scale,
    );
    println!("{PAPER_NOTE}");
    let iters = scale.pick(200, 2000);
    let rig = TestRig::new();
    let m = rig.mnemosyne(96, 150, Truncation::Sync);
    let pmem = m.pmem_handle();
    let base = m
        .regions()
        .pmap("micro", 64 * 1024, &pmem)
        .expect("area")
        .addr;

    // Per-word slope: writes within ONE cache line (commit cost constant).
    let one = tx_latency_ns(&m, base, 1, 1, iters);
    let eight = tx_latency_ns(&m, base, 8, 1, iters);
    let per_word = (eight - one) / 7.0;
    println!("\nper-word instrumentation+logging cost: {per_word:.0} ns/word (paper ~190 ns)");

    // Per-line slope: one word per line, varying lines.
    let l4 = tx_latency_ns(&m, base, 4, 4, iters);
    let l64 = tx_latency_ns(&m, base, 64, 64, iters);
    let per_line = (l64 - l4) / 60.0;
    println!("per-cache-line commit cost:            {per_line:.0} ns/line (paper ~250 ns)");

    println!("\ntransaction latency by write-set shape (ns):");
    println!("{:<26} {:>12}", "shape", "latency");
    for (words, lines) in [(1u64, 1u64), (8, 1), (15, 5), (64, 8), (128, 64), (512, 64)] {
        let ns = tx_latency_ns(&m, base, words, lines, iters);
        println!(
            "{:<26} {:>12.0}",
            format!("{words} words / {lines} lines"),
            ns
        );
    }
}
