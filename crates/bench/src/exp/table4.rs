//! Table 4: update throughput of the converted applications.

use std::sync::Arc;
use std::time::Instant;

use mnemosyne::Truncation;
use mnemosyne_apps::ldap::{BackBdb, BackLdbm, BackMnemosyne, Backend, Workload};
use mnemosyne_apps::tokyo::{KvStore, MnemosyneTokyo, MsyncTokyo};

use crate::util::{banner, commas, Scale, TestRig};

const PAPER_NOTE: &str = "paper (updates/s): OpenLDAP back-bdb 5,428 / back-ldbm 6,024 / \
back-mnemosyne 7,350 (close: PCM write time is a small share of request time); Tokyo Cabinet \
msync 19,382 (64B) / 2,044 (1024B) vs Mnemosyne 42,057 / 30,361 (2-15x)";

fn ldap_throughput(backend: &dyn Backend, threads: usize, entries_per_thread: u64) -> f64 {
    let w = Workload::default();
    let start = Instant::now();
    let mut joins = Vec::new();
    for t in 0..threads {
        let mut session = backend.session();
        let w = w.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..entries_per_thread {
                session
                    .add(&w.entry((t as u64) * 10_000_000 + i))
                    .expect("ldap add");
            }
            entries_per_thread
        }));
    }
    let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    total as f64 / start.elapsed().as_secs_f64()
}

fn tokyo_throughput(store: &mut dyn KvStore, value_size: usize, inserts: u64) -> f64 {
    let value = vec![0x33u8; value_size];
    let window = 64u64;
    let start = Instant::now();
    let mut ops = 0u64;
    for i in 0..inserts {
        store.insert(i, &value).expect("insert");
        ops += 1;
        if i >= window {
            store.delete(i - window).expect("delete");
            ops += 1;
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Runs and prints Table 4.
pub fn run(scale: Scale) {
    banner(
        "Table 4: OpenLDAP and Tokyo Cabinet update throughput",
        scale,
    );
    println!("{PAPER_NOTE}");
    let threads = scale.pick(4, 16) as usize;
    let per_thread = scale.pick(400, 6_250);
    println!("\nOpenLDAP SLAMD-like add workload, {threads} threads x {per_thread} entries:");
    println!("{:<22} {:>14}", "backend", "updates/s");

    {
        let rig = TestRig::new();
        let backend = BackBdb::open(rig.pcmdisk_fs(1 << 16, 150)).expect("back-bdb");
        println!(
            "{:<22} {:>14}",
            backend.name(),
            commas(ldap_throughput(&backend, threads, per_thread))
        );
    }
    {
        let rig = TestRig::new();
        let backend = BackLdbm::open(rig.pcmdisk_fs(1 << 16, 150), 1000).expect("back-ldbm");
        println!(
            "{:<22} {:>14}",
            backend.name(),
            commas(ldap_throughput(&backend, threads, per_thread))
        );
    }
    {
        let rig = TestRig::new();
        let m = rig.mnemosyne(192, 150, Truncation::Sync);
        let backend = BackMnemosyne::open(Arc::clone(&m)).expect("back-mnemosyne");
        println!(
            "{:<22} {:>14}",
            backend.name(),
            commas(ldap_throughput(&backend, threads, per_thread))
        );
    }

    let inserts = scale.pick(500, 10_000);
    println!("\nTokyo Cabinet insert/delete queries, single thread x {inserts} inserts:");
    println!("{:<28} {:>14}", "configuration", "updates/s");
    for &size in &[64usize, 1024] {
        let rig = TestRig::new();
        let mut msync = MsyncTokyo::open(rig.pcmdisk_fs(1 << 16, 150), "tc", size).expect("msync");
        println!(
            "{:<28} {:>14}",
            format!("msync on PCM-disk, {size} B"),
            commas(tokyo_throughput(&mut msync, size, inserts))
        );
    }
    for &size in &[64usize, 1024] {
        let rig = TestRig::new();
        let m = rig.mnemosyne(192, 150, Truncation::Sync);
        let mut tc = MnemosyneTokyo::open(&m, "tc").expect("mnemosyne tokyo");
        println!(
            "{:<28} {:>14}",
            format!("Mnemosyne, {size} B"),
            commas(tokyo_throughput(&mut tc, size, inserts))
        );
    }
}
