//! Figure 7: sensitivity to SCM write latency (150 / 1000 / 2000 ns).

use mnemosyne::Truncation;

use crate::exp::fig4::SIZES;
use crate::exp::hashbench::{bdb_hash, fresh_mtm_cell, mtm_hash};
use crate::util::{banner, Scale, TestRig};

/// The §6.4 latency sweep.
pub const LATENCIES: [u64; 3] = [150, 1000, 2000];

const PAPER_NOTE: &str = "paper: MTM always wins at small sizes; its advantage shrinks as \
latency grows (at 2000 ns, parity around 1024 B inserts)";

/// Runs and prints Figure 7: single-thread write latency of MTM relative
/// to Berkeley DB (ratio > 1 means Mnemosyne is faster).
pub fn run(scale: Scale) {
    banner(
        "Figure 7: BDB/MTM write-latency ratio vs SCM latency (ratio > 1 = MTM faster)",
        scale,
    );
    println!("{PAPER_NOTE}");
    let inserts = scale.pick(300, 3000);
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "value size", "150 ns", "1000 ns", "2000 ns"
    );
    for &size in &SIZES {
        let mut row = format!("{:<12}", size);
        for &lat in &LATENCIES {
            let rig = TestRig::new();
            let store = rig.bdb(1 << 15, lat);
            let bdb = bdb_hash(&store, 1, size, inserts);
            let rig2 = TestRig::new();
            let (m, table) = fresh_mtm_cell(&rig2, lat, Truncation::Sync);
            let mtm = mtm_hash(&m, table, 1, size, inserts);
            row += &format!(" {:>11.2}x", bdb.write_latency_us / mtm.write_latency_us);
        }
        println!("{row}");
    }
}
