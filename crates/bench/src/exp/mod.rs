//! One module per reproduced table/figure (see DESIGN.md §4).

pub mod allocscale;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod hashbench;
pub mod kvscale;
pub mod microcosts;
pub mod recovery;
pub mod reincarnation;
pub mod reliability;
pub mod table1;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod txscale;
