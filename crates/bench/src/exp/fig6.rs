//! Figure 6: asynchronous vs synchronous log truncation under varying
//! duty cycle.
//!
//! §6.3.1: a separate thread truncates the log off the critical path;
//! with 90% or 50% idle time it keeps up and cuts write latency 7-31%;
//! at 10% idle the producer outruns it and stalls on log space.

use std::sync::Arc;
use std::time::Instant;

use mnemosyne::{Mnemosyne, Truncation};
use mnemosyne_pds::PHashTable;

use crate::exp::hashbench::fresh_mtm_cell;
use crate::util::{banner, Scale, TestRig};

/// Idle percentages swept (the paper's 90/50/10).
pub const IDLE_PCT: [u64; 3] = [90, 50, 10];

/// Value sizes shown.
pub const SIZES: [usize; 4] = [64, 1024, 2048, 4096];

const PAPER_NOTE: &str = "paper: 7-31% latency reduction at 90/50% idle; at 10% idle the \
truncation thread falls behind and latency can increase (up to +42% at 4 KB)";

/// Mean insert latency (µs) with the given idle duty cycle.
fn duty_cycle_latency(
    m: &Arc<Mnemosyne>,
    table: PHashTable,
    value_size: usize,
    idle_pct: u64,
    inserts: u64,
) -> f64 {
    let mut th = m.register_thread().expect("thread slot");
    let value = vec![0x5au8; value_size];
    let mut busy_ns = 0u64;
    for i in 0..inserts {
        let t0 = Instant::now();
        table.put(&mut th, &i.to_le_bytes(), &value).expect("put");
        let op_ns = t0.elapsed().as_nanos() as u64;
        busy_ns += op_ns;
        // Idle so that idle_pct of total time is spent idle:
        // idle = busy * idle / (100 - idle), paid per op.
        let idle_ns = op_ns * idle_pct / (100 - idle_pct);
        let t1 = Instant::now();
        while (t1.elapsed().as_nanos() as u64) < idle_ns {
            std::hint::spin_loop();
        }
    }
    busy_ns as f64 / inserts as f64 / 1e3
}

/// Runs and prints Figure 6: percentage decrease in write latency of
/// asynchronous over synchronous truncation.
pub fn run(scale: Scale) {
    banner(
        "Figure 6: write-latency decrease of async over sync truncation (%)",
        scale,
    );
    println!("{PAPER_NOTE}");
    let inserts = scale.pick(200, 2000);
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "value size", "90% idle", "50% idle", "10% idle"
    );
    for &size in &SIZES {
        let mut row = format!("{:<12}", size);
        for &idle in &IDLE_PCT {
            let rig = TestRig::new();
            let (m_sync, t_sync) = fresh_mtm_cell(&rig, 150, Truncation::Sync);
            let sync_us = duty_cycle_latency(&m_sync, t_sync, size, idle, inserts);
            drop(m_sync);
            let rig2 = TestRig::new();
            let (m_async, t_async) = fresh_mtm_cell(&rig2, 150, Truncation::Async);
            let async_us = duty_cycle_latency(&m_async, t_async, size, idle, inserts);
            m_async.mtm().kill();
            let decrease = (sync_us - async_us) / sync_us * 100.0;
            row += &format!(" {:>9.1}%", decrease);
        }
        println!("{row}");
    }
}
