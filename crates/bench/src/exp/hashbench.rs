//! Shared hashtable workload for Figures 4, 5, 6 and 7.
//!
//! §6.3: a simple hash table persisted with Mnemosyne transactions,
//! compared against Berkeley DB's hash table on PCM-disk; "deletes are
//! introduced at the same rate as writes to ensure steady progress;
//! update throughput is aggregate throughput of writes and deletes".

use std::sync::Arc;
use std::time::Instant;

use bdbstore::BdbStore;
use mnemosyne::{Mnemosyne, Truncation};
use mnemosyne_pds::PHashTable;

use crate::util::TestRig;

/// Live keys retained per thread before deletes start.
const WINDOW: u64 = 32;

/// Result of one workload cell.
#[derive(Debug, Clone, Copy)]
pub struct HashResult {
    /// Mean insert (write) latency in microseconds.
    pub write_latency_us: f64,
    /// Aggregate updates (inserts + deletes) per second.
    pub updates_per_s: f64,
}

fn run_workers<W, F>(threads: usize, make: W) -> HashResult
where
    W: Fn(usize) -> F,
    F: FnOnce() -> (u64, u64, u64) + Send + 'static,
{
    let start = Instant::now();
    let mut joins = Vec::new();
    for t in 0..threads {
        joins.push(std::thread::spawn(make(t)));
    }
    let (mut ops, mut ins_ns, mut inserts) = (0u64, 0u64, 0u64);
    for j in joins {
        let (o, n, i) = j.join().unwrap();
        ops += o;
        ins_ns += n;
        inserts += i;
    }
    HashResult {
        write_latency_us: ins_ns as f64 / inserts.max(1) as f64 / 1e3,
        updates_per_s: ops as f64 / start.elapsed().as_secs_f64(),
    }
}

/// Mnemosyne-transactions hashtable cell.
pub fn mtm_hash(
    m: &Arc<Mnemosyne>,
    table: PHashTable,
    threads: usize,
    value_size: usize,
    inserts_per_thread: u64,
) -> HashResult {
    run_workers(threads, |t| {
        let m = Arc::clone(m);
        move || {
            let mut th = m.register_thread().expect("thread slot");
            let value = vec![0xabu8; value_size];
            let (mut ops, mut ins_ns, mut inserts) = (0u64, 0u64, 0u64);
            for i in 0..inserts_per_thread {
                let key = ((t as u64) << 40 | i).to_le_bytes();
                let t0 = Instant::now();
                table.put(&mut th, &key, &value).expect("put");
                ins_ns += t0.elapsed().as_nanos() as u64;
                inserts += 1;
                ops += 1;
                if i >= WINDOW {
                    let old = ((t as u64) << 40 | (i - WINDOW)).to_le_bytes();
                    table.remove(&mut th, &old).expect("remove");
                    ops += 1;
                }
            }
            (ops, ins_ns, inserts)
        }
    })
}

/// Berkeley-DB hashtable cell.
pub fn bdb_hash(
    store: &Arc<BdbStore>,
    threads: usize,
    value_size: usize,
    inserts_per_thread: u64,
) -> HashResult {
    run_workers(threads, |t| {
        let store = Arc::clone(store);
        move || {
            let value = vec![0xabu8; value_size];
            let (mut ops, mut ins_ns, mut inserts) = (0u64, 0u64, 0u64);
            for i in 0..inserts_per_thread {
                let key = ((t as u64) << 40 | i).to_le_bytes();
                let t0 = Instant::now();
                store.put(&key, &value).expect("put");
                ins_ns += t0.elapsed().as_nanos() as u64;
                inserts += 1;
                ops += 1;
                if i >= WINDOW {
                    let old = ((t as u64) << 40 | (i - WINDOW)).to_le_bytes();
                    store.delete(&old).expect("delete");
                    ops += 1;
                }
            }
            (ops, ins_ns, inserts)
        }
    })
}

/// Builds a fresh Mnemosyne rig + table for one cell (a fresh stack per
/// cell keeps cells independent, like separate benchmark runs).
pub fn fresh_mtm_cell(
    rig: &TestRig,
    latency_ns: u64,
    truncation: Truncation,
) -> (Arc<Mnemosyne>, PHashTable) {
    let m = rig.mnemosyne(96, latency_ns, truncation);
    let table = {
        let mut th = m.register_thread().unwrap();
        PHashTable::open(&m, &mut th, "bench-hash", 4096).unwrap()
    };
    (m, table)
}
