//! Table 6: throughput of the base (commit-record) and tornbit RAWLs.

use mnemosyne::{CommitRecordLog, ScmConfig, TornbitLog};
use mnemosyne_region::{RegionManager, Regions};
use mnemosyne_scm::{EmulationMode, ScmSim};

use crate::util::{banner, Scale, TestRig};

/// Record sizes (bytes) from Table 6.
pub const RECORD_SIZES: [usize; 6] = [8, 64, 256, 1024, 2048, 4096];

const PAPER_NOTE: &str = "paper (MB/s): base 17/128/416/881/1088/1244, tornbit \
34/227/591/929/1045/1093 — tornbit up to 2x faster below 2 KB, slower above \
(bit manipulation scales with data, the saved fence is constant)";

const LOG_WORDS: u64 = 1 << 16;

/// Runs and prints Table 6.
pub fn run(scale: Scale) {
    banner("Table 6: base vs tornbit RAWL throughput (MB/s)", scale);
    println!("{PAPER_NOTE}");
    let rig = TestRig::new();
    let mut config = ScmConfig::paper_default(64 << 20);
    config.mode = EmulationMode::Spin;
    let sim = ScmSim::new(config);
    let mgr = RegionManager::boot(&sim, &rig.dir).expect("boot");
    let (regions, pmem) = Regions::open(&mgr, 1 << 16).expect("regions");
    let tb_region = regions
        .pmap("t6-tornbit", 64 + LOG_WORDS * 8, &pmem)
        .expect("tornbit region");
    let cl_region = regions
        .pmap("t6-commit", 64 + LOG_WORDS * 8, &pmem)
        .expect("commit region");

    let appends = scale.pick(2_000, 20_000);
    println!(
        "{:<14} {:>12} {:>12} {:>8}",
        "record bytes", "base MB/s", "tornbit MB/s", "ratio"
    );
    for &size in &RECORD_SIZES {
        let payload = vec![0x77u64; size / 8];

        let mut clog = CommitRecordLog::create(regions.pmem_handle(), cl_region.addr, LOG_WORDS)
            .expect("create commit log");
        let t0 = std::time::Instant::now();
        for _ in 0..appends {
            if clog.free_words() < payload.len() as u64 + 2 {
                clog.truncate_all();
            }
            clog.append(&payload).expect("append");
        }
        let base_mbs = (appends as f64 * size as f64) / t0.elapsed().as_secs_f64() / 1e6;

        let mut tlog = TornbitLog::create(regions.pmem_handle(), tb_region.addr, LOG_WORDS)
            .expect("create tornbit log");
        let t0 = std::time::Instant::now();
        for _ in 0..appends {
            if tlog.free_words() < (payload.len() as u64 + 2) * 2 {
                tlog.truncate_all();
            }
            tlog.append(&payload).expect("append");
            tlog.flush();
        }
        let torn_mbs = (appends as f64 * size as f64) / t0.elapsed().as_secs_f64() / 1e6;

        println!(
            "{:<14} {:>12.0} {:>12.0} {:>7.2}x",
            size,
            base_mbs,
            torn_mbs,
            torn_mbs / base_mbs
        );
    }
}
