//! Criterion micro-benchmarks of the core primitives: tornbit vs
//! commit-record log appends, durable transaction commits, and persistent
//! allocation. These run without delay emulation so they measure the
//! *software* overhead of each mechanism.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mnemosyne::{CommitRecordLog, Mnemosyne, TornbitLog, Truncation};
use mnemosyne_region::{RegionManager, Regions};
use mnemosyne_scm::{ScmConfig, ScmSim};

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mnemo-crit-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn logs(c: &mut Criterion) {
    let dir = bench_dir("logs");
    let sim = ScmSim::new(ScmConfig::for_testing(64 << 20));
    let mgr = RegionManager::boot(&sim, &dir).unwrap();
    let (regions, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
    let r1 = regions.pmap("tb", 64 + (1 << 16) * 8, &pmem).unwrap();
    let r2 = regions.pmap("cl", 64 + (1 << 16) * 8, &pmem).unwrap();
    let mut tlog = TornbitLog::create(regions.pmem_handle(), r1.addr, 1 << 16).unwrap();
    let mut clog = CommitRecordLog::create(regions.pmem_handle(), r2.addr, 1 << 16).unwrap();
    let payload = [7u64; 8]; // 64-byte record

    let mut g = c.benchmark_group("rawl");
    g.bench_function("tornbit_append_flush_64B", |b| {
        b.iter(|| {
            if tlog.free_words() < 32 {
                tlog.truncate_all();
            }
            tlog.append(&payload).unwrap();
            tlog.flush();
        })
    });
    g.bench_function("commit_record_append_64B", |b| {
        b.iter(|| {
            if clog.free_words() < 32 {
                clog.truncate_all();
            }
            clog.append(&payload).unwrap();
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn transactions(c: &mut Criterion) {
    let dir = bench_dir("tx");
    let m = Mnemosyne::builder(&dir)
        .scm_size(64 << 20)
        .truncation(Truncation::Sync)
        .open()
        .unwrap();
    let area = m.pstatic("bench", 4096).unwrap();
    let mut th = m.register_thread().unwrap();

    let mut g = c.benchmark_group("mtm");
    g.bench_function("commit_1_word", |b| {
        b.iter(|| th.atomic(|tx| tx.write_u64(area, 1)).unwrap())
    });
    g.bench_function("commit_8_words_1_line", |b| {
        b.iter(|| {
            th.atomic(|tx| {
                for i in 0..8u64 {
                    tx.write_u64(area.add(i * 8), i)?;
                }
                Ok(())
            })
            .unwrap()
        })
    });
    g.bench_function("commit_64_words_8_lines", |b| {
        b.iter(|| {
            th.atomic(|tx| {
                for i in 0..64u64 {
                    tx.write_u64(area.add(i * 8), i)?;
                }
                Ok(())
            })
            .unwrap()
        })
    });
    g.bench_function("read_only_8_words", |b| {
        b.iter(|| {
            th.atomic(|tx| {
                let mut s = 0u64;
                for i in 0..8u64 {
                    s = s.wrapping_add(tx.read_u64(area.add(i * 8))?);
                }
                Ok(s)
            })
            .unwrap()
        })
    });
    g.finish();
    drop(th);
    std::fs::remove_dir_all(&dir).ok();
}

fn heap(c: &mut Criterion) {
    let dir = bench_dir("heap");
    let m = Mnemosyne::builder(&dir)
        .scm_size(128 << 20)
        .heap_sizes(32 << 20, 32 << 20)
        .open()
        .unwrap();
    let cell = m.pstatic("cell", 8).unwrap();
    let heap = std::sync::Arc::clone(m.heap());

    let mut g = c.benchmark_group("pheap");
    g.bench_function("pmalloc_pfree_64B", |b| {
        b.iter_batched(
            || (),
            |()| {
                heap.pmalloc(64, cell).unwrap();
                heap.pfree(cell).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pmalloc_pfree_8KB_large_path", |b| {
        b.iter_batched(
            || (),
            |()| {
                heap.pmalloc(8192, cell).unwrap();
                heap.pfree(cell).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, logs, transactions, heap);
criterion_main!(benches);
