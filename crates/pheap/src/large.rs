//! dlmalloc-style large-object allocator (§4.3 fallback path).
//!
//! Requests above [`crate::SMALL_MAX`] are served from a separate area
//! managed with boundary-tag chunk headers, "chosen for its scalability to
//! large block sizes". Chunks form a contiguous chain; each header
//! records its own size, the previous chunk's size (for backward
//! coalescing) and an in-use flag. The free list is volatile and rebuilt
//! by walking the chain at startup. As in the paper, the large path is
//! expected to be infrequent, so it is kept simple and made atomic with
//! the same logged word-write mechanism as the small path.

use mnemosyne_region::{PMem, VAddr};

use crate::error::HeapError;
use crate::small::WordWrite;

/// Chunk header size in bytes: size, prev_size, flags, magic.
pub const CHUNK_HEADER: u64 = 32;

/// Minimum chunk (header + smallest payload worth splitting for).
const MIN_CHUNK: u64 = CHUNK_HEADER + 32;

/// Header magic guarding against foreign pointers ("LCHUNK01").
const CHUNK_MAGIC: u64 = u64::from_le_bytes(*b"LCHUNK01");

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Chunk {
    addr: VAddr,
    size: u64,
    prev_size: u64,
    in_use: bool,
}

/// Volatile view of the large-object area.
#[derive(Debug)]
pub struct LargeAlloc {
    base: VAddr,
    len: u64,
    /// Free chunks as `(address, size)`, unordered (first fit).
    free: Vec<(VAddr, u64)>,
}

impl LargeAlloc {
    /// Creates the volatile view over `[base, base+len)`.
    pub fn new(base: VAddr, len: u64) -> LargeAlloc {
        LargeAlloc {
            base,
            len,
            free: Vec::new(),
        }
    }

    /// Durable writes that format a fresh area as one big free chunk.
    pub fn format_writes(&mut self) -> Vec<WordWrite> {
        self.free = vec![(self.base, self.len)];
        Self::header_writes(self.base, self.len, 0, false)
    }

    fn header_writes(addr: VAddr, size: u64, prev_size: u64, in_use: bool) -> Vec<WordWrite> {
        vec![
            (addr, size),
            (addr.add(8), prev_size),
            (addr.add(16), in_use as u64),
            (addr.add(24), CHUNK_MAGIC),
        ]
    }

    fn read_chunk(&self, pmem: &PMem, addr: VAddr) -> Result<Chunk, HeapError> {
        if pmem.read_u64(addr.add(24)) != CHUNK_MAGIC {
            return Err(HeapError::Corrupt("bad chunk magic"));
        }
        Ok(Chunk {
            addr,
            size: pmem.read_u64(addr),
            prev_size: pmem.read_u64(addr.add(8)),
            in_use: pmem.read_u64(addr.add(16)) != 0,
        })
    }

    /// Whether `addr` lies in the large area.
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.base && addr < self.base.add(self.len)
    }

    /// Rebuilds the free list by walking the chunk chain.
    ///
    /// # Errors
    /// [`HeapError::Corrupt`] if the chain does not tile the area.
    pub fn scavenge(&mut self, pmem: &PMem) -> Result<(), HeapError> {
        self.free.clear();
        let mut addr = self.base;
        let end = self.base.add(self.len);
        let mut prev_size = 0u64;
        while addr < end {
            let c = self.read_chunk(pmem, addr)?;
            if c.size < MIN_CHUNK && c.size != self.len || c.size == 0 {
                return Err(HeapError::Corrupt("implausible chunk size"));
            }
            if c.prev_size != prev_size {
                return Err(HeapError::Corrupt("prev_size chain mismatch"));
            }
            if addr.add(c.size) > end {
                return Err(HeapError::Corrupt("chunk overruns area"));
            }
            if !c.in_use {
                self.free.push((addr, c.size));
            }
            prev_size = c.size;
            addr = addr.add(c.size);
        }
        Ok(())
    }

    /// Allocates `size` user bytes (first fit, splitting when worthwhile).
    /// Returns the user address and the durable writes.
    pub fn alloc(&mut self, size: u64, pmem: &PMem, writes: &mut Vec<WordWrite>) -> Option<VAddr> {
        let need = (size.max(8).div_ceil(8) * 8) + CHUNK_HEADER;
        let pos = self.free.iter().position(|&(_, sz)| sz >= need)?;
        let (addr, total) = self.free.swap_remove(pos);
        let chunk = self.read_chunk(pmem, addr).ok()?;
        debug_assert_eq!(chunk.size, total);
        if total >= need + MIN_CHUNK {
            // Split: in-use front, free remainder.
            let rem = total - need;
            writes.extend(Self::header_writes(addr, need, chunk.prev_size, true));
            let rem_addr = addr.add(need);
            writes.extend(Self::header_writes(rem_addr, rem, need, false));
            // Fix the following chunk's prev_size.
            let next = addr.add(total);
            if next < self.base.add(self.len) {
                writes.push((next.add(8), rem));
            }
            self.free.push((rem_addr, rem));
        } else {
            writes.extend(Self::header_writes(addr, total, chunk.prev_size, true));
        }
        Some(addr.add(CHUNK_HEADER))
    }

    /// Frees the allocation whose user address is `addr`, coalescing with
    /// free neighbours.
    ///
    /// # Errors
    /// [`HeapError::BadPointer`] if `addr` is not a live large allocation.
    pub fn free(
        &mut self,
        addr: VAddr,
        pmem: &PMem,
        writes: &mut Vec<WordWrite>,
    ) -> Result<(), HeapError> {
        if !self.contains(addr) || addr.offset_from(self.base) < CHUNK_HEADER {
            return Err(HeapError::BadPointer(addr));
        }
        let hdr = VAddr(addr.0 - CHUNK_HEADER);
        let chunk = self
            .read_chunk(pmem, hdr)
            .map_err(|_| HeapError::BadPointer(addr))?;
        if !chunk.in_use {
            return Err(HeapError::BadPointer(addr)); // double free
        }
        let mut start = hdr;
        let mut size = chunk.size;
        let mut prev_size = chunk.prev_size;
        let end_area = self.base.add(self.len);

        // Coalesce backward.
        if chunk.prev_size > 0 {
            let prev_addr = VAddr(hdr.0 - chunk.prev_size);
            let prev = self.read_chunk(pmem, prev_addr)?;
            if !prev.in_use {
                self.free.retain(|&(a, _)| a != prev_addr);
                start = prev_addr;
                size += prev.size;
                prev_size = prev.prev_size;
            }
        }
        // Coalesce forward.
        let next_addr = hdr.add(chunk.size);
        if next_addr < end_area {
            let next = self.read_chunk(pmem, next_addr)?;
            if !next.in_use {
                self.free.retain(|&(a, _)| a != next_addr);
                size += next.size;
            }
        }
        writes.extend(Self::header_writes(start, size, prev_size, false));
        // Fix the following chunk's prev_size after the merge.
        let after = start.add(size);
        if after < end_area {
            writes.push((after.add(8), size));
        }
        self.free.push((start, size));
        Ok(())
    }

    /// Usable size of a live allocation at `addr`.
    pub fn usable_size(&self, pmem: &PMem, addr: VAddr) -> Option<u64> {
        if !self.contains(addr) || addr.offset_from(self.base) < CHUNK_HEADER {
            return None;
        }
        let c = self.read_chunk(pmem, VAddr(addr.0 - CHUNK_HEADER)).ok()?;
        c.in_use.then_some(c.size - CHUNK_HEADER)
    }

    /// Total bytes this area manages (headers included).
    pub fn capacity(&self) -> u64 {
        self.len
    }

    /// Total free bytes (diagnostics).
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s).sum()
    }

    /// Largest free chunk (diagnostics).
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }
}
